"""Figure 4 reproduction: Var[max^(HT)] vs Var[max^(L)] for PPS samples."""

from __future__ import annotations

from conftest import print_series, run_once

from repro.experiments.figure4 import run_figure4


def test_figure4_variance_curves(benchmark):
    result = run_once(
        benchmark, run_figure4,
        rho_values=(0.5, 0.01), n_points=11, grid_size=1001,
    )
    for rho, panel in result["panels"].items():
        rows = ["min/max   var[HT]/tau^2   var[L]/tau^2   var[HT]/var[L]"]
        for fraction, ht, l, ratio in zip(
            panel["min_over_max"],
            panel["normalized_var_HT"],
            panel["normalized_var_L"],
            panel["var_ratio_HT_over_L"],
        ):
            rows.append(
                f"{fraction:7.3f}   {ht:13.5f}   {l:12.5f}   {ratio:13.3f}"
            )
        print_series(
            f"Figure 4: normalised variances, rho = max/tau* = {rho}", rows
        )
        assert all(
            l <= ht + 1e-9
            for l, ht in zip(panel["normalized_var_L"],
                             panel["normalized_var_HT"])
        )


def test_figure4_ratio_panel(benchmark):
    result = run_once(
        benchmark, run_figure4,
        rho_values=(1.0, 0.99, 0.5, 0.1), n_points=6, grid_size=801,
    )
    rows = ["rho      ratio at min/max=0   ratio at min/max=1"]
    for rho, panel in result["panels"].items():
        ratios = panel["var_ratio_HT_over_L"]
        rows.append(f"{rho:7.3f} {ratios[0]:18.3f} {ratios[-1]:20.3f}")
    print_series("Figure 4 (C): Var[HT]/Var[L] at the curve end points", rows)
