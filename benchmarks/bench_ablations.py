"""Ablation benchmarks for the design choices called out in DESIGN.md.

* Order choice in Algorithm 1 (dense-first L vs sparse-first U) — which
  data regime each prioritises.
* Known vs unknown seeds — how much estimation power reproducible
  randomization buys for the distinct-count application.
* Independent vs coordinated (shared-seed) sampling — effect on the
  variability of the distinct-count L estimator.
"""

from __future__ import annotations

import numpy as np
from conftest import print_series, run_once

from repro.aggregates.distinct import distinct_count_ht, distinct_count_l
from repro.analysis.comparison import compare_estimators
from repro.core.max_oblivious import MaxObliviousHT, MaxObliviousL, MaxObliviousU
from repro.datasets.synthetic import set_pair_with_jaccard
from repro.sampling.dispersed import ObliviousPoissonScheme
from repro.sampling.seeds import SeedAssigner


def _order_choice_ablation():
    probabilities = (0.5, 0.5)
    scheme = ObliviousPoissonScheme(probabilities)
    vectors = [(1.0, ratio) for ratio in (0.0, 0.25, 0.5, 0.75, 1.0)]
    return compare_estimators(
        {
            "HT": MaxObliviousHT(probabilities),
            "L": MaxObliviousL(probabilities),
            "U": MaxObliviousU(probabilities),
        },
        scheme,
        vectors,
        baseline="HT",
    )


def test_ablation_order_choice(benchmark):
    comparison = run_once(benchmark, _order_choice_ablation)
    rows = comparison.as_table()
    print_series(
        "Ablation: Algorithm 1 order (L, dense-first) vs Algorithm 2 "
        "partition (U, sparse-first)", rows
    )
    assert comparison.dominates_baseline("L")
    assert comparison.dominates_baseline("U")


def _seed_knowledge_ablation(probability=0.05, n_keys=10_000, jaccard=0.5,
                             n_repetitions=25):
    set1, set2 = set_pair_with_jaccard(n_keys, jaccard)
    truth = len(set1 | set2)
    all_keys = sorted(set1 | set2)
    errors = {"HT (needs both samples)": [], "L (uses known seeds)": []}
    for salt in range(n_repetitions):
        seeds = SeedAssigner(salt=salt)
        seeds1 = seeds.seed_map(all_keys, instance=1)
        seeds2 = seeds.seed_map(all_keys, instance=2)
        sample1 = {k for k in set1 if seeds1[k] <= probability}
        sample2 = {k for k in set2 if seeds2[k] <= probability}
        ht = distinct_count_ht(sample1, sample2, probability, probability,
                               seeds1, seeds2)
        l = distinct_count_l(sample1, sample2, probability, probability,
                             seeds1, seeds2)
        errors["HT (needs both samples)"].append((ht.estimate - truth) / truth)
        errors["L (uses known seeds)"].append((l.estimate - truth) / truth)
    return truth, {
        name: float(np.sqrt(np.mean(np.square(values))))
        for name, values in errors.items()
    }


def test_ablation_known_seeds(benchmark):
    truth, rmse = run_once(benchmark, _seed_knowledge_ablation)
    rows = [f"true distinct count: {truth}"]
    for name, value in rmse.items():
        rows.append(f"relative RMSE {name}: {value:.4f}")
    print_series("Ablation: value of known seeds for distinct counting", rows)
    assert rmse["L (uses known seeds)"] < rmse["HT (needs both samples)"]


def _coordination_ablation(probability=0.1, n_keys=5_000, jaccard=0.8,
                           n_repetitions=25):
    set1, set2 = set_pair_with_jaccard(n_keys, jaccard)
    truth = len(set1 | set2)
    all_keys = sorted(set1 | set2)
    errors = {"independent": [], "coordinated": []}
    for salt in range(n_repetitions):
        for name, coordinated in (("independent", False), ("coordinated", True)):
            seeds = SeedAssigner(salt=salt, coordinated=coordinated)
            seeds1 = seeds.seed_map(all_keys, instance=1)
            seeds2 = seeds.seed_map(all_keys, instance=2)
            sample1 = {k for k in set1 if seeds1[k] <= probability}
            sample2 = {k for k in set2 if seeds2[k] <= probability}
            estimate = distinct_count_l(
                sample1, sample2, probability, probability, seeds1, seeds2
            )
            errors[name].append((estimate.estimate - truth) / truth)
    return truth, {
        name: float(np.sqrt(np.mean(np.square(values))))
        for name, values in errors.items()
    }


def test_ablation_coordinated_sampling(benchmark):
    truth, rmse = run_once(benchmark, _coordination_ablation)
    rows = [f"true distinct count: {truth}"]
    for name, value in rmse.items():
        rows.append(f"relative RMSE with {name} seeds: {value:.4f}")
    rows.append(
        "Take-away: the Section 8.1 L estimator is derived for independent "
        "seeds; applying it unchanged to coordinated (shared-seed) samples "
        "biases it, so coordination needs the dedicated estimators of the "
        "follow-up work."
    )
    print_series(
        "Ablation: independent vs coordinated (shared-seed) sampling for "
        "the independent-seed distinct-count L estimator", rows
    )
    # The estimator is tied to the joint sample distribution it was derived
    # for: with coordinated samples it is no longer unbiased and its error
    # grows.
    assert rmse["independent"] <= rmse["coordinated"]
