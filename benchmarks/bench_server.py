"""Async load generator for the HTTP sketch server.

Boots a :class:`repro.server.SketchServer` in-process on an ephemeral
port and drives it with a mixed workload of concurrent HTTP clients:
ingest workers POST distinct-key update batches while query workers
interleave ``GET /query`` reads (a mix of cold and version-cached hits,
since every ingest bumps the engine version).  Two gates:

* **throughput** — the sustained mixed request rate must reach
  ``--min-rps`` (default 2,000 requests/second);
* **ingest parity** — after the load, the engine built through
  concurrent HTTP ingest must be *bit-exact equal* to a serial
  in-process ingest of the same batches (the streaming permutation
  guarantee carried through the network layer).

Run directly::

    PYTHONPATH=src python benchmarks/bench_server.py
    PYTHONPATH=src python benchmarks/bench_server.py --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time

import numpy as np

from repro.sampling.seeds import SeedAssigner
from repro.server import AsyncSketchClient, ServerConfig, SketchServer
from repro.service.queries import Query, query_value_json
from repro.service.store import SketchStore

SALT = 7
INSTANCES = ("mon", "tue")


def make_batches(n_updates: int, batch_rows: int, seed: int = 0):
    """Distinct-integer-key update batches alternating over instances."""
    generator = np.random.default_rng(seed)
    keys = generator.choice(1 << 40, size=n_updates, replace=False)
    values = generator.random(n_updates) * 10.0 + 0.01
    batches = []
    for index, start in enumerate(range(0, n_updates, batch_rows)):
        stop = min(start + batch_rows, n_updates)
        batches.append(
            (
                INSTANCES[index % len(INSTANCES)],
                [int(key) for key in keys[start:stop]],
                [float(value) for value in values[start:stop]],
            )
        )
    return batches


def make_store() -> SketchStore:
    """A weight-oblivious Poisson engine sized for serving.

    A low threshold keeps the retained set (and therefore per-query
    work) bounded the way a production sketch would be — the whole point
    of sketch-based serving is that query cost tracks the sketch, not
    the stream.
    """
    store = SketchStore()
    store.create(
        "bench",
        "poisson",
        threshold=0.005,
        seed_assigner=SeedAssigner(salt=SALT),
        n_shards=4,
    )
    return store


async def _ingest_worker(port, batches, counters) -> None:
    async with AsyncSketchClient("127.0.0.1", port) as client:
        for instance, keys, values in batches:
            await client.ingest("bench", instance, keys, values)
            counters["ingest_requests"] += 1
            counters["rows"] += len(keys)


async def _query_worker(port, done, counters) -> None:
    """Rotate per-instance subset sums with cross-instance distinct
    counts — a mix of cheap and compound reads, cold after every ingest
    version bump and cache-served in between."""
    async with AsyncSketchClient("127.0.0.1", port) as client:
        position = 0
        while not done.is_set():
            if position % 3 == 2:
                result = await client.query("bench", "distinct", list(INSTANCES))
            else:
                instance = INSTANCES[position % len(INSTANCES)]
                result = await client.query("bench", "sum", [instance])
            counters["query_requests"] += 1
            counters["cache_hits"] += bool(result["from_cache"])
            position += 1


async def _drive(store, batches, ingest_workers: int, query_workers: int) -> dict:
    server = SketchServer(
        store,
        ServerConfig(port=0, ingest_threads=4, max_pending_batches=64),
    )
    await server.start()
    counters = {
        "ingest_requests": 0,
        "query_requests": 0,
        "cache_hits": 0,
        "rows": 0,
    }
    done = asyncio.Event()
    try:
        started = time.perf_counter()
        # seed both instances first so query workers never race the
        # creation of an instance they want to read
        n_seed = len(INSTANCES)
        async with AsyncSketchClient("127.0.0.1", server.port) as client:
            for instance, keys, values in batches[:n_seed]:
                await client.ingest("bench", instance, keys, values)
                counters["ingest_requests"] += 1
                counters["rows"] += len(keys)
        ingest_tasks = [
            asyncio.ensure_future(
                _ingest_worker(
                    server.port,
                    batches[n_seed + index :: ingest_workers],
                    counters,
                )
            )
            for index in range(ingest_workers)
        ]
        query_tasks = [
            asyncio.ensure_future(_query_worker(server.port, done, counters))
            for index in range(query_workers)
        ]
        await asyncio.gather(*ingest_tasks)
        done.set()
        await asyncio.gather(*query_tasks)
        elapsed = time.perf_counter() - started
        # per-route latency quantiles from the server's own histograms
        latency = {
            label: histogram.to_dict()
            for label, route in (
                ("ingest", "POST /ingest"),
                ("query", "GET /query"),
            )
            if (histogram := server.metrics.route_histogram(route))
            is not None
        }
    finally:
        done.set()
        await server.shutdown()
    n_requests = counters["ingest_requests"] + counters["query_requests"]
    return {
        "seconds": elapsed,
        "ingest_requests": counters["ingest_requests"],
        "query_requests": counters["query_requests"],
        "query_cache_hits": counters["cache_hits"],
        "rows": counters["rows"],
        "requests_per_second": n_requests / elapsed,
        "ingest_rows_per_second": counters["rows"] / elapsed,
        "latency": latency,
    }


def bench_load(
    n_updates: int,
    batch_rows: int = 100,
    ingest_workers: int = 2,
    query_workers: int = 8,
    min_rps: float = 2000.0,
) -> dict:
    """Mixed ingest/query load with throughput and parity gates."""
    batches = make_batches(n_updates, batch_rows)
    store = make_store()
    numbers = asyncio.run(_drive(store, batches, ingest_workers, query_workers))
    assert numbers["rows"] == n_updates

    serial = make_store()
    for instance, keys, values in batches:
        serial.ingest("bench", instance, keys, values)
    assert store.engine("bench") == serial.engine("bench"), (
        "concurrent HTTP ingest diverged from serial in-process ingest"
    )
    for query in (Query.sum(INSTANCES[0]), Query.distinct(*INSTANCES)):
        final = store.query("bench", query)
        reference = serial.query("bench", query)
        assert query_value_json(final.value) == query_value_json(reference.value)

    print(
        f"server load ({n_updates} updates, {batch_rows} rows/batch, "
        f"{ingest_workers}+{query_workers} workers): "
        f"{numbers['requests_per_second']:8.0f} req/s "
        f"({numbers['ingest_requests']} ingest + "
        f"{numbers['query_requests']} query in "
        f"{numbers['seconds']:.2f}s), "
        f"{numbers['ingest_rows_per_second']:10.0f} rows/s  "
        f"[ingest parity with serial: ok]  (gate >= {min_rps:g} req/s)"
    )
    for label, quantiles in sorted(numbers["latency"].items()):
        print(
            f"  {label:6s} latency: "
            f"p50 {quantiles['p50_seconds'] * 1000:7.2f} ms, "
            f"p95 {quantiles['p95_seconds'] * 1000:7.2f} ms, "
            f"p99 {quantiles['p99_seconds'] * 1000:7.2f} ms "
            f"({quantiles['count']} requests)"
        )
    assert numbers["requests_per_second"] >= min_rps, (
        f"mixed throughput {numbers['requests_per_second']:.0f} req/s "
        f"below the {min_rps:g} req/s gate"
    )
    return {
        "n_updates": n_updates,
        "batch_rows": batch_rows,
        "ingest_workers": ingest_workers,
        "query_workers": query_workers,
        "parity": "ok",
        "min_rps_gate": min_rps,
        **numbers,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--updates", type=int, default=200_000,
                        help="total update rows to ingest over HTTP")
    parser.add_argument("--batch-rows", type=int, default=100,
                        help="rows per ingest request")
    parser.add_argument("--ingest-workers", type=int, default=2)
    parser.add_argument("--query-workers", type=int, default=8)
    parser.add_argument("--min-rps", type=float, default=2000.0,
                        help="sustained mixed requests/second gate")
    parser.add_argument("--smoke", action="store_true",
                        help="small workload for CI (same gates)")
    parser.add_argument("--json", action="store_true", help="print the record as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.updates = 40_000

    record = bench_load(
        args.updates,
        batch_rows=args.batch_rows,
        ingest_workers=args.ingest_workers,
        query_workers=args.query_workers,
        min_rps=args.min_rps,
    )
    if args.json:
        print(json.dumps(record, indent=1, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
