"""Async load generator for the HTTP sketch server.

Boots a :class:`repro.server.SketchServer` in-process on an ephemeral
port and drives it with a mixed workload of concurrent HTTP clients:
ingest workers POST distinct-key update batches while query workers
interleave ``GET /query`` reads (a mix of cold and version-cached hits,
since every ingest bumps the engine version).  Two gates:

* **throughput** — the sustained mixed request rate must reach
  ``--min-rps`` (default 2,000 requests/second);
* **ingest parity** — after the load, the engine built through
  concurrent HTTP ingest must be *bit-exact equal* to a serial
  in-process ingest of the same batches (the streaming permutation
  guarantee carried through the network layer).

A second benchmark races the two ingest encodings head to head:
``bench_binary_ingest`` pushes the same update stream once as JSON
column batches and once as pipelined ``application/x-repro-batch``
bodies (:mod:`repro.server.wire`), gates the binary path on a
``--min-speedup`` rows/second multiple over JSON (default 10x), checks
the two resulting engines are *bit-exact equal*, and probes all three
ingest formats (JSON, CSV, binary) with non-finite values, which must
come back ``400`` without touching engine state.

A third benchmark prices durability: ``bench_wal_ingest`` repeats the
binary ingest with a :class:`repro.wal.WriteAheadLog` attached
(``fsync=interval``, the serving default), checks the logged engine
stays bit-exact equal to the unlogged one *and* that the log alone
recovers it bit-exactly, and gates WAL-on throughput at
``--min-wal-ratio`` of WAL-off (default 0.5x).

A fourth benchmark scales the ingest plane *out*:
``bench_multiproc_ingest`` drives the same column stream into a
:class:`~repro.service.store.SketchStore` running the multiprocess
shard-worker backend (:mod:`repro.cluster`) at 1, 2 and 4 workers,
asserts every configuration folds back *bit-exact* equal to a serial
single-process ingest, and gates the 4-vs-1-worker speedup at
``--min-multiproc-speedup`` (default 2x) — but only when the host
actually exposes >= 4 CPU cores.  On smaller hosts the measured ratio
and the core count are recorded as-is and the gate is skipped: a
single-core box cannot exhibit a parallel speedup, and pretending
otherwise would poison the trajectory record.

Run directly::

    PYTHONPATH=src python benchmarks/bench_server.py
    PYTHONPATH=src python benchmarks/bench_server.py --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import os
import struct
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.sampling.seeds import SeedAssigner
from repro.service import codec
from repro.server import (
    BATCH_CONTENT_TYPE,
    AsyncSketchClient,
    ServerConfig,
    SketchServer,
    encode_batches,
)
from repro.service.queries import Query, query_value_json
from repro.service.store import SketchStore
from repro.wal import WriteAheadLog, recover_store

SALT = 7
INSTANCES = ("mon", "tue")


def make_batches(n_updates: int, batch_rows: int, seed: int = 0):
    """Distinct-integer-key update batches alternating over instances."""
    generator = np.random.default_rng(seed)
    keys = generator.choice(1 << 40, size=n_updates, replace=False)
    values = generator.random(n_updates) * 10.0 + 0.01
    batches = []
    for index, start in enumerate(range(0, n_updates, batch_rows)):
        stop = min(start + batch_rows, n_updates)
        batches.append(
            (
                INSTANCES[index % len(INSTANCES)],
                [int(key) for key in keys[start:stop]],
                [float(value) for value in values[start:stop]],
            )
        )
    return batches


def make_store(wal: WriteAheadLog | None = None) -> SketchStore:
    """A weight-oblivious Poisson engine sized for serving.

    A low threshold keeps the retained set (and therefore per-query
    work) bounded the way a production sketch would be — the whole point
    of sketch-based serving is that query cost tracks the sketch, not
    the stream.  ``wal`` (when given) is attached *before* the engine is
    created, so the engine-create record lands in the log and the store
    is recoverable from the log alone.
    """
    store = SketchStore()
    if wal is not None:
        store.attach_wal(wal)
    store.create(
        "bench",
        "poisson",
        threshold=0.005,
        seed_assigner=SeedAssigner(salt=SALT),
        n_shards=4,
    )
    return store


async def _ingest_worker(port, batches, counters) -> None:
    async with AsyncSketchClient(host="127.0.0.1", port=port) as client:
        for instance, keys, values in batches:
            await client.ingest("bench", instance, keys, values)
            counters["ingest_requests"] += 1
            counters["rows"] += len(keys)


async def _query_worker(port, done, counters) -> None:
    """Rotate per-instance subset sums with cross-instance distinct
    counts — a mix of cheap and compound reads, cold after every ingest
    version bump and cache-served in between."""
    async with AsyncSketchClient(host="127.0.0.1", port=port) as client:
        position = 0
        while not done.is_set():
            if position % 3 == 2:
                result = await client.query("bench", "distinct", list(INSTANCES))
            else:
                instance = INSTANCES[position % len(INSTANCES)]
                result = await client.query("bench", "sum", [instance])
            counters["query_requests"] += 1
            counters["cache_hits"] += bool(result["from_cache"])
            position += 1


async def _drive(store, batches, ingest_workers: int, query_workers: int) -> dict:
    server = SketchServer(
        store,
        # ticker + health rules enabled: the mixed load measures the
        # serving path with the full observability surface running
        ServerConfig(
            port=0,
            ingest_threads=4,
            max_pending_batches=64,
            series_interval=0.25,
            health_target_p99=1.0,
        ),
    )
    await server.start()
    counters = {
        "ingest_requests": 0,
        "query_requests": 0,
        "cache_hits": 0,
        "rows": 0,
    }
    done = asyncio.Event()
    try:
        started = time.perf_counter()
        # seed both instances first so query workers never race the
        # creation of an instance they want to read
        n_seed = len(INSTANCES)
        async with AsyncSketchClient(host="127.0.0.1", port=server.port) as client:
            for instance, keys, values in batches[:n_seed]:
                await client.ingest("bench", instance, keys, values)
                counters["ingest_requests"] += 1
                counters["rows"] += len(keys)
        ingest_tasks = [
            asyncio.ensure_future(
                _ingest_worker(
                    server.port,
                    batches[n_seed + index :: ingest_workers],
                    counters,
                )
            )
            for index in range(ingest_workers)
        ]
        query_tasks = [
            asyncio.ensure_future(_query_worker(server.port, done, counters))
            for index in range(query_workers)
        ]
        await asyncio.gather(*ingest_tasks)
        done.set()
        await asyncio.gather(*query_tasks)
        elapsed = time.perf_counter() - started
        # the health engine evaluates cleanly under load (the verdict
        # itself is workload-dependent and not gated)
        health = server.health.evaluate()
        series_samples = server.series.n_samples
        # per-route latency quantiles from the server's own histograms
        latency = {
            label: histogram.to_dict()
            for label, route in (
                ("ingest", "POST /ingest"),
                ("query", "GET /query"),
            )
            if (histogram := server.metrics.route_histogram(route))
            is not None
        }
    finally:
        done.set()
        await server.shutdown()
    n_requests = counters["ingest_requests"] + counters["query_requests"]
    return {
        "seconds": elapsed,
        "ingest_requests": counters["ingest_requests"],
        "query_requests": counters["query_requests"],
        "query_cache_hits": counters["cache_hits"],
        "rows": counters["rows"],
        "requests_per_second": n_requests / elapsed,
        "ingest_rows_per_second": counters["rows"] / elapsed,
        "latency": latency,
        "health_status": health.status,
        "series_samples": series_samples,
    }


def bench_load(
    n_updates: int,
    batch_rows: int = 100,
    ingest_workers: int = 2,
    query_workers: int = 8,
    min_rps: float = 2000.0,
    attempts: int = 3,
) -> dict:
    """Mixed ingest/query load with throughput and parity gates.

    The load runs up to ``attempts`` times and the fastest run is
    reported (every run still checks parity): the gate measures the
    server, and best-of-N is the conventional way to keep co-tenant
    noise on a shared host from failing a hard throughput floor.
    """
    batches = make_batches(n_updates, batch_rows)
    serial = make_store()
    for instance, keys, values in batches:
        serial.ingest("bench", instance, keys, values)

    numbers: dict = {}
    for _ in range(max(1, attempts)):
        store = make_store()
        attempt = asyncio.run(
            _drive(store, batches, ingest_workers, query_workers)
        )
        assert attempt["rows"] == n_updates
        assert store.engine("bench") == serial.engine("bench"), (
            "concurrent HTTP ingest diverged from serial in-process ingest"
        )
        for query in (Query.sum(INSTANCES[0]), Query.distinct(*INSTANCES)):
            final = store.query("bench", query)
            reference = serial.query("bench", query)
            assert query_value_json(final.value) == query_value_json(
                reference.value
            )
        if attempt["requests_per_second"] > numbers.get(
            "requests_per_second", 0.0
        ):
            numbers = attempt
        if numbers["requests_per_second"] >= min_rps:
            break

    print(
        f"server load ({n_updates} updates, {batch_rows} rows/batch, "
        f"{ingest_workers}+{query_workers} workers): "
        f"{numbers['requests_per_second']:8.0f} req/s "
        f"({numbers['ingest_requests']} ingest + "
        f"{numbers['query_requests']} query in "
        f"{numbers['seconds']:.2f}s), "
        f"{numbers['ingest_rows_per_second']:10.0f} rows/s  "
        f"[ingest parity with serial: ok]  (gate >= {min_rps:g} req/s)"
    )
    for label, quantiles in sorted(numbers["latency"].items()):
        print(
            f"  {label:6s} latency: "
            f"p50 {quantiles['p50_seconds'] * 1000:7.2f} ms, "
            f"p95 {quantiles['p95_seconds'] * 1000:7.2f} ms, "
            f"p99 {quantiles['p99_seconds'] * 1000:7.2f} ms "
            f"({quantiles['count']} requests)"
        )
    assert numbers["requests_per_second"] >= min_rps, (
        f"mixed throughput {numbers['requests_per_second']:.0f} req/s "
        f"below the {min_rps:g} req/s gate"
    )
    return {
        "n_updates": n_updates,
        "batch_rows": batch_rows,
        "ingest_workers": ingest_workers,
        "query_workers": query_workers,
        "parity": "ok",
        "min_rps_gate": min_rps,
        **numbers,
    }


def make_column_batches(n_updates: int, batch_rows: int, seed: int = 0):
    """The :func:`make_batches` stream with NumPy key/value columns.

    Same generator draws, so the two shapes describe the identical
    update stream — the binary-vs-JSON parity check depends on that.
    """
    generator = np.random.default_rng(seed)
    keys = generator.choice(1 << 40, size=n_updates, replace=False)
    values = generator.random(n_updates) * 10.0 + 0.01
    batches = []
    for index, start in enumerate(range(0, n_updates, batch_rows)):
        stop = min(start + batch_rows, n_updates)
        batches.append(
            (
                INSTANCES[index % len(INSTANCES)],
                keys[start:stop].astype(np.int64),
                values[start:stop].astype(float),
            )
        )
    return batches


def _ingest_config(max_batch_rows: int) -> ServerConfig:
    return ServerConfig(
        port=0,
        ingest_threads=4,
        max_pending_batches=64,
        max_batch_rows=max_batch_rows,
    )


async def _ingest_only(store, send_requests, n_workers, max_batch_rows):
    """Time an ingest-only load of prepared request senders."""
    server = SketchServer(store, _ingest_config(max_batch_rows))
    await server.start()
    try:
        started = time.perf_counter()

        async def worker(chunk) -> None:
            async with AsyncSketchClient(host="127.0.0.1", port=server.port) as client:
                for send in chunk:
                    await send(client)

        await asyncio.gather(
            *(
                worker(send_requests[index::n_workers])
                for index in range(n_workers)
            )
        )
        return time.perf_counter() - started
    finally:
        await server.shutdown()


async def _nonfinite_probes(store, max_batch_rows) -> dict:
    """POST a non-finite value through every ingest format.

    Returns the HTTP status per format; each must be 400 and none may
    move the engine version.
    """
    server = SketchServer(store, _ingest_config(max_batch_rows))
    await server.start()
    try:
        async with AsyncSketchClient(host="127.0.0.1", port=server.port) as client:
            statuses = {}
            status, _ = await client.request(
                "POST",
                "/ingest",
                body=(
                    b'{"name": "bench", "instance": "mon",'
                    b' "keys": [1, 2], "values": [1.0, NaN]}'
                ),
            )
            statuses["json"] = status
            status, _ = await client.request(
                "POST",
                "/ingest",
                params={"name": "bench"},
                body=b"instance,key,value\nmon,1,nan\n",
                content_type="text/csv",
            )
            statuses["csv"] = status
            blob = bytearray(encode_batches([("mon", [1], [1.0])]))
            blob[-8:] = struct.pack("<d", float("nan"))
            status, _ = await client.request(
                "POST",
                "/ingest",
                params={"name": "bench"},
                body=bytes(blob),
                content_type=BATCH_CONTENT_TYPE,
            )
            statuses["binary"] = status
            return statuses
    finally:
        await server.shutdown()


def bench_binary_ingest(
    n_updates: int,
    batch_rows: int = 100,
    rows_per_request: int = 50_000,
    ingest_workers: int = 2,
    min_speedup: float = 10.0,
) -> dict:
    """Race binary columnar ingest against JSON on the same stream."""
    rows_per_request = max(batch_rows, min(rows_per_request, n_updates // 2))
    max_batch_rows = max(100_000, rows_per_request)

    json_batches = make_batches(n_updates, batch_rows)
    column_batches = make_column_batches(n_updates, batch_rows)

    def send_json(batch):
        async def send(client):
            await client.ingest("bench", *batch)

        return send

    def send_binary(chunk):
        async def send(client):
            # encoding happens inside the timed window: the speedup
            # claim covers the whole client-side cost, not just I/O
            await client.ingest_binary("bench", chunk)

        return send

    chunks = _chunk_batches(column_batches, rows_per_request)

    json_store = make_store()
    json_seconds = asyncio.run(
        _ingest_only(
            json_store,
            [send_json(batch) for batch in json_batches],
            ingest_workers,
            max_batch_rows,
        )
    )
    binary_store = make_store()
    binary_seconds = asyncio.run(
        _ingest_only(
            binary_store,
            [send_binary(chunk) for chunk in chunks],
            ingest_workers,
            max_batch_rows,
        )
    )

    assert binary_store.engine("bench") == json_store.engine("bench"), (
        "binary columnar ingest diverged from JSON ingest of the same "
        "stream"
    )
    version_before = binary_store.version("bench")
    statuses = asyncio.run(_nonfinite_probes(binary_store, max_batch_rows))
    assert statuses == {"json": 400, "csv": 400, "binary": 400}, (
        f"non-finite probes expected uniform 400s, got {statuses}"
    )
    assert binary_store.version("bench") == version_before, (
        "a rejected non-finite ingest moved the engine version"
    )

    json_rps = n_updates / json_seconds
    binary_rps = n_updates / binary_seconds
    speedup = binary_rps / json_rps
    print(
        f"binary ingest ({n_updates} updates, {batch_rows} rows/batch, "
        f"{len(chunks)} pipelined bodies x <= {rows_per_request} rows): "
        f"json {json_rps:10.0f} rows/s, binary {binary_rps:10.0f} rows/s "
        f"-> {speedup:5.1f}x  [binary/json parity: ok; "
        f"non-finite -> 400 on json/csv/binary]  "
        f"(gate >= {min_speedup:g}x)"
    )
    assert speedup >= min_speedup, (
        f"binary ingest speedup {speedup:.1f}x below the "
        f"{min_speedup:g}x gate "
        f"(json {json_rps:.0f} rows/s, binary {binary_rps:.0f} rows/s)"
    )
    return {
        "n_updates": n_updates,
        "batch_rows": batch_rows,
        "rows_per_request": rows_per_request,
        "pipelined_bodies": len(chunks),
        "ingest_workers": ingest_workers,
        "json_seconds": json_seconds,
        "binary_seconds": binary_seconds,
        "json_rows_per_second": json_rps,
        "binary_rows_per_second": binary_rps,
        "speedup": speedup,
        "min_speedup_gate": min_speedup,
        "parity": "ok",
        "nonfinite_rejected": statuses,
    }


def _chunk_batches(column_batches, rows_per_request):
    """Group column batches into pipelined request bodies."""
    chunks = []
    pending_rows = 0
    for batch in column_batches:
        if not chunks or pending_rows >= rows_per_request:
            chunks.append([])
            pending_rows = 0
        chunks[-1].append(batch)
        pending_rows += len(batch[1])
    return chunks


def bench_wal_ingest(
    n_updates: int,
    batch_rows: int = 100,
    rows_per_request: int = 50_000,
    ingest_workers: int = 2,
    min_ratio: float = 0.5,
    repeats: int = 3,
) -> dict:
    """The durability tax: identical binary ingest with and without a
    write-ahead log (fsync policy ``interval``, the serving default).

    Three checks ride along with the throughput gate: the WAL-attached
    engine must stay bit-exact equal to the unlogged one, the log alone
    must recover that engine bit-exactly, and WAL-on rows/second must
    hold at least ``min_ratio`` of WAL-off.  Each side is timed
    ``repeats`` times and the best run counts — a single run lasts only
    a fraction of a second, so one slow fsync (or a page-cache writeback
    stall from an earlier benchmark) would otherwise swing the ratio by
    2-3x and make the gate flaky.
    """
    rows_per_request = max(batch_rows, min(rows_per_request, n_updates // 2))
    max_batch_rows = max(100_000, rows_per_request)
    chunks = _chunk_batches(
        make_column_batches(n_updates, batch_rows), rows_per_request
    )

    def send_binary(chunk):
        async def send(client):
            await client.ingest_binary("bench", chunk)

        return send

    nowal_store = None
    nowal_seconds = math.inf
    for _ in range(repeats):
        nowal_store = make_store()
        nowal_seconds = min(
            nowal_seconds,
            asyncio.run(
                _ingest_only(
                    nowal_store,
                    [send_binary(chunk) for chunk in chunks],
                    ingest_workers,
                    max_batch_rows,
                )
            ),
        )

    wal_seconds = math.inf
    wal_stats = None
    for _ in range(repeats):
        with tempfile.TemporaryDirectory(prefix="repro-wal-bench-") as scratch:
            wal_dir = Path(scratch) / "wal"
            wal = WriteAheadLog(wal_dir, fsync="interval")
            wal_store = make_store(wal)
            seconds = asyncio.run(
                _ingest_only(
                    wal_store,
                    [send_binary(chunk) for chunk in chunks],
                    ingest_workers,
                    max_batch_rows,
                )
            )
            if seconds < wal_seconds:
                wal_seconds = seconds
                wal_stats = wal.stats()
            wal.close()
            assert wal_store.engine("bench") == nowal_store.engine("bench"), (
                "attaching a WAL changed the ingested sketch state"
            )
            reopened = WriteAheadLog(wal_dir, fsync="off")
            try:
                report = recover_store(None, reopened)
            finally:
                reopened.close()
            assert report.store.engine("bench") == nowal_store.engine(
                "bench"
            ), "recovery from the WAL alone diverged from the live engine"
            assert report.torn_tail is None

    nowal_rps = n_updates / nowal_seconds
    wal_rps = n_updates / wal_seconds
    ratio = wal_rps / nowal_rps
    print(
        f"wal ingest ({n_updates} updates, fsync=interval, "
        f"{wal_stats['appended_records']} records / "
        f"{wal_stats['appended_bytes']} bytes logged, "
        f"{wal_stats['fsync_count']} fsyncs): "
        f"wal-off {nowal_rps:10.0f} rows/s, wal-on {wal_rps:10.0f} rows/s "
        f"-> {ratio:5.2f}x  [parity: ok; recover-from-log: bit-exact]  "
        f"(gate >= {min_ratio:g}x)"
    )
    assert ratio >= min_ratio, (
        f"WAL-on ingest holds only {ratio:.2f}x of WAL-off throughput, "
        f"below the {min_ratio:g}x gate "
        f"(wal-off {nowal_rps:.0f} rows/s, wal-on {wal_rps:.0f} rows/s)"
    )
    return {
        "n_updates": n_updates,
        "batch_rows": batch_rows,
        "rows_per_request": rows_per_request,
        "ingest_workers": ingest_workers,
        "repeats": repeats,
        "fsync_policy": "interval",
        "nowal_seconds": nowal_seconds,
        "wal_seconds": wal_seconds,
        "nowal_rows_per_second": nowal_rps,
        "wal_rows_per_second": wal_rps,
        "ratio": ratio,
        "min_ratio_gate": min_ratio,
        "appended_records": wal_stats["appended_records"],
        "appended_bytes": wal_stats["appended_bytes"],
        "fsync_count": wal_stats["fsync_count"],
        "parity": "ok",
        "recovery": "bit-exact",
    }


def bench_multiproc_ingest(
    n_updates: int,
    batch_rows: int = 2_000,
    worker_counts: tuple = (1, 2, 4),
    min_speedup: float = 2.0,
    repeats: int = 2,
) -> dict:
    """Scale-out parity and speedup of the shard-worker ingest plane.

    The same column stream is ingested serially (thread backend, the
    baseline) and through :meth:`SketchStore.start_workers` at each
    count in ``worker_counts``.  Every pooled run must fold back
    *bit-exact* equal to the serial engine — one ownership-transferring
    fold after the load keeps even heap insertion order identical — so
    the speedup claim never trades correctness for throughput.

    The ``min_speedup`` gate on the 4-vs-1-worker ratio is enforced
    only when the host schedules >= max(worker_counts) cores; the
    measured ratio and the visible core count are recorded either way.
    """
    cores = len(os.sched_getaffinity(0))
    batches = make_column_batches(n_updates, batch_rows, seed=5)

    serial = make_store()
    started = time.perf_counter()
    for instance, keys, values in batches:
        serial.ingest("bench", instance, keys, values)
    serial_seconds = time.perf_counter() - started
    serial_blob = codec.to_bytes(serial.engine("bench"))

    rows_per_second: dict[int, float] = {}
    for n_workers in worker_counts:
        best = math.inf
        for _ in range(repeats):
            store = make_store()
            store.start_workers(n_workers)
            try:
                attempt_started = time.perf_counter()
                for instance, keys, values in batches:
                    store.ingest("bench", instance, keys, values)
                # the fold is part of the work: timing stops only once
                # the parent holds the fully merged engine
                blob = codec.to_bytes(store.engine("bench", sync=True))
                seconds = time.perf_counter() - attempt_started
            finally:
                store.stop_workers()
            assert blob == serial_blob, (
                f"{n_workers}-worker ingest diverged from serial "
                "(bit-exact parity is unconditional)"
            )
            best = min(best, seconds)
        rows_per_second[n_workers] = n_updates / best

    low, high = min(worker_counts), max(worker_counts)
    speedup = rows_per_second[high] / rows_per_second[low]
    gate_enforced = cores >= high
    print(
        f"multiproc ingest ({n_updates} updates, {batch_rows} rows/batch, "
        f"{cores} cores visible): "
        f"serial {n_updates / serial_seconds:10.0f} rows/s, "
        + ", ".join(
            f"{count}w {rate:10.0f} rows/s"
            for count, rate in sorted(rows_per_second.items())
        )
        + f" -> {speedup:5.2f}x {high}w/{low}w  "
        f"[parity vs serial: bit-exact at every worker count]  "
        f"(gate >= {min_speedup:g}x, "
        f"{'enforced' if gate_enforced else f'skipped: {cores} < {high} cores'})"
    )
    if gate_enforced:
        assert speedup >= min_speedup, (
            f"{high}-worker ingest speedup {speedup:.2f}x over {low} worker "
            f"below the {min_speedup:g}x gate on a {cores}-core host"
        )
    return {
        "n_updates": n_updates,
        "batch_rows": batch_rows,
        "cores_visible": cores,
        "serial_rows_per_second": n_updates / serial_seconds,
        "worker_rows_per_second": {
            str(count): rate for count, rate in rows_per_second.items()
        },
        "speedup": speedup,
        "speedup_workers": [low, high],
        "min_speedup_gate": min_speedup,
        "gate_enforced": gate_enforced,
        "parity": "bit-exact",
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--updates", type=int, default=200_000,
                        help="total update rows to ingest over HTTP")
    parser.add_argument("--batch-rows", type=int, default=100,
                        help="rows per ingest request")
    parser.add_argument("--ingest-workers", type=int, default=2)
    parser.add_argument("--query-workers", type=int, default=8)
    parser.add_argument("--min-rps", type=float, default=2000.0,
                        help="sustained mixed requests/second gate")
    parser.add_argument("--rows-per-request", type=int, default=50_000,
                        help="rows pipelined per binary ingest body")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="binary-over-JSON ingest rows/s gate")
    parser.add_argument("--min-wal-ratio", type=float, default=0.5,
                        help="WAL-on over WAL-off ingest rows/s gate")
    parser.add_argument("--min-multiproc-speedup", type=float, default=2.0,
                        help="4-vs-1-worker ingest speedup gate "
                             "(enforced only on hosts with >= 4 cores)")
    parser.add_argument("--smoke", action="store_true",
                        help="small workload for CI (same gates)")
    parser.add_argument("--json", action="store_true", help="print the record as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.updates = 40_000

    record = {
        "mixed_load": bench_load(
            args.updates,
            batch_rows=args.batch_rows,
            ingest_workers=args.ingest_workers,
            query_workers=args.query_workers,
            min_rps=args.min_rps,
        ),
        "binary_ingest": bench_binary_ingest(
            args.updates,
            batch_rows=args.batch_rows,
            rows_per_request=args.rows_per_request,
            ingest_workers=args.ingest_workers,
            min_speedup=args.min_speedup,
        ),
        "wal_ingest": bench_wal_ingest(
            args.updates,
            batch_rows=args.batch_rows,
            rows_per_request=args.rows_per_request,
            ingest_workers=args.ingest_workers,
            min_ratio=args.min_wal_ratio,
        ),
        "multiproc_ingest": bench_multiproc_ingest(
            args.updates,
            min_speedup=args.min_multiproc_speedup,
        ),
    }
    if args.json:
        print(json.dumps(record, indent=1, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
