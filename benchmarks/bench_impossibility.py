"""Section 6 reproduction: known vs unknown seeds feasibility."""

from __future__ import annotations

from conftest import print_series, run_once

from repro.experiments.impossibility import run_impossibility


def test_impossibility_table(benchmark):
    result = run_once(benchmark, run_impossibility)
    rows = ["p1, p2      OR unknown   OR known   XOR unknown   XOR known"]
    for row in result["rows"]:
        rows.append(
            f"{row['p'][0]:.2f}, {row['p'][1]:.2f}   "
            f"{str(row['or_unknown_seeds_feasible']):>10}   "
            f"{str(row['or_known_seeds_feasible']):>8}   "
            f"{str(row['xor_unknown_seeds_feasible']):>11}   "
            f"{str(row['xor_known_seeds_feasible']):>9}"
        )
    print_series(
        "Section 6: existence of unbiased nonnegative estimators", rows
    )
    for row in result["rows"]:
        if row["p1_plus_p2"] < 1.0:
            assert not row["or_unknown_seeds_feasible"]
        assert row["or_known_seeds_feasible"]
