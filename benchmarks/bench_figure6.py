"""Figure 6 reproduction: required sample size for distinct counting."""

from __future__ import annotations

from conftest import print_series, run_once

from repro.experiments.figure6 import run_figure6


def test_figure6_sample_sizes(benchmark):
    result = run_once(benchmark, run_figure6)
    for cv, panel in result["panels"].items():
        rows = ["n            " + "".join(
            f"HT J={j:<6}" f"L J={j:<7}" for j in (0.0, 0.5, 0.9, 1.0)
        )]
        for index, n in enumerate(panel["n"]):
            cells = []
            for jaccard in (0.0, 0.5, 0.9, 1.0):
                cells.append(f"{panel['HT'][jaccard][index]:10.3g}")
                cells.append(f"{panel['L'][jaccard][index]:10.3g}")
            rows.append(f"{n:12.3g} " + " ".join(cells))
        print_series(f"Figure 6: required sample size s vs n (cv = {cv})",
                     rows)
        for jaccard, ratios in panel["ratio"].items():
            assert all(ratio <= 1.0 + 1e-9 for ratio in ratios)
