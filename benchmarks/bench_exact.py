"""Benchmark of the vectorized exact-enumeration engine and the streaming
bulk-update path, with hard speedup gates.

Measures:

* the Figure-2 exact-moments sweep (three OR estimators x two data
  vectors over a ``p`` grid): per-point scalar enumeration
  (:func:`repro.core.variance.exact_moments`) vs the stacked
  :func:`repro.exact.exact_moments_grid` engine, asserting the two agree
  bit for bit — gated at >= 20x by default;
* streaming ``update_many`` on a pre-aggregated (distinct-key) update
  column vs the per-update scalar loop, asserting identical final sketch
  state — gated at >= 5x by default;
* the full fast-mode experiment suite wall time (reported, not gated).

Run directly (it is a script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_exact.py

Use ``--grid-points 300 --updates 20000`` for a CI smoke run.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.or_estimators import OrObliviousHT, OrObliviousL, OrObliviousU
from repro.core.variance import exact_moments
from repro.exact import exact_moments_grid
from repro.experiments.runner import run_all_experiments
from repro.sampling.dispersed import ObliviousPoissonScheme
from repro.sampling.seeds import SeedAssigner
from repro.streaming.sketch import StreamingBottomK, StreamingPoisson

FACTORIES = {"HT": OrObliviousHT, "L": OrObliviousL, "U": OrObliviousU}
DATA_VECTORS = ((1.0, 1.0), (1.0, 0.0))


def time_call(function, *args, repeats: int = 1):
    """Best-of-``repeats`` wall time (robust against scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function(*args)
        best = min(best, time.perf_counter() - start)
    return result, best


def bench_figure2_grid(n_points: int, repeats: int = 2) -> dict:
    """Scalar vs grid-engine sweep of the Figure-2 variance curves.

    Both sides are timed best-of-``repeats`` so a scheduler hiccup on
    either path cannot skew the gated speedup.
    """
    grid = np.geomspace(0.05, 0.9, n_points)

    def scalar_sweep():
        curves = {}
        for name, factory in FACTORIES.items():
            for data in DATA_VECTORS:
                variances = []
                for p in grid:
                    pair = (float(p), float(p))
                    _, variance = exact_moments(
                        factory(pair), ObliviousPoissonScheme(pair), data
                    )
                    variances.append(variance)
                curves[name, data] = np.array(variances)
        return curves

    def grid_sweep():
        return {
            (name, data): exact_moments_grid(factory, grid, data)[1]
            for name, factory in FACTORIES.items()
            for data in DATA_VECTORS
        }

    scalar, scalar_seconds = time_call(scalar_sweep, repeats=repeats)
    vectorized, grid_seconds = time_call(grid_sweep, repeats=repeats)
    for key in scalar:
        np.testing.assert_array_equal(
            scalar[key], vectorized[key],
            err_msg=f"grid engine diverged from scalar path on {key}",
        )
    speedup = scalar_seconds / max(grid_seconds, 1e-12)
    print(
        f"figure-2 grid ({n_points} p-points x 6 curves): "
        f"scalar {scalar_seconds*1e3:8.1f} ms   "
        f"grid {grid_seconds*1e3:7.1f} ms   speedup {speedup:6.1f}x   "
        "(bit-identical)"
    )
    return {
        "scalar_seconds": scalar_seconds,
        "grid_seconds": grid_seconds,
        "speedup": speedup,
    }


def _sketch_state(sketch) -> tuple:
    return (
        dict(sketch._values),
        dict(sketch._ranks),
        sketch.n_updates,
        sketch.n_discarded_keys,
        sketch.threshold,
    )


def bench_update_many(n_updates: int, seed: int = 7) -> dict:
    """Per-update loop vs chunked ``update_many`` on a distinct-key
    (pre-aggregated) update column, for both sketch families."""
    rng = np.random.default_rng(seed)
    keys = rng.permutation(np.arange(n_updates, dtype=np.uint64))
    values = rng.random(n_updates) + 0.01
    results = {}
    for label, make in (
        ("bottom-k", lambda: StreamingBottomK(
            k=256, seed_assigner=SeedAssigner(salt=seed))),
        ("poisson", lambda: StreamingPoisson(
            0.05, seed_assigner=SeedAssigner(salt=seed))),
    ):
        reference = make()
        key_list, value_list = keys.tolist(), values.tolist()

        def loop(sketch=reference):
            for key, value in zip(key_list, value_list):
                sketch.update(key, value)

        _, loop_seconds = time_call(loop)
        bulk = make()
        _, bulk_seconds = time_call(lambda: bulk.update_many(keys, values))
        if _sketch_state(bulk) != _sketch_state(reference):
            raise SystemExit(
                f"update_many diverged from the per-update loop ({label})"
            )
        speedup = loop_seconds / max(bulk_seconds, 1e-12)
        rate = n_updates / max(bulk_seconds, 1e-12)
        print(
            f"{label:9s} {n_updates:>9,d} updates: "
            f"loop {loop_seconds*1e3:8.1f} ms   "
            f"update_many {bulk_seconds*1e3:7.1f} ms   "
            f"speedup {speedup:6.1f}x   {rate/1e6:5.2f} M upd/s"
        )
        results[label] = {
            "loop_seconds": loop_seconds,
            "update_many_seconds": bulk_seconds,
            "speedup": speedup,
        }
    return results


def bench_run_all(parallel: bool | None = None) -> dict:
    """Wall time of the full fast-mode experiment suite."""
    timings: dict[str, float] = {}
    _, seconds = time_call(
        lambda: run_all_experiments(fast=True, parallel=parallel,
                                    timings=timings)
    )
    slowest = max(timings, key=timings.get)
    print(
        f"run_all_experiments(fast=True): {seconds:6.3f} s "
        f"(slowest: {slowest} {timings[slowest]:.3f} s)"
    )
    return {"seconds": seconds, "per_experiment": timings}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grid-points", type=int, default=1500,
                        help="p-grid density of the figure-2 sweep")
    parser.add_argument("--updates", type=int, default=200_000,
                        help="length of the streaming update column")
    parser.add_argument("--min-grid-speedup", type=float, default=20.0,
                        help="fail below this figure-2 grid speedup")
    parser.add_argument("--min-stream-speedup", type=float, default=5.0,
                        help="fail below this update_many speedup")
    parser.add_argument("--skip-run-all", action="store_true",
                        help="skip the experiment-suite wall-time report")
    args = parser.parse_args(argv)

    grid = bench_figure2_grid(args.grid_points)
    streaming = bench_update_many(args.updates)
    if not args.skip_run_all:
        bench_run_all()

    failures = []
    if grid["speedup"] < args.min_grid_speedup:
        failures.append(
            f"figure-2 grid speedup {grid['speedup']:.1f}x is below the "
            f"{args.min_grid_speedup:.0f}x gate"
        )
    for label, row in streaming.items():
        if row["speedup"] < args.min_stream_speedup:
            failures.append(
                f"{label} update_many speedup {row['speedup']:.1f}x is "
                f"below the {args.min_stream_speedup:.0f}x gate"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"\nOK: grid {grid['speedup']:.1f}x >= "
        f"{args.min_grid_speedup:.0f}x, streaming "
        + ", ".join(
            f"{label} {row['speedup']:.1f}x" for label, row in streaming.items()
        )
        + f" >= {args.min_stream_speedup:.0f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
