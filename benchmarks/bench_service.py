"""Benchmark of the persistent sketch store and query-serving layer.

Measures, on synthetic pre-aggregated update columns:

* **concurrent-ingest throughput** of :class:`repro.service.SketchStore`
  (per-shard locking) for 1/2/4 writer threads, with a correctness gate:
  the concurrently built engine must equal serial ingest of the same
  updates;
* **snapshot/restore latency** of the binary codec (``to_bytes`` /
  ``from_bytes``) and the blob size, with a round-trip equality gate;
* **query latency, cold vs cached**: the version-keyed cache must serve a
  repeated distinct-count query at least ``--min-cache-speedup`` times
  faster than the cold evaluation.

Run directly (it is a script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --smoke
"""

from __future__ import annotations

import argparse
import json
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.sampling.seeds import SeedAssigner
from repro.service.codec import from_bytes, to_bytes
from repro.service.queries import Query, QueryPlanner
from repro.service.store import SketchStore

SALT = 7


def make_batches(n_updates: int, n_batches: int, seed: int = 0):
    """Distinct-key update batches (the pre-aggregated model in which
    sketch state is insensitive to arrival order)."""
    generator = np.random.default_rng(seed)
    keys = generator.choice(1 << 40, size=n_updates, replace=False)
    values = generator.random(n_updates) * 10.0 + 0.01
    step = max(1, n_updates // n_batches)
    return [
        (keys[start:start + step], values[start:start + step])
        for start in range(0, n_updates, step)
    ]


def make_store(kind: str = "bottom_k") -> SketchStore:
    store = SketchStore()
    if kind == "bottom_k":
        store.create(
            "bench", "bottom_k", k=256,
            seed_assigner=SeedAssigner(salt=SALT), n_shards=8,
        )
    else:
        store.create(
            "bench", "poisson", threshold=0.05,
            seed_assigner=SeedAssigner(salt=SALT), n_shards=8,
        )
    return store


def bench_concurrent_ingest(
    n_updates: int, thread_counts=(1, 2, 4)
) -> dict:
    """Store-ingest throughput per writer-thread count + parity gate."""
    batches = make_batches(n_updates, n_batches=64)

    serial = make_store()
    for keys, values in batches:
        serial.ingest("bench", "d", keys, values)

    throughput = {}
    for n_threads in thread_counts:
        store = make_store()
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(
                pool.map(
                    lambda batch: store.ingest("bench", "d", *batch),
                    batches,
                )
            )
        elapsed = time.perf_counter() - start
        assert store.engine("bench") == serial.engine("bench"), (
            f"{n_threads}-thread ingest diverged from serial ingest"
        )
        throughput[str(n_threads)] = {
            "seconds": elapsed,
            "updates_per_second": n_updates / elapsed,
        }
    print(f"concurrent ingest ({n_updates} updates):")
    for n_threads, numbers in throughput.items():
        print(
            f"  {n_threads} thread(s): "
            f"{numbers['updates_per_second']:12.0f} updates/s "
            f"({numbers['seconds']:.3f}s)  [parity with serial: ok]"
        )
    return {"n_updates": n_updates, "threads": throughput}


def bench_snapshot_restore(n_keys: int) -> dict:
    """Codec encode/decode latency on a retained set of ``n_keys``."""
    store = make_store("poisson")
    for keys, values in make_batches(n_keys, n_batches=16, seed=1):
        store.ingest("bench", "d", keys, values)
    engine = store.engine("bench")
    retained = sum(
        len(sketch.entries) for sketch in engine.shard_sketches("d")
    )

    start = time.perf_counter()
    blob = to_bytes(engine)
    encode_seconds = time.perf_counter() - start
    start = time.perf_counter()
    restored = from_bytes(blob)
    decode_seconds = time.perf_counter() - start
    assert restored == engine, "snapshot/restore round-trip diverged"
    print(
        f"snapshot/restore ({n_keys} updates, {retained} retained): "
        f"encode {encode_seconds * 1e3:.1f} ms, "
        f"decode {decode_seconds * 1e3:.1f} ms, "
        f"{len(blob)} bytes  [round-trip equality: ok]"
    )
    return {
        "n_updates": n_keys,
        "retained_keys": retained,
        "encode_seconds": encode_seconds,
        "decode_seconds": decode_seconds,
        "blob_bytes": len(blob),
    }


def bench_query_cache(n_keys: int, min_speedup: float) -> dict:
    """Cold vs version-cached distinct-count latency."""
    store = SketchStore()
    store.create(
        "bench", "poisson", threshold=0.2,
        seed_assigner=SeedAssigner(salt=SALT), n_shards=8,
    )
    generator = np.random.default_rng(2)
    keys = generator.choice(1 << 40, size=n_keys, replace=False)
    values = generator.random(n_keys) + 0.01
    split = (2 * n_keys) // 3
    store.ingest("bench", "mon", keys[:split], values[:split])
    store.ingest("bench", "tue", keys[n_keys - split:],
                 values[n_keys - split:])

    planner = QueryPlanner(store)
    query = Query.distinct("mon", "tue")
    start = time.perf_counter()
    cold = planner.run("bench", query)
    cold_seconds = time.perf_counter() - start

    repeats = 20
    start = time.perf_counter()
    for _ in range(repeats):
        cached = planner.run("bench", query)
    cached_seconds = (time.perf_counter() - start) / repeats
    assert cached.from_cache and cached.value is cold.value
    speedup = cold_seconds / cached_seconds
    print(
        f"query cache ({n_keys} updates): cold "
        f"{cold_seconds * 1e3:.1f} ms, cached "
        f"{cached_seconds * 1e6:.0f} us, speedup {speedup:.0f}x "
        f"(gate >= {min_speedup:g}x)"
    )
    assert speedup >= min_speedup, (
        f"cached query speedup {speedup:.1f}x below the "
        f"{min_speedup:g}x gate"
    )
    return {
        "n_updates": n_keys,
        "cold_seconds": cold_seconds,
        "cached_seconds": cached_seconds,
        "speedup": speedup,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--updates", type=int, default=400_000,
                        help="updates for the concurrent-ingest workload")
    parser.add_argument("--snapshot-keys", type=int, default=400_000,
                        help="updates for the snapshot/restore workload")
    parser.add_argument("--query-keys", type=int, default=100_000,
                        help="updates for the query-cache workload")
    parser.add_argument("--min-cache-speedup", type=float, default=5.0)
    parser.add_argument("--smoke", action="store_true",
                        help="small workloads for CI")
    parser.add_argument("--json", action="store_true",
                        help="print the record as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.updates = 40_000
        args.snapshot_keys = 40_000
        args.query_keys = 20_000

    record = {
        "concurrent_ingest": bench_concurrent_ingest(args.updates),
        "snapshot_restore": bench_snapshot_restore(args.snapshot_keys),
        "query_cache": bench_query_cache(
            args.query_keys, args.min_cache_speedup
        ),
    }
    if args.json:
        print(json.dumps(record, indent=1, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
