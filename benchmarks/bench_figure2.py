"""Figure 2 reproduction: variance of the OR estimators vs p."""

from __future__ import annotations

from conftest import print_series, run_once

from repro.experiments.figure2 import run_figure2


def test_figure2_or_variances(benchmark):
    result = run_once(benchmark, run_figure2)
    series = result["series"]
    rows = ["p        HT          L(1,1)      L(1,0)      U(1,1)      U(1,0)"]
    for index, p in enumerate(series["p"]):
        rows.append(
            f"{p:7.3f} {series['HT_(1,1)'][index]:11.3f} "
            f"{series['L_(1,1)'][index]:11.3f} "
            f"{series['L_(1,0)'][index]:11.3f} "
            f"{series['U_(1,1)'][index]:11.3f} "
            f"{series['U_(1,0)'][index]:11.3f}"
        )
    print_series("Figure 2: Var[OR] on data (1,1) and (1,0) vs p", rows)
    for name in ("L", "U"):
        for label in ("(1,1)", "(1,0)"):
            assert all(
                v <= ht + 1e-9
                for v, ht in zip(series[f"{name}_{label}"],
                                 series[f"HT_{label}"])
            )
