"""Benchmark of the streaming coordinated-sketch engine.

Measures, on a synthetic Zipf-like stream of ``(key, value)`` updates:

* ingest throughput (updates/second) of the sharded :class:`StreamEngine`
  for bottom-k and Poisson sketches, for several shard counts;
* merge latency of combining the per-shard sketches into the instance
  sketch;
* a correctness cross-check: the merged bottom-k sketch must equal the
  offline sample of the accumulated data.

Run directly (it is a script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_streaming.py --updates 1000000

The default stream has 1M updates; use ``--updates 20000`` for a smoke run.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.sampling.bottomk import bottom_k_sample
from repro.sampling.seeds import SeedAssigner
from repro.streaming.engine import StreamEngine


def synthetic_stream(
    n_updates: int, n_keys: int, batch_size: int, seed: int
):
    """Yield ``(keys, values)`` batches of a skewed synthetic stream."""
    generator = np.random.default_rng(seed)
    for start in range(0, n_updates, batch_size):
        size = min(batch_size, n_updates - start)
        # Zipf-like key popularity, clipped to the key universe
        keys = np.minimum(
            generator.zipf(1.3, size=size) - 1, n_keys - 1
        ).astype(np.uint64)
        values = generator.random(size) + 0.01
        yield keys, values


def accumulate(batches) -> dict[int, float]:
    totals: dict[int, float] = {}
    for keys, values in batches:
        for key, value in zip(keys.tolist(), values.tolist()):
            totals[key] = totals.get(key, 0.0) + float(value)
    return totals


def bench_engine(
    make_engine, name: str, args, check_offline: bool = False
) -> None:
    engine = make_engine()
    start = time.perf_counter()
    for keys, values in synthetic_stream(
        args.updates, args.keys, args.batch, args.seed
    ):
        engine.ingest("bench", keys, values)
    elapsed = time.perf_counter() - start
    throughput = engine.n_updates / elapsed

    merge_start = time.perf_counter()
    sketch = engine.sketch("bench")
    merge_elapsed = time.perf_counter() - merge_start
    print(
        f"{name:<28} {engine.n_updates:>10,d} updates  "
        f"{elapsed:8.3f} s  {throughput:>12,.0f} upd/s  "
        f"merge {merge_elapsed * 1e3:8.3f} ms  "
        f"retained {len(sketch.candidates()) if hasattr(sketch, 'candidates') else len(sketch):>6d}"
    )

    if check_offline:
        totals = accumulate(
            synthetic_stream(args.updates, args.keys, args.batch, args.seed)
        )
        assigner = engine.sketch("bench").seed_assigner
        offline = bottom_k_sample(
            totals, args.k, seed_assigner=assigner, instance="bench",
        )
        # Exactness guarantee: a pre-aggregated stream (each key once) is
        # byte-for-byte identical to the offline sample.
        exact_engine = make_engine()
        exact_engine.ingest(
            "bench",
            np.fromiter(totals, dtype=np.uint64, count=len(totals)),
            np.fromiter(totals.values(), dtype=float, count=len(totals)),
        )
        exact = exact_engine.sample("bench")
        if not (exact.entries == offline.entries
                and exact.ranks == offline.ranks
                and exact.threshold == offline.threshold):
            raise SystemExit("streaming sketch diverged from offline sample")
        # The raw additive stream is exact only while keys stay retained
        # (evicted keys that reappear lose their earlier mass); report how
        # close it lands.
        snapshot = sketch.to_sample()
        overlap = len(set(snapshot.entries) & set(offline.entries))
        print(
            f"{'':28} offline equivalence: pre-aggregated OK, additive "
            f"stream overlap {overlap}/{len(offline.entries)}"
        )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--updates", type=int, default=1_000_000,
                        help="number of stream updates")
    parser.add_argument("--keys", type=int, default=200_000,
                        help="size of the key universe")
    parser.add_argument("--batch", type=int, default=16_384,
                        help="ingest batch size")
    parser.add_argument("--k", type=int, default=256,
                        help="bottom-k sample size")
    parser.add_argument("--threshold", type=float, default=0.01,
                        help="Poisson (weight-oblivious) threshold")
    parser.add_argument("--shards", type=int, nargs="*", default=[1, 4, 8],
                        help="shard counts to benchmark")
    parser.add_argument("--seed", type=int, default=7, help="stream seed")
    parser.add_argument("--skip-check", action="store_true",
                        help="skip the offline equivalence cross-check")
    args = parser.parse_args(argv)
    if args.updates <= 0 or args.keys <= 0 or args.batch <= 0:
        parser.error("--updates, --keys and --batch must be positive")
    if not args.shards or any(s <= 0 for s in args.shards):
        parser.error("--shards needs at least one positive shard count")

    assigner = SeedAssigner(salt=args.seed)
    print(
        f"stream: {args.updates:,d} updates over <= {args.keys:,d} keys, "
        f"batch {args.batch:,d}"
    )
    for n_shards in args.shards:
        bench_engine(
            lambda: StreamEngine.bottom_k(
                k=args.k, seed_assigner=assigner, n_shards=n_shards
            ),
            f"bottom-k (k={args.k}, s={n_shards})",
            args,
            check_offline=(not args.skip_check and n_shards == args.shards[-1]),
        )
    for n_shards in args.shards:
        bench_engine(
            lambda: StreamEngine.poisson(
                args.threshold, seed_assigner=assigner, n_shards=n_shards
            ),
            f"poisson (p={args.threshold}, s={n_shards})",
            args,
        )


if __name__ == "__main__":
    main()
