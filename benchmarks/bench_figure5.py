"""Figure 5 reproduction: the worked example (ranks and bottom-3 samples)."""

from __future__ import annotations

from conftest import print_series, run_once

from repro.experiments.figure5 import run_figure5


def test_figure5_worked_example(benchmark):
    result = run_once(benchmark, run_figure5)
    rows = ["instance  shared-seed bottom-3   independent bottom-3"]
    for instance in (1, 2, 3):
        rows.append(
            f"{instance:<9} {sorted(result['bottom3_shared'][instance])!s:<22}"
            f"{sorted(result['bottom3_independent'][instance])!s}"
        )
    rows.append("")
    rows.append("shared-seed PPS ranks (instance 2): " + ", ".join(
        f"key{key}={rank:.4f}" if rank != float("inf") else f"key{key}=inf"
        for key, rank in sorted(result["shared_seed_ranks"][2].items())
    ))
    print_series("Figure 5: example data set, ranks and bottom-3 samples",
                 rows)
    assert result["matches_paper"]
