"""Record the repository's benchmark trajectory to a ``BENCH_*.json`` file.

Runs the headline benchmarks (exact-enumeration grid, streaming
``update_many``, full fast-mode experiment suite, and the service layer:
concurrent store ingest, snapshot/restore codec latency, query-cache
speedup) and writes their wall times and speedups to a JSON file at the
repository root, so successive PRs leave a comparable perf trail::

    PYTHONPATH=src python benchmarks/record.py                # BENCH_PR4.json
    PYTHONPATH=src python benchmarks/record.py --out BENCH_PR5.json

Use ``--smoke`` for a quick, smaller-workload run (same schema).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_exact  # noqa: E402
import bench_service  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR4.json",
                        help="output file name (written at the repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="smaller workloads for a quick run")
    args = parser.parse_args(argv)

    grid_points = 300 if args.smoke else 1500
    updates = 20_000 if args.smoke else 200_000
    service_updates = 40_000 if args.smoke else 400_000
    query_keys = 20_000 if args.smoke else 100_000

    started = time.time()
    record = {
        "recorded_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(started)
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": args.smoke,
        "benchmarks": {
            "figure2_exact_moments_grid": bench_exact.bench_figure2_grid(
                grid_points
            ),
            "streaming_update_many": bench_exact.bench_update_many(updates),
            "run_all_experiments_fast": bench_exact.bench_run_all(),
            "service_concurrent_ingest": (
                bench_service.bench_concurrent_ingest(service_updates)
            ),
            "service_snapshot_restore": (
                bench_service.bench_snapshot_restore(service_updates)
            ),
            "service_query_cache": bench_service.bench_query_cache(
                query_keys, min_speedup=5.0
            ),
        },
    }
    record["total_bench_seconds"] = time.time() - started

    out_path = REPO_ROOT / args.out
    with out_path.open("w") as handle:
        json.dump(record, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
