"""Record and compare the repository's benchmark trajectory.

Runs the headline benchmarks (exact-enumeration grid, streaming
``update_many``, full fast-mode experiment suite, the service layer —
concurrent store ingest, snapshot/restore codec latency, query-cache
speedup — the HTTP server's mixed ingest/query load, the binary
columnar ingest path raced against JSON, the same binary load with a
write-ahead log attached to measure the durability tax, and the
multiprocess shard-worker ingest plane scaled across 1/2/4 workers)
and writes their wall times and throughputs to a ``BENCH_PR<n>.json``
file at the repository root, so successive PRs leave a comparable perf
trail::

    PYTHONPATH=src python benchmarks/record.py --out BENCH_PR10.json
    PYTHONPATH=src python benchmarks/record.py --smoke --out BENCH_PR10.json

After writing (or with ``--compare-only``, instead of benching at all)
the record is diffed against every earlier ``BENCH_PR*.json``:

* metrics ending in ``_per_second`` are **hard-gated** — a drop of more
  than ``--max-regression`` (default 30%) against the most recent prior
  recording fails the run (or annotates, with ``--warn-only``);
* ``speedup`` metrics are **soft** — they compare cold vs cached or
  scalar vs vectorized timings and are too noisy to gate, so drifts
  only warn;
* latency quantiles (``p50_seconds`` .. ``p99_seconds``) are **soft
  and direction-reversed** — an *increase* beyond ``--max-regression``
  warns, but tail latency under a saturating load generator is too
  noisy to gate.

Comparisons between a ``--smoke`` record and full-workload priors are
downgraded to warnings as well (different workload sizes).  Inside
GitHub Actions the messages use ``::warning``/``::error`` workflow
annotations.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

REPO_ROOT = Path(__file__).resolve().parent.parent
_BENCH_FILE = re.compile(r"^BENCH_PR(\d+)\.json$")


# ----------------------------------------------------------------------
# Trajectory comparison
# ----------------------------------------------------------------------
def bench_history(root: Path = REPO_ROOT) -> list[tuple[int, Path, dict]]:
    """Every ``BENCH_PR<n>.json`` at the repo root, ordered by PR."""
    history = []
    for path in root.iterdir():
        match = _BENCH_FILE.match(path.name)
        if match:
            with path.open() as handle:
                history.append(
                    (int(match.group(1)), path, json.load(handle))
                )
    return sorted(history, key=lambda item: item[0])


#: latency-quantile leaves (``p50_seconds``, ``p99_seconds``, ...) —
#: compared in the *opposite* direction to throughput: bigger is worse
_LATENCY_LEAF = re.compile(r"^p\d+_seconds$")


def throughput_metrics(record: dict) -> dict[str, float]:
    """Comparable metrics of one record as ``dotted.path -> value``.

    Only the ``benchmarks`` subtree is scanned; a metric is comparable
    when its leaf name ends in ``_per_second``, is ``speedup``, or is a
    latency quantile (``p<n>_seconds``).
    """
    metrics: dict[str, float] = {}

    def walk(node: object, prefix: str) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                walk(value, f"{prefix}.{key}" if prefix else str(key))
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            leaf = prefix.rsplit(".", 1)[-1]
            if (
                leaf.endswith("_per_second")
                or leaf == "speedup"
                or _LATENCY_LEAF.match(leaf)
            ):
                metrics[prefix] = float(node)

    walk(record.get("benchmarks", {}), "")
    return metrics


def compare_records(
    new_name: str,
    new_record: dict,
    history: list[tuple[int, Path, dict]],
    max_regression: float,
) -> tuple[list[str], list[str]]:
    """Diff ``new_record`` against the prior recordings.

    Returns ``(hard_failures, messages)``: every shared metric produces
    a human-readable message; drops beyond ``max_regression`` on hard
    (``_per_second``) metrics of a workload-comparable prior also land
    in ``hard_failures``.
    """
    def fmt(value: float) -> str:
        # latency quantiles are fractions of a second; ",.1f" would
        # flatten them all to 0.0
        return f"{value:,.1f}" if abs(value) >= 10 else f"{value:.4g}"

    new_metrics = throughput_metrics(new_record)
    messages: list[str] = []
    failures: list[str] = []
    if not history:
        messages.append(
            "bench trajectory: no prior BENCH_PR*.json to compare against"
        )
        return failures, messages
    # baseline per metric = the most recent prior record carrying it
    baselines: dict[str, tuple[str, float, bool]] = {}
    for _, path, record in history:
        smoke = bool(record.get("smoke"))
        for metric, value in throughput_metrics(record).items():
            baselines[metric] = (path.name, value, smoke)
    smoke_mismatch_notes = set()
    for metric in sorted(new_metrics):
        if metric not in baselines:
            messages.append(
                f"  new       {metric} = {fmt(new_metrics[metric])}"
            )
            continue
        baseline_name, baseline, baseline_smoke = baselines[metric]
        value = new_metrics[metric]
        change = (value - baseline) / baseline if baseline else 0.0
        leaf = metric.rsplit(".", 1)[-1]
        # latency quantiles warn, never gate: tail latency under a
        # saturating load generator is far noisier than throughput
        latency = bool(_LATENCY_LEAF.match(leaf))
        soft = leaf == "speedup" or latency
        mismatch = bool(new_record.get("smoke")) != baseline_smoke
        if mismatch:
            smoke_mismatch_notes.add(baseline_name)
        # latency regresses by going *up*, throughput by going down
        regressed = (
            change > max_regression if latency else change < -max_regression
        )
        status = "ok"
        if regressed:
            status = "drifted" if (soft or mismatch) else "REGRESSED"
        messages.append(
            f"  {status:9s} {metric}  {fmt(baseline)} -> {fmt(value)} "
            f"({change:+.1%})  [vs {baseline_name}]"
        )
        if regressed and not soft and not mismatch:
            failures.append(
                f"{metric} regressed {change:+.1%} vs {baseline_name} "
                f"({fmt(baseline)} -> {fmt(value)}; gate is "
                f"-{max_regression:.0%})"
            )
    for name in sorted(smoke_mismatch_notes):
        messages.append(
            f"  note: exactly one of {new_name} and {name} is a smoke "
            "record; their regressions only warn (workload sizes differ)"
        )
    return failures, messages


def run_comparison(
    new_name: str,
    new_record: dict,
    max_regression: float,
    warn_only: bool,
    root: Path = REPO_ROOT,
) -> int:
    history = [
        item for item in bench_history(root) if item[1].name != new_name
    ]
    failures, messages = compare_records(
        new_name, new_record, history, max_regression
    )
    prior_names = ", ".join(path.name for _, path, _ in history) or "none"
    print(f"\nbench trajectory: {new_name} vs {prior_names}")
    for message in messages:
        print(message)
    annotate = "GITHUB_ACTIONS" in os.environ
    for failure in failures:
        if annotate:
            kind = "warning" if warn_only else "error"
            print(f"::{kind} title=Bench trajectory::{failure}")
        print(f"{'warning' if warn_only else 'FAIL'}: {failure}")
    if failures and not warn_only:
        return 1
    return 0


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
def record_benchmarks(smoke: bool) -> dict:
    # imported here, not at module level: the --compare-only path diffs
    # committed JSON files and must not require numpy/scipy/repro
    import bench_exact
    import bench_server
    import bench_service

    grid_points = 300 if smoke else 1500
    updates = 20_000 if smoke else 200_000
    service_updates = 40_000 if smoke else 400_000
    query_keys = 20_000 if smoke else 100_000
    server_updates = 40_000 if smoke else 200_000

    started = time.time()
    record = {
        "recorded_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(started)
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": smoke,
        "benchmarks": {
            "figure2_exact_moments_grid": bench_exact.bench_figure2_grid(
                grid_points
            ),
            "streaming_update_many": bench_exact.bench_update_many(updates),
            "run_all_experiments_fast": bench_exact.bench_run_all(),
            "service_concurrent_ingest": (
                bench_service.bench_concurrent_ingest(service_updates)
            ),
            "service_snapshot_restore": (
                bench_service.bench_snapshot_restore(service_updates)
            ),
            "service_query_cache": bench_service.bench_query_cache(
                query_keys, min_speedup=5.0
            ),
            "server_mixed_load": bench_server.bench_load(server_updates),
            "server_binary_ingest": bench_server.bench_binary_ingest(
                server_updates
            ),
            "server_wal_ingest": bench_server.bench_wal_ingest(
                server_updates
            ),
            "service_multiproc_ingest": (
                bench_server.bench_multiproc_ingest(server_updates)
            ),
        },
    }
    record["total_bench_seconds"] = time.time() - started
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR10.json",
                        help="output file name (written at the repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="smaller workloads for a quick run")
    parser.add_argument("--compare-only", action="store_true",
                        help="skip the benchmarks; just diff --out "
                             "against the earlier BENCH_PR*.json files")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="tolerated fractional drop of hard "
                             "(_per_second) metrics (default 0.30)")
    args = parser.parse_args(argv)

    out_path = REPO_ROOT / args.out
    if args.compare_only:
        if not out_path.exists():
            print(
                f"error: {out_path} does not exist; record it first",
                file=sys.stderr,
            )
            return 2
        with out_path.open() as handle:
            record = json.load(handle)
    else:
        record = record_benchmarks(args.smoke)
        with out_path.open("w") as handle:
            json.dump(record, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {out_path}")

    return run_comparison(
        out_path.name, record, args.max_regression, args.warn_only
    )


if __name__ == "__main__":
    sys.exit(main())
