"""Figure 7 reproduction: max-dominance estimation on traffic instances."""

from __future__ import annotations

from conftest import print_series, run_once

from repro.experiments.figure7 import run_figure7


def test_figure7_max_dominance(benchmark):
    result = run_once(
        benchmark, run_figure7,
        sampled_fractions=(0.01, 0.02, 0.05, 0.1, 0.25, 0.5),
        n_keys_per_instance=2000,
        total_flows=5e4,
        grid_size=601,
    )
    rows = ["% sampled   var[HT]/mu^2   var[L]/mu^2   var[HT]/var[L]"]
    for row in result["rows"]:
        rows.append(
            f"{100 * row['sampled_fraction']:9.2f}   "
            f"{row['normalized_var_HT']:12.3e}   "
            f"{row['normalized_var_L']:11.3e}   "
            f"{row['var_ratio_HT_over_L']:13.3f}"
        )
    low, high = result["ratio_range"]
    rows.append(f"variance ratio range: {low:.3f} .. {high:.3f} "
                "(paper reports 2.45 .. 2.7 on its traffic trace)")
    print_series(
        "Figure 7: normalised variance of max-dominance estimators", rows
    )
    for row in result["rows"]:
        assert row["normalized_var_L"] <= row["normalized_var_HT"]
    assert low >= 1.5
