"""Micro-benchmarks of the estimator and sampling primitives.

Unlike the figure benchmarks (run once to regenerate a table), these measure
raw throughput of the hot code paths: per-outcome estimation, per-key
variance integration and single-instance sampling.
"""

from __future__ import annotations

import numpy as np

from repro.core.max_oblivious import MaxObliviousL
from repro.core.max_weighted import MaxPpsL
from repro.core.or_estimators import OrKnownSeedsL
from repro.sampling.bottomk import bottom_k_sample
from repro.sampling.dispersed import ObliviousPoissonScheme, PpsPoissonScheme
from repro.sampling.poisson import poisson_pps_sample
from repro.sampling.seeds import SeedAssigner
from repro.sampling.varopt import varopt_sample


def _oblivious_outcomes(n, r=4, p=0.3, seed=0):
    scheme = ObliviousPoissonScheme((p,) * r)
    rng = np.random.default_rng(seed)
    return [
        scheme.sample(tuple(rng.uniform(0, 100, r)), rng=rng)
        for _ in range(n)
    ]


def _pps_outcomes(n, tau=(10.0, 10.0), seed=0):
    scheme = PpsPoissonScheme(tau)
    rng = np.random.default_rng(seed)
    return [
        scheme.sample(tuple(rng.uniform(0, 12, 2)), rng=rng)
        for _ in range(n)
    ]


def test_max_oblivious_l_estimation_throughput(benchmark):
    estimator = MaxObliviousL((0.3,) * 4)
    outcomes = _oblivious_outcomes(2000)

    def run():
        return sum(estimator.estimate(outcome) for outcome in outcomes)

    total = benchmark(run)
    assert total >= 0.0


def test_max_pps_l_estimation_throughput(benchmark):
    estimator = MaxPpsL((10.0, 10.0))
    outcomes = _pps_outcomes(2000)

    def run():
        return sum(estimator.estimate(outcome) for outcome in outcomes)

    total = benchmark(run)
    assert total >= 0.0


def test_max_pps_l_variance_integration(benchmark):
    estimator = MaxPpsL((10.0, 10.0))
    rng = np.random.default_rng(1)
    data = [tuple(rng.uniform(0, 12, 2)) for _ in range(50)]

    def run():
        return sum(estimator.variance(values, grid_size=801)
                   for values in data)

    total = benchmark(run)
    assert total >= 0.0


def test_or_known_seeds_estimation_throughput(benchmark):
    estimator = OrKnownSeedsL((0.2, 0.2))
    scheme = PpsPoissonScheme((5.0, 5.0))
    rng = np.random.default_rng(2)
    outcomes = [
        scheme.sample((float(rng.integers(0, 2)), float(rng.integers(0, 2))),
                      rng=rng)
        for _ in range(2000)
    ]

    def run():
        return sum(estimator.estimate(outcome) for outcome in outcomes)

    total = benchmark(run)
    assert total >= 0.0


def test_poisson_pps_sampling_throughput(benchmark):
    values = {i: float(i % 97 + 1) for i in range(20_000)}
    seeds = SeedAssigner(salt=3)

    def run():
        return len(poisson_pps_sample(values, expected_size=2000,
                                      seed_assigner=seeds))

    size = benchmark(run)
    assert size > 0


def test_bottom_k_sampling_throughput(benchmark):
    values = {i: float(i % 97 + 1) for i in range(20_000)}
    seeds = SeedAssigner(salt=4)

    def run():
        return len(bottom_k_sample(values, k=1000, seed_assigner=seeds))

    size = benchmark(run)
    assert size == 1000


def test_varopt_sampling_throughput(benchmark):
    values = {i: float(i % 97 + 1) for i in range(5_000)}

    def run():
        return len(varopt_sample(values, k=500, rng=5))

    size = benchmark(run)
    assert size == 500
