"""Figure 1 reproduction: max estimators under weight-oblivious sampling."""

from __future__ import annotations

from conftest import print_series, run_once

from repro.experiments.figure1 import run_figure1


def test_figure1_variance_ratio_curves(benchmark):
    result = run_once(benchmark, run_figure1, n_points=21)
    series = result["series"]
    rows = ["min/max   var[L]/var[HT]   var[U]/var[HT]"]
    for fraction, l_ratio, u_ratio in zip(
        series["min_over_max"],
        series["var_ratio_L_over_HT"],
        series["var_ratio_U_over_HT"],
    ):
        rows.append(f"{fraction:7.3f}   {l_ratio:14.4f}   {u_ratio:14.4f}")
    print_series("Figure 1: variance ratios vs min/max (p1 = p2 = 1/2)", rows)
    assert all(r <= 1.0 + 1e-9 for r in series["var_ratio_L_over_HT"])
    assert all(r <= 1.0 + 1e-9 for r in series["var_ratio_U_over_HT"])


def test_figure1_estimate_tables(benchmark):
    result = run_once(benchmark, run_figure1, n_points=3)
    tables = result["estimate_tables_at_(1.0,0.4)"]
    rows = ["outcome      HT          L           U"]
    for outcome in ("S={}", "S={1}", "S={2}", "S={1,2}"):
        rows.append(
            f"{outcome:<10}"
            f"{tables['HT'][outcome]:10.4f}  "
            f"{tables['L'][outcome]:10.4f}  "
            f"{tables['U'][outcome]:10.4f}"
        )
    print_series("Figure 1: estimate tables on data (1.0, 0.4)", rows)
    assert tables["HT"]["S={}"] == 0.0
