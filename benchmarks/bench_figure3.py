"""Figure 3 reproduction: the PPS known-seed max^(L) closed forms."""

from __future__ import annotations

from conftest import print_series, run_once

from repro.experiments.figure3 import run_figure3


def test_figure3_estimator_table_and_unbiasedness(benchmark):
    result = run_once(benchmark, run_figure3, n_grid=6)
    rows = ["determining vector (v1 >= v2)    estimate"]
    for entry in result["estimate_table"][:18]:
        v1, v2 = entry["determining_vector"]
        rows.append(f"({v1:8.3f}, {v2:8.3f})          {entry['estimate']:10.4f}")
    rows.append(f"... ({len(result['estimate_table'])} grid points total)")
    rows.append(
        f"max |bias| over the data grid: {result['max_absolute_bias']:.2e}"
    )
    print_series("Figure 3: max^(L) for two PPS samples with known seeds",
                 rows)
    assert result["max_absolute_bias"] < 1e-3
