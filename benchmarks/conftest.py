"""Shared helpers for the benchmark harness.

Every ``bench_figureN.py`` regenerates the corresponding table/figure of the
paper through :mod:`repro.experiments` and prints the series the paper plots,
so that ``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
run.  Figures are timed by pytest-benchmark with a single round (the
experiment functions are deterministic; timing them repeatedly would only
slow the reproduction down).
"""

from __future__ import annotations

BENCHMARK_OPTIONS = {"rounds": 1, "iterations": 1, "warmup_rounds": 0}


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return its
    result."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, **BENCHMARK_OPTIONS
    )


def print_series(title: str, rows: list[str]) -> None:
    """Print a reproduction table underneath the benchmark output."""
    print()
    print(f"=== {title} ===")
    for row in rows:
        print(row)
