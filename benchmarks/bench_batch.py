"""Benchmark of the columnar batch estimation engine.

Measures, on randomized workloads of per-key sampling outcomes:

* per-estimator throughput of the vectorized ``estimate_batch`` path
  against the scalar ``estimate`` loop (the reference implementation),
  asserting the two agree to 1e-12 on every workload;
* the end-to-end speedup of a 100k-key ``max^(L)`` sum aggregate, the
  workload the ISSUE gates on (>= 10x);
* aggregate-level throughput of :func:`sum_aggregate_oblivious`, which
  assembles the batch from a dataset + seed assigner.

Run directly (it is a script, not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_batch.py --n-outcomes 100000

Use ``--n-outcomes 20000 --min-speedup 3`` for a CI smoke run.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.aggregates.dataset import MultiInstanceDataset
from repro.aggregates.sum_estimator import sum_aggregate_oblivious
from repro.batch import OutcomeBatch
from repro.core.functions import maximum
from repro.core.max_oblivious import (
    MaxObliviousHT,
    MaxObliviousL,
    MaxObliviousU,
    MaxObliviousUAsymmetric,
)
from repro.core.max_weighted import MaxPpsHT, MaxPpsL
from repro.core.or_estimators import OrKnownSeedsL, OrObliviousL
from repro.sampling.seeds import SeedAssigner


def oblivious_batch(rng, n, probabilities, binary=False, seeds=False):
    r = len(probabilities)
    if binary:
        values = (rng.random((n, r)) < 0.6).astype(np.float64)
    else:
        values = np.round(rng.gamma(2.0, 3.0, (n, r)), 3)
        values *= rng.random((n, r)) < 0.8
    seed_matrix = rng.random((n, r))
    sampled = seed_matrix <= np.asarray(probabilities)
    if binary:
        # known-seed weighted model: only 1-valued entries can be sampled
        sampled &= values == 1.0
    return OutcomeBatch(
        values=values,
        sampled=sampled,
        seeds=seed_matrix if seeds else None,
    )


def pps_batch(rng, n, tau_star):
    r = len(tau_star)
    values = np.round(rng.gamma(2.0, 0.6 * max(tau_star), (n, r)), 3)
    values *= rng.random((n, r)) < 0.7
    seeds = rng.random((n, r))
    sampled = (values > 0.0) & (values >= seeds * np.asarray(tau_star))
    return OutcomeBatch(values=values, sampled=sampled, seeds=seeds)


def time_call(function, *args, repeats=1):
    """Best-of-``repeats`` wall time (robust against scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function(*args)
        best = min(best, time.perf_counter() - start)
    return result, best


def bench_estimator(name, estimator, batch):
    outcomes = batch.to_outcomes()
    scalar, scalar_seconds = time_call(
        lambda: np.array([estimator.estimate(o) for o in outcomes]),
        repeats=2,
    )
    batched, batch_seconds = time_call(
        estimator.estimate_batch, batch, repeats=5
    )
    np.testing.assert_allclose(batched, scalar, rtol=1e-12, atol=1e-12)
    speedup = scalar_seconds / max(batch_seconds, 1e-12)
    rate = len(batch) / max(batch_seconds, 1e-12)
    print(
        f"{name:22s} scalar {scalar_seconds*1e3:9.1f} ms   "
        f"batch {batch_seconds*1e3:7.1f} ms   "
        f"speedup {speedup:7.1f}x   {rate/1e6:6.2f} M outcomes/s"
    )
    return speedup


def bench_sum_aggregate(args) -> None:
    rng = np.random.default_rng(args.seed)
    n = args.n_outcomes
    keys = np.arange(n)
    instances = {
        label: dict(
            zip(
                keys.tolist(),
                np.round(rng.gamma(2.0, 3.0, n) + 0.01, 3).tolist(),
            )
        )
        for label in ("a", "b")
    }
    dataset = MultiInstanceDataset(instances)
    probabilities = (0.3, 0.3)
    estimator = MaxObliviousL(probabilities)
    result, seconds = time_call(
        lambda: sum_aggregate_oblivious(
            dataset,
            ("a", "b"),
            probabilities,
            estimator,
            SeedAssigner(salt=args.seed),
            true_function=maximum,
        )
    )
    print(
        f"\nsum_aggregate_oblivious over {n} keys: {seconds*1e3:.1f} ms "
        f"({n/seconds/1e6:.2f} M keys/s), relative error "
        f"{result.relative_error:.4f}"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-outcomes", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="fail unless the max^(L) workload reaches this speedup",
    )
    args = parser.parse_args()
    rng = np.random.default_rng(args.seed)
    n = args.n_outcomes

    p2 = (0.3, 0.7)
    tau = (10.0, 25.0)
    print(f"=== batch vs scalar estimation, {n} outcomes ===")
    gate = bench_estimator(
        "max^(L) r=2", MaxObliviousL(p2), oblivious_batch(rng, n, p2)
    )
    bench_estimator(
        "max^(L) uniform r=4",
        MaxObliviousL((0.3,) * 4),
        oblivious_batch(rng, n, (0.3,) * 4),
    )
    bench_estimator(
        "max^(HT)", MaxObliviousHT(p2), oblivious_batch(rng, n, p2)
    )
    bench_estimator(
        "max^(U)", MaxObliviousU(p2), oblivious_batch(rng, n, p2)
    )
    bench_estimator(
        "max^(Uas)", MaxObliviousUAsymmetric(p2), oblivious_batch(rng, n, p2)
    )
    bench_estimator(
        "OR^(L)",
        OrObliviousL(p2),
        oblivious_batch(rng, n, p2, binary=True),
    )
    bench_estimator(
        "OR^(L) known seeds",
        OrKnownSeedsL(p2),
        oblivious_batch(rng, n, p2, binary=True, seeds=True),
    )
    bench_estimator("PPS max^(HT)", MaxPpsHT(tau), pps_batch(rng, n, tau))
    bench_estimator("PPS max^(L)", MaxPpsL(tau), pps_batch(rng, n, tau))

    bench_sum_aggregate(args)

    if gate < args.min_speedup:
        print(
            f"FAIL: max^(L) speedup {gate:.1f}x is below the "
            f"{args.min_speedup:.0f}x gate"
        )
        return 1
    print(f"\nOK: max^(L) speedup {gate:.1f}x >= {args.min_speedup:.0f}x gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
