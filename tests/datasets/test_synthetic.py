"""Tests for the synthetic workload generators."""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import (
    correlated_instance_pair,
    sensor_measurements,
    set_pair_with_jaccard,
    zipf_traffic_pair,
)
from repro.exceptions import InvalidParameterError


class TestZipfTraffic:
    def test_matches_requested_statistics(self):
        dataset = zipf_traffic_pair(
            n_keys_per_instance=2000, n_common_keys=1200,
            total_flows=5e4, rng=0,
        )
        assert len(dataset.instance("hour1")) == 2000
        assert len(dataset.instance("hour2")) == 2000
        assert dataset.distinct_count() == 2 * 2000 - 1200
        total1 = sum(dataset.instance("hour1").values())
        assert total1 == pytest.approx(5e4, rel=0.05)

    def test_values_are_positive_integers(self):
        dataset = zipf_traffic_pair(n_keys_per_instance=500,
                                    n_common_keys=200, total_flows=1e4, rng=1)
        for value in dataset.instance("hour1").values():
            assert value >= 1.0
            assert value == int(value)

    def test_heavy_tail(self):
        dataset = zipf_traffic_pair(n_keys_per_instance=2000,
                                    n_common_keys=1000, total_flows=1e5, rng=2)
        values = sorted(dataset.instance("hour1").values(), reverse=True)
        top_share = sum(values[:20]) / sum(values)
        assert top_share > 0.1

    def test_default_common_keys_match_paper_distinct_count(self):
        dataset = zipf_traffic_pair(rng=3)
        assert dataset.distinct_count() == 38_000

    def test_invalid_overlap(self):
        with pytest.raises(InvalidParameterError):
            zipf_traffic_pair(n_keys_per_instance=100, n_common_keys=200)

    def test_reproducible(self):
        a = zipf_traffic_pair(n_keys_per_instance=300, n_common_keys=100,
                              total_flows=1e4, rng=7)
        b = zipf_traffic_pair(n_keys_per_instance=300, n_common_keys=100,
                              total_flows=1e4, rng=7)
        assert a.instance("hour1") == b.instance("hour1")


class TestSetPairs:
    @pytest.mark.parametrize("jaccard", [0.0, 0.3, 0.5, 0.9, 1.0])
    def test_target_jaccard(self, jaccard):
        set1, set2 = set_pair_with_jaccard(5000, jaccard)
        assert len(set1) == len(set2) == 5000
        achieved = len(set1 & set2) / len(set1 | set2)
        assert achieved == pytest.approx(jaccard, abs=0.01)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            set_pair_with_jaccard(0, 0.5)
        with pytest.raises(InvalidParameterError):
            set_pair_with_jaccard(10, 1.5)


class TestCorrelatedPair:
    def test_shapes_and_positivity(self):
        dataset = correlated_instance_pair(n_keys=200, rng=0)
        assert dataset.n_instances == 2
        for label in ("a", "b"):
            for value in dataset.instance(label).values():
                assert value > 0.0

    def test_sparsity_removes_keys(self):
        dataset = correlated_instance_pair(n_keys=1000, sparsity=0.3, rng=1)
        assert len(dataset.instance("a")) < 1000

    def test_invalid_correlation(self):
        with pytest.raises(InvalidParameterError):
            correlated_instance_pair(correlation=1.5)


class TestSensorMeasurements:
    def test_instances_and_keys(self):
        dataset = sensor_measurements(n_sensors=50, n_periods=3, rng=0)
        assert dataset.n_instances == 3
        assert len(dataset.active_keys()) <= 50

    def test_values_positive(self):
        dataset = sensor_measurements(n_sensors=30, n_periods=2, rng=1)
        for label in dataset.instance_labels:
            for value in dataset.instance(label).values():
                assert value > 0.0
