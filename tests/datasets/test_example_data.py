"""Tests for the Figure 5 worked example data."""

from __future__ import annotations

import pytest

from repro.datasets.example_data import (
    FIGURE5_DATASET,
    FIGURE5_SEEDS_INDEPENDENT,
    FIGURE5_SEEDS_SHARED,
    figure5_dataset,
)


class TestFigure5Data:
    def test_dimensions(self):
        assert FIGURE5_DATASET.n_instances == 3
        assert FIGURE5_DATASET.active_keys() == {1, 2, 3, 4, 5, 6}

    def test_values_match_paper(self):
        assert FIGURE5_DATASET.value(1, 1) == 15
        assert FIGURE5_DATASET.value(2, 4) == 20
        assert FIGURE5_DATASET.value(3, 4) == 0
        assert FIGURE5_DATASET.value(1, 2) == 0

    def test_function_rows_match_paper(self):
        # Figure 5 (A) lists max/min/RG per key; spot-check several.
        data = FIGURE5_DATASET
        assert data.value_vector(1, [1, 2]) == (15, 20)
        assert max(data.value_vector(1, [1, 2])) == 20
        assert min(data.value_vector(2, [1, 2])) == 0
        assert max(data.value_vector(5, [1, 2, 3])) == 15
        rg4 = max(data.value_vector(4)) - min(data.value_vector(4))
        assert rg4 == 20

    def test_max_dominance_of_example(self):
        # Row "max(v1, v2)" of Figure 5: 20 + 10 + 12 + 20 + 10 + 10 = 82.
        assert FIGURE5_DATASET.max_dominance([1, 2]) == pytest.approx(82.0)

    def test_example_aggregates_from_paper_text(self):
        # "The max dominance norm over even keys and instances {1,2} is 40."
        assert FIGURE5_DATASET.max_dominance(
            [1, 2], predicate=lambda key: key % 2 == 0
        ) == pytest.approx(40.0)
        # "The L1 distance between instances {2,3} over keys {1,2,3} is 18."
        assert FIGURE5_DATASET.l1_distance(
            [2, 3], predicate=lambda key: key in {1, 2, 3}
        ) == pytest.approx(18.0)

    def test_seed_tables_complete(self):
        assert set(FIGURE5_SEEDS_SHARED) == {1, 2, 3, 4, 5, 6}
        assert set(FIGURE5_SEEDS_INDEPENDENT) == {1, 2, 3}
        for seeds in FIGURE5_SEEDS_INDEPENDENT.values():
            assert set(seeds) == {1, 2, 3, 4, 5, 6}

    def test_fresh_copy(self):
        assert figure5_dataset() is not FIGURE5_DATASET
        assert figure5_dataset().max_dominance([1, 2]) == \
            FIGURE5_DATASET.max_dominance([1, 2])
