"""Tests for the instances x keys data model."""

from __future__ import annotations

import pytest

from repro.aggregates.dataset import MultiInstanceDataset
from repro.exceptions import InvalidParameterError


class TestConstruction:
    def test_zero_values_dropped(self):
        data = MultiInstanceDataset({"a": {"x": 0.0, "y": 2.0}})
        assert data.instance("a") == {"y": 2.0}

    def test_negative_values_rejected(self):
        with pytest.raises(InvalidParameterError):
            MultiInstanceDataset({"a": {"x": -1.0}})

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            MultiInstanceDataset({})

    def test_unknown_instance(self, small_dataset):
        with pytest.raises(InvalidParameterError):
            small_dataset.instance("nope")
        with pytest.raises(InvalidParameterError):
            small_dataset.value("nope", "a")


class TestQueries:
    def test_value_and_vector(self, small_dataset):
        assert small_dataset.value("day1", "a") == 4.0
        assert small_dataset.value("day1", "d") == 0.0
        assert small_dataset.value_vector("a") == (4.0, 5.0)
        assert small_dataset.value_vector("c", ["day2", "day1"]) == (0.0, 7.0)

    def test_active_keys(self, small_dataset):
        assert small_dataset.active_keys(["day1"]) == {"a", "b", "c", "e"}
        assert small_dataset.active_keys() == {"a", "b", "c", "d", "e"}

    def test_instance_labels(self, small_dataset):
        assert small_dataset.instance_labels == ["day1", "day2"]
        assert small_dataset.n_instances == 2


class TestAggregates:
    def test_distinct_count(self, small_dataset):
        assert small_dataset.distinct_count() == 5
        assert small_dataset.distinct_count(["day1"]) == 4

    def test_max_dominance(self, small_dataset):
        # max per key: a 5, b 1, c 7, d 3, e 2 -> 18
        assert small_dataset.max_dominance() == pytest.approx(18.0)

    def test_min_dominance(self, small_dataset):
        # min per key: a 4, b 0.5, c 0, d 0, e 2 -> 6.5
        assert small_dataset.min_dominance() == pytest.approx(6.5)

    def test_l1_distance(self, small_dataset):
        # |4-5| + |1-0.5| + |7-0| + |0-3| + |2-2| = 11.5
        assert small_dataset.l1_distance() == pytest.approx(11.5)

    def test_l1_is_max_minus_min_dominance(self, small_dataset):
        assert small_dataset.l1_distance() == pytest.approx(
            small_dataset.max_dominance() - small_dataset.min_dominance()
        )

    def test_predicate_selection(self, small_dataset):
        vowels = {"a", "e"}
        assert small_dataset.distinct_count(
            predicate=lambda key: key in vowels
        ) == 2
        assert small_dataset.max_dominance(
            predicate=lambda key: key in vowels
        ) == pytest.approx(7.0)

    def test_jaccard(self, small_dataset):
        # |{a, b, e}| / |{a, b, c, d, e}| = 3/5
        assert small_dataset.jaccard("day1", "day2") == pytest.approx(0.6)

    def test_jaccard_unknown_instance(self, small_dataset):
        with pytest.raises(InvalidParameterError):
            small_dataset.jaccard("day1", "nope")

    def test_empty_selection_rejected(self, small_dataset):
        with pytest.raises(InvalidParameterError):
            small_dataset.max_dominance([])
