"""Tests for the L1 distance estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates.distance import l1_distance_ht
from repro.datasets.synthetic import correlated_instance_pair
from repro.exceptions import InvalidParameterError
from repro.sampling.seeds import SeedAssigner


@pytest.fixture(scope="module")
def dataset():
    return correlated_instance_pair(n_keys=250, correlation=0.5, rng=3)


class TestL1Distance:
    def test_full_sampling_exact(self, dataset):
        result = l1_distance_ht(
            dataset, ("a", "b"), (1.0, 1.0), SeedAssigner(salt=0)
        )
        assert result.estimate == pytest.approx(dataset.l1_distance(("a", "b")))

    def test_unbiased(self, dataset):
        estimates = []
        for salt in range(80):
            result = l1_distance_ht(
                dataset, ("a", "b"), (0.5, 0.5), SeedAssigner(salt=salt)
            )
            estimates.append(result.estimate)
        assert np.mean(estimates) == pytest.approx(
            dataset.l1_distance(("a", "b")), rel=0.08
        )

    def test_requires_two_instances(self, dataset):
        with pytest.raises(InvalidParameterError):
            l1_distance_ht(dataset, ("a",), (0.5,), SeedAssigner())
        with pytest.raises(InvalidParameterError):
            l1_distance_ht(dataset, ("a", "b"), (0.5,), SeedAssigner())

    def test_predicate(self, dataset):
        result = l1_distance_ht(
            dataset, ("a", "b"), (1.0, 1.0), SeedAssigner(salt=0),
            predicate=lambda key: key < 100,
        )
        assert result.estimate == pytest.approx(
            dataset.l1_distance(("a", "b"), predicate=lambda key: key < 100)
        )
