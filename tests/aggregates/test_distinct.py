"""Tests for distinct-count estimation (Section 8.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates.distinct import (
    categorize_keys,
    distinct_count_ht,
    distinct_count_l,
    distinct_ht_variance,
    distinct_l_variance,
)
from repro.datasets.synthetic import set_pair_with_jaccard
from repro.exceptions import InvalidParameterError
from repro.sampling.seeds import SeedAssigner


def draw_samples(set1, set2, p1, p2, seeds):
    """Weighted sampling of binary sets with reproducible seeds."""
    sample1 = {key for key in set1 if seeds.seed(key, instance=1) <= p1}
    sample2 = {key for key in set2 if seeds.seed(key, instance=2) <= p2}
    return sample1, sample2


def seed_lookups(seeds):
    return (
        lambda key: seeds.seed(key, instance=1),
        lambda key: seeds.seed(key, instance=2),
    )


class TestCategorisation:
    def test_categories_are_disjoint_and_cover(self):
        set1, set2 = set_pair_with_jaccard(500, 0.5)
        seeds = SeedAssigner(salt=3)
        p1 = p2 = 0.4
        sample1, sample2 = draw_samples(set1, set2, p1, p2, seeds)
        lookup1, lookup2 = seed_lookups(seeds)
        categories = categorize_keys(
            sample1, sample2, p1, p2, lookup1, lookup2
        )
        all_keys = set().union(*categories.values())
        assert all_keys == sample1 | sample2
        total = sum(len(keys) for keys in categories.values())
        assert total == len(all_keys)

    def test_f10_certifies_absence(self):
        set1, set2 = set_pair_with_jaccard(500, 0.0)
        seeds = SeedAssigner(salt=5)
        p1 = p2 = 0.5
        sample1, sample2 = draw_samples(set1, set2, p1, p2, seeds)
        lookup1, lookup2 = seed_lookups(seeds)
        categories = categorize_keys(
            sample1, sample2, p1, p2, lookup1, lookup2
        )
        for key in categories["F10"]:
            assert key not in set2
        for key in categories["F01"]:
            assert key not in set1

    def test_dict_seed_lookup(self):
        categories = categorize_keys(
            {"a"}, set(), 0.5, 0.5, {"a": 0.1}, {"a": 0.9}
        )
        assert categories["F1?"] == {"a"}

    def test_missing_seed_raises(self):
        with pytest.raises(InvalidParameterError):
            categorize_keys({"a"}, set(), 0.5, 0.5, {}, {})


class TestEstimates:
    @pytest.mark.parametrize("jaccard", [0.0, 0.5, 1.0])
    @pytest.mark.parametrize("p", [0.2, 0.5])
    def test_both_estimators_unbiased(self, jaccard, p):
        set1, set2 = set_pair_with_jaccard(2000, jaccard)
        true_distinct = len(set1 | set2)
        estimates_ht = []
        estimates_l = []
        for salt in range(60):
            seeds = SeedAssigner(salt=salt)
            sample1, sample2 = draw_samples(set1, set2, p, p, seeds)
            lookup1, lookup2 = seed_lookups(seeds)
            estimates_ht.append(
                distinct_count_ht(sample1, sample2, p, p, lookup1, lookup2).estimate
            )
            estimates_l.append(
                distinct_count_l(sample1, sample2, p, p, lookup1, lookup2).estimate
            )
        standard_error = np.sqrt(
            distinct_ht_variance(true_distinct, p, p) / 60
        )
        assert abs(np.mean(estimates_ht) - true_distinct) < 5 * standard_error
        standard_error_l = np.sqrt(
            distinct_l_variance(true_distinct, jaccard, p, p) / 60
        )
        assert abs(np.mean(estimates_l) - true_distinct) < 5 * max(
            standard_error_l, 1.0
        )

    def test_l_has_smaller_empirical_error(self):
        set1, set2 = set_pair_with_jaccard(3000, 0.5)
        true_distinct = len(set1 | set2)
        p = 0.1
        errors_ht = []
        errors_l = []
        for salt in range(40):
            seeds = SeedAssigner(salt=1000 + salt)
            sample1, sample2 = draw_samples(set1, set2, p, p, seeds)
            lookup1, lookup2 = seed_lookups(seeds)
            errors_ht.append(
                (distinct_count_ht(sample1, sample2, p, p, lookup1,
                                   lookup2).estimate - true_distinct) ** 2
            )
            errors_l.append(
                (distinct_count_l(sample1, sample2, p, p, lookup1,
                                  lookup2).estimate - true_distinct) ** 2
            )
        assert np.mean(errors_l) < np.mean(errors_ht)

    def test_full_sampling_exact(self):
        set1, set2 = set_pair_with_jaccard(200, 0.4)
        seeds = SeedAssigner(salt=2)
        sample1, sample2 = draw_samples(set1, set2, 1.0, 1.0, seeds)
        lookup1, lookup2 = seed_lookups(seeds)
        for estimate in (
            distinct_count_ht(sample1, sample2, 1.0, 1.0, lookup1, lookup2),
            distinct_count_l(sample1, sample2, 1.0, 1.0, lookup1, lookup2),
        ):
            assert estimate.estimate == pytest.approx(len(set1 | set2))

    def test_predicate_restricts_count(self):
        set1, set2 = set_pair_with_jaccard(400, 0.5)
        seeds = SeedAssigner(salt=9)
        sample1, sample2 = draw_samples(set1, set2, 1.0, 1.0, seeds)
        lookup1, lookup2 = seed_lookups(seeds)
        even = distinct_count_l(
            sample1, sample2, 1.0, 1.0, lookup1, lookup2,
            predicate=lambda key: key % 2 == 0,
        )
        assert even.estimate == pytest.approx(
            sum(1 for key in set1 | set2 if key % 2 == 0)
        )

    def test_counts_reported(self):
        set1, set2 = set_pair_with_jaccard(100, 0.3)
        seeds = SeedAssigner(salt=4)
        sample1, sample2 = draw_samples(set1, set2, 0.5, 0.5, seeds)
        lookup1, lookup2 = seed_lookups(seeds)
        result = distinct_count_l(sample1, sample2, 0.5, 0.5, lookup1, lookup2)
        assert set(result.counts) == {"F11", "F1?", "F10", "F?1", "F01"}
        assert float(result) == result.estimate


class TestVarianceFormulas:
    def test_ht_variance(self):
        assert distinct_ht_variance(100, 0.5, 0.5) == pytest.approx(300.0)

    def test_l_variance_below_ht(self):
        for jaccard in (0.0, 0.5, 1.0):
            for p in (0.05, 0.2, 0.6):
                assert distinct_l_variance(1000, jaccard, p, p) <= \
                    distinct_ht_variance(1000, p, p) + 1e-9

    def test_l_variance_jaccard_one_small(self):
        # Identical sets: every key is observed whenever either sample sees
        # it; variance 1/(2p - p^2) - 1 per key.
        p = 0.3
        union = 2 * p - p * p
        assert distinct_l_variance(500, 1.0, p, p) == pytest.approx(
            500 * (1.0 / union - 1.0)
        )

    def test_invalid_jaccard(self):
        with pytest.raises(InvalidParameterError):
            distinct_l_variance(100, 1.5, 0.5, 0.5)
