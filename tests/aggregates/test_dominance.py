"""Tests for max-dominance estimation (Section 8.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates.dominance import (
    max_dominance_estimates,
    max_dominance_exact_variances,
    tau_star_for_sampling_fraction,
)
from repro.datasets.synthetic import correlated_instance_pair
from repro.exceptions import InvalidParameterError
from repro.sampling.seeds import SeedAssigner


@pytest.fixture(scope="module")
def traffic():
    return correlated_instance_pair(n_keys=400, correlation=0.7, rng=11)


class TestTauStarSolver:
    def test_expected_fraction(self, traffic):
        values = list(traffic.instance("a").values())
        tau = tau_star_for_sampling_fraction(values, 0.2)
        expected = sum(min(1.0, v / tau) for v in values)
        assert expected == pytest.approx(0.2 * len(values), rel=1e-4)

    def test_full_fraction(self, traffic):
        values = list(traffic.instance("a").values())
        tau = tau_star_for_sampling_fraction(values, 1.0)
        assert tau <= min(values) * (1 + 1e-6)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            tau_star_for_sampling_fraction([0.0, 0.0], 0.5)
        with pytest.raises(InvalidParameterError):
            tau_star_for_sampling_fraction([1.0], 0.0)


class TestEstimates:
    def test_estimators_unbiased_across_seed_salts(self, traffic):
        labels = ("a", "b")
        tau_star = (
            tau_star_for_sampling_fraction(traffic.instance("a").values(), 0.3),
            tau_star_for_sampling_fraction(traffic.instance("b").values(), 0.3),
        )
        true_value = traffic.max_dominance(labels)
        estimates_ht = []
        estimates_l = []
        for salt in range(40):
            result = max_dominance_estimates(
                traffic, labels, tau_star, SeedAssigner(salt=salt)
            )
            estimates_ht.append(result.ht)
            estimates_l.append(result.l)
            assert result.true_value == pytest.approx(true_value)
        var_ht, var_l = max_dominance_exact_variances(
            traffic, labels, tau_star, grid_size=401
        )
        assert abs(np.mean(estimates_ht) - true_value) < 5 * np.sqrt(var_ht / 40)
        assert abs(np.mean(estimates_l) - true_value) < 5 * np.sqrt(
            max(var_l / 40, 1e-9)
        )

    def test_l_dominates_ht_in_exact_variance(self, traffic):
        labels = ("a", "b")
        for fraction in (0.1, 0.4):
            tau_star = tuple(
                tau_star_for_sampling_fraction(
                    traffic.instance(label).values(), fraction
                )
                for label in labels
            )
            var_ht, var_l = max_dominance_exact_variances(
                traffic, labels, tau_star, grid_size=401
            )
            assert var_l < var_ht

    def test_full_sampling_is_exact(self, traffic):
        labels = ("a", "b")
        minimum_positive = min(
            min(traffic.instance("a").values()),
            min(traffic.instance("b").values()),
        )
        tau_star = (minimum_positive / 2.0, minimum_positive / 2.0)
        result = max_dominance_estimates(
            traffic, labels, tau_star, SeedAssigner(salt=0)
        )
        assert result.ht == pytest.approx(result.true_value, rel=1e-9)
        assert result.l == pytest.approx(result.true_value, rel=1e-9)
        var_ht, var_l = max_dominance_exact_variances(
            traffic, labels, tau_star, grid_size=101
        )
        assert var_ht == pytest.approx(0.0, abs=1e-6)
        # The L variance integration truncates the seed range at 1e-12,
        # leaving a vanishing residual.
        assert var_l == pytest.approx(0.0, abs=1e-4)

    def test_predicate_restriction(self, traffic):
        labels = ("a", "b")
        tau_star = (1.0, 1.0)
        result = max_dominance_estimates(
            traffic,
            labels,
            tau_star,
            SeedAssigner(salt=1),
            predicate=lambda key: key < 50,
        )
        assert result.true_value == pytest.approx(
            traffic.max_dominance(labels, predicate=lambda key: key < 50)
        )

    def test_requires_two_instances(self, traffic):
        with pytest.raises(InvalidParameterError):
            max_dominance_estimates(
                traffic, ("a",), (1.0,), SeedAssigner(salt=0)
            )
        with pytest.raises(InvalidParameterError):
            max_dominance_exact_variances(traffic, ("a",), (1.0,))


class TestDedupedVariances:
    def test_matches_per_key_scalar_loop(self):
        from repro.core.max_weighted import MaxPpsHT, MaxPpsL
        from repro.aggregates.dataset import MultiInstanceDataset

        # Integer-valued workload with many duplicate value pairs: the
        # deduplicated batch path must reproduce the per-key scalar sum.
        rng = np.random.default_rng(5)
        keys = list(range(300))
        dataset = MultiInstanceDataset({
            "a": {k: float(v) for k, v in
                  zip(keys, rng.integers(0, 6, 300)) if v > 0},
            "b": {k: float(v) for k, v in
                  zip(keys, rng.integers(0, 6, 300)) if v > 0},
        })
        labels = ("a", "b")
        tau_star = (4.0, 5.0)
        var_ht, var_l = max_dominance_exact_variances(
            dataset, labels, tau_star, grid_size=301
        )
        estimator_ht = MaxPpsHT(tau_star)
        estimator_l = MaxPpsL(tau_star)
        expected_ht = sum(
            estimator_ht.variance(dataset.value_vector(key, labels))
            for key in dataset.active_keys(labels)
        )
        expected_l = sum(
            estimator_l.variance(dataset.value_vector(key, labels),
                                 grid_size=301)
            for key in dataset.active_keys(labels)
        )
        assert var_ht == pytest.approx(expected_ht, rel=1e-12)
        assert var_l == pytest.approx(expected_l, rel=1e-12)

    def test_empty_key_set(self):
        from repro.aggregates.dataset import MultiInstanceDataset

        dataset = MultiInstanceDataset({"a": {1: 2.0}, "b": {1: 1.0}})
        var_ht, var_l = max_dominance_exact_variances(
            dataset, ("a", "b"), (3.0, 3.0), predicate=lambda key: False
        )
        assert var_ht == 0.0 and var_l == 0.0


class TestVectorizedTauStar:
    def test_hits_target_expected_sample_size(self):
        rng = np.random.default_rng(9)
        values = rng.integers(1, 50, 5000).astype(float)
        for fraction in (0.01, 0.1, 0.5, 1.0):
            tau = tau_star_for_sampling_fraction(values, fraction)
            expected = np.minimum(1.0, values / tau).sum()
            assert expected == pytest.approx(fraction * len(values),
                                             rel=1e-6, abs=1e-3)

    def test_accepts_any_iterable(self):
        tau = tau_star_for_sampling_fraction({1: 3.0, 2: 5.0}.values(), 0.5)
        assert tau > 0.0
