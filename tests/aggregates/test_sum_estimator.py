"""Tests for the generic sum-aggregate machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates.sum_estimator import (
    sum_aggregate_oblivious,
    sum_aggregate_pps,
)
from repro.core.functions import maximum
from repro.core.max_oblivious import MaxObliviousL
from repro.core.max_weighted import MaxPpsL
from repro.datasets.synthetic import correlated_instance_pair
from repro.sampling.seeds import SeedAssigner


@pytest.fixture(scope="module")
def dataset():
    return correlated_instance_pair(n_keys=300, correlation=0.6, rng=5)


class TestObliviousSumAggregate:
    def test_full_sampling_recovers_truth(self, dataset):
        result = sum_aggregate_oblivious(
            dataset,
            labels=("a", "b"),
            probabilities=(1.0, 1.0),
            estimator=MaxObliviousL((1.0, 1.0)),
            seed_assigner=SeedAssigner(salt=0),
            true_function=maximum,
        )
        assert result.estimate == pytest.approx(result.true_value)
        assert result.relative_error == pytest.approx(0.0)

    def test_unbiased_across_salts(self, dataset):
        probabilities = (0.4, 0.4)
        estimates = []
        truth = None
        for salt in range(50):
            result = sum_aggregate_oblivious(
                dataset,
                labels=("a", "b"),
                probabilities=probabilities,
                estimator=MaxObliviousL(probabilities),
                seed_assigner=SeedAssigner(salt=salt),
                true_function=maximum,
            )
            estimates.append(result.estimate)
            truth = result.true_value
        assert np.mean(estimates) == pytest.approx(truth, rel=0.05)

    def test_predicate(self, dataset):
        result = sum_aggregate_oblivious(
            dataset,
            labels=("a", "b"),
            probabilities=(1.0, 1.0),
            estimator=MaxObliviousL((1.0, 1.0)),
            seed_assigner=SeedAssigner(salt=0),
            true_function=maximum,
            predicate=lambda key: key % 3 == 0,
        )
        assert result.true_value == pytest.approx(
            dataset.max_dominance(("a", "b"), predicate=lambda k: k % 3 == 0)
        )
        assert result.estimate == pytest.approx(result.true_value)

    def test_contributing_key_count(self, dataset):
        result = sum_aggregate_oblivious(
            dataset,
            labels=("a", "b"),
            probabilities=(0.3, 0.3),
            estimator=MaxObliviousL((0.3, 0.3)),
            seed_assigner=SeedAssigner(salt=7),
            true_function=maximum,
        )
        assert 0 < result.n_contributing_keys < len(
            dataset.active_keys(("a", "b"))
        )


class TestPpsSumAggregate:
    def test_unbiased_across_salts(self, dataset):
        tau_star = (200.0, 200.0)
        estimates = []
        truth = None
        for salt in range(50):
            result = sum_aggregate_pps(
                dataset,
                labels=("a", "b"),
                tau_star=tau_star,
                estimator=MaxPpsL(tau_star),
                seed_assigner=SeedAssigner(salt=salt),
                true_function=maximum,
            )
            estimates.append(result.estimate)
            truth = result.true_value
        assert np.mean(estimates) == pytest.approx(truth, rel=0.05)

    def test_relative_error_zero_truth(self, dataset):
        result = sum_aggregate_pps(
            dataset,
            labels=("a", "b"),
            tau_star=(1e9, 1e9),
            estimator=MaxPpsL((1e9, 1e9)),
            seed_assigner=SeedAssigner(salt=0),
            true_function=maximum,
            predicate=lambda key: False,
        )
        assert result.true_value == 0.0
        assert result.relative_error == 0.0

    def test_relative_error_negative_truth_is_nonnegative(self):
        from repro.aggregates.sum_estimator import SumAggregateResult

        result = SumAggregateResult(
            estimate=-2.0, true_value=-4.0, n_contributing_keys=1
        )
        assert result.relative_error == pytest.approx(0.5)
        overshoot = SumAggregateResult(
            estimate=0.0, true_value=-4.0, n_contributing_keys=0
        )
        assert overshoot.relative_error == pytest.approx(1.0)
