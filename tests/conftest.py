"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates.dataset import MultiInstanceDataset
from repro.sampling.dispersed import ObliviousPoissonScheme, PpsPoissonScheme


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(20110613)


@pytest.fixture
def half_scheme() -> ObliviousPoissonScheme:
    """Weight-oblivious scheme with p1 = p2 = 1/2 (the Figure 1 setting)."""
    return ObliviousPoissonScheme((0.5, 0.5))


@pytest.fixture
def skewed_scheme() -> ObliviousPoissonScheme:
    """Weight-oblivious scheme with unequal probabilities."""
    return ObliviousPoissonScheme((0.3, 0.7))


@pytest.fixture
def pps_scheme() -> PpsPoissonScheme:
    """PPS scheme with equal thresholds and known seeds."""
    return PpsPoissonScheme((10.0, 10.0), known_seeds=True)


@pytest.fixture
def small_dataset() -> MultiInstanceDataset:
    """A small two-instance data set used across aggregate tests."""
    return MultiInstanceDataset(
        {
            "day1": {"a": 4.0, "b": 1.0, "c": 7.0, "e": 2.0},
            "day2": {"a": 5.0, "b": 0.5, "d": 3.0, "e": 2.0},
        }
    )
