"""Property-based and adversarial suite for the binary batch format.

Two contracts:

* **round-trip exactness** — for arbitrary mixes of key types (NumPy
  integer columns, plain ints, strings, heterogeneous codec labels) and
  batch sizes including empty, ``decode_batches(encode_batches(b))``
  reproduces every batch, and ingesting the decoded columns yields a
  sketch state bit-identical to ingesting the originals;
* **no undefined failure modes** — truncated, garbage, bad-magic,
  future-version, wrong-tag and non-finite payloads raise the typed
  :class:`~repro.exceptions.SketchCodecError` (never ``struct.error``
  or a stray ``UnicodeDecodeError``), and encoding rejects malformed
  batches before writing anything.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SketchCodecError
from repro.sampling.seeds import SeedAssigner
from repro.server.wire import (
    MAGIC,
    WIRE_VERSION,
    WireBatch,
    decode_batches,
    encode_batches,
)
from repro.streaming.engine import StreamEngine

I64_MIN, I64_MAX = -(2**63), 2**63 - 1

labels = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**25), max_value=10**25),
    st.floats(allow_nan=False),
    st.text(max_size=8),
    st.binary(max_size=6),
    st.tuples(st.integers(min_value=0, max_value=99), st.text(max_size=3)),
)
finite_values = st.floats(min_value=0.0, max_value=1e12)


@st.composite
def key_columns(draw):
    """One key column in any of the encodable shapes."""
    shape = draw(st.sampled_from(["i64_array", "int_list", "str_list", "mixed"]))
    n = draw(st.integers(min_value=0, max_value=30))
    if shape == "i64_array":
        column = draw(
            st.lists(
                st.integers(min_value=I64_MIN, max_value=I64_MAX),
                min_size=n,
                max_size=n,
            )
        )
        return np.array(column, dtype=np.int64)
    if shape == "int_list":
        return draw(
            st.lists(
                st.integers(min_value=-(10**25), max_value=10**25),
                min_size=n,
                max_size=n,
            )
        )
    if shape == "str_list":
        return draw(st.lists(st.text(max_size=8), min_size=n, max_size=n))
    return draw(st.lists(labels, min_size=n, max_size=n))


@st.composite
def batch_lists(draw):
    columns = draw(st.lists(key_columns(), max_size=5))
    batches = []
    for keys in columns:
        values = draw(
            st.lists(finite_values, min_size=len(keys), max_size=len(keys))
        )
        instance = draw(labels)
        batches.append((instance, keys, np.asarray(values, dtype=float)))
    return batches


def normalize_keys(keys):
    return [
        key.tolist() if isinstance(key, np.integer) else key for key in keys
    ]


class TestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(batch_lists())
    def test_batches_round_trip_exactly(self, batches):
        decoded = decode_batches(encode_batches(batches))
        assert len(decoded) == len(batches)
        for (instance, keys, values), batch in zip(batches, decoded):
            assert isinstance(batch, WireBatch)
            assert batch.instance == instance
            assert normalize_keys(batch.keys) == normalize_keys(keys)
            assert np.array_equal(batch.values, values)

    def test_empty_payload_round_trips(self):
        assert decode_batches(encode_batches([])) == []

    def test_empty_batch_round_trips(self):
        (batch,) = decode_batches(encode_batches([("d", [], [])]))
        assert batch.instance == "d"
        assert len(batch.keys) == 0
        assert batch.values.size == 0

    def test_i64_column_decodes_as_numpy(self):
        keys = np.array([5, -3, I64_MAX, I64_MIN], dtype=np.int64)
        (batch,) = decode_batches(
            encode_batches([(1, keys, np.ones(4))])
        )
        assert isinstance(batch.keys, np.ndarray)
        assert batch.keys.dtype == np.dtype("<i8")
        assert np.array_equal(batch.keys, keys)

    def test_plain_int_list_uses_flat_column(self):
        # ints within i64 take the flat path and decode as an array
        (batch,) = decode_batches(
            encode_batches([("d", [1, 2, 3], [1.0, 2.0, 3.0])])
        )
        assert isinstance(batch.keys, np.ndarray)

    def test_oversized_ints_fall_back_to_tagged(self):
        keys = [2**80, -(2**90), 7]
        (batch,) = decode_batches(
            encode_batches([("d", keys, np.ones(3))])
        )
        assert list(batch.keys) == keys

    def test_uint64_column_beyond_i64_falls_back(self):
        keys = np.array([2**63 + 5, 1], dtype=np.uint64)
        (batch,) = decode_batches(
            encode_batches([("d", keys, np.ones(2))])
        )
        assert normalize_keys(batch.keys) == [2**63 + 5, 1]

    def test_bools_are_not_flattened_to_ints(self):
        # bool is an int subclass; the tagged union must preserve it
        (batch,) = decode_batches(
            encode_batches([("d", [True, False, 1], np.ones(3))])
        )
        assert batch.keys == [True, False, 1]
        assert isinstance(batch.keys[0], bool)

    @settings(max_examples=40, deadline=None)
    @given(batch_lists())
    def test_ingest_parity_with_original_columns(self, batches):
        def build(feed):
            engine = StreamEngine.bottom_k(
                k=8, seed_assigner=SeedAssigner(salt=3), n_shards=2
            )
            feed(engine)
            return engine

        direct = build(
            lambda engine: [
                engine.ingest(instance, list(keys), np.asarray(values))
                for instance, keys, values in batches
            ]
        )
        via_wire = build(
            lambda engine: [
                engine.ingest(batch.instance, batch.keys, batch.values)
                for batch in decode_batches(encode_batches(batches))
            ]
        )
        assert direct == via_wire


class TestEncodeValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(SketchCodecError, match="2 keys but 1 values"):
            encode_batches([("d", ["a", "b"], [1.0])])

    def test_generator_keys_length_checked(self):
        with pytest.raises(SketchCodecError, match="keys but"):
            encode_batches([("d", (key for key in "abc"), [1.0])])

    def test_2d_keys_rejected(self):
        with pytest.raises(SketchCodecError, match="1-D"):
            encode_batches([("d", np.zeros((2, 2), dtype=np.int64), [1.0, 2.0])])

    def test_2d_values_rejected(self):
        with pytest.raises(SketchCodecError, match="1-D"):
            encode_batches([("d", [1, 2, 3, 4], np.zeros((2, 2)))])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_values_rejected(self, bad):
        with pytest.raises(SketchCodecError, match="non-finite"):
            encode_batches([("d", [1, 2], [1.0, bad])])

    def test_bad_batch_reported_with_index(self):
        with pytest.raises(SketchCodecError, match="batch 1"):
            encode_batches(
                [("ok", [1], [1.0]), ("bad", [2], [float("nan")])]
            )


def valid_blob() -> bytes:
    return encode_batches(
        [
            ("mon", np.arange(4, dtype=np.int64), np.ones(4)),
            (2, ["a", "b"], [0.5, 1.5]),
            ("tue", [None, (1, "x")], [1.0, 2.0]),
        ]
    )


class TestDecodeFuzz:
    def test_bad_magic(self):
        with pytest.raises(SketchCodecError, match="magic"):
            decode_batches(b"NOPE" + valid_blob()[4:])

    def test_unsupported_version(self):
        blob = bytearray(valid_blob())
        blob[4:6] = struct.pack("<H", WIRE_VERSION + 1)
        with pytest.raises(SketchCodecError, match="version"):
            decode_batches(bytes(blob))

    def test_every_truncation_is_typed(self):
        blob = valid_blob()
        for cut in range(len(blob)):
            with pytest.raises(SketchCodecError):
                decode_batches(blob[:cut])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SketchCodecError):
            decode_batches(valid_blob() + b"\x00")

    def test_unknown_key_tag(self):
        blob = encode_batches([("d", [1], [1.0])])
        # the key tag is the byte right after the instance label
        offset = blob.index(b"d") + 1
        mutated = blob[:offset] + bytes([200]) + blob[offset + 1 :]
        with pytest.raises(SketchCodecError, match="key tag"):
            decode_batches(mutated)

    def test_corrupt_utf8_keys_are_typed(self):
        blob = bytearray(encode_batches([("d", ["ab"], [1.0])]))
        position = bytes(blob).index(b"ab")
        blob[position] = 0xFF
        with pytest.raises(SketchCodecError, match="utf-8"):
            decode_batches(bytes(blob))

    def test_smuggled_nan_rejected_at_decode(self):
        # bypass the encoder's check by patching the value bytes directly
        blob = bytearray(encode_batches([("d", [1, 2], [1.0, 2.0])]))
        blob[-8:] = struct.pack("<d", float("nan"))
        with pytest.raises(SketchCodecError, match="non-finite"):
            decode_batches(bytes(blob))

    def test_smuggled_infinity_rejected_at_decode(self):
        blob = bytearray(encode_batches([("d", [1], [1.0])]))
        blob[-8:] = struct.pack("<d", float("inf"))
        with pytest.raises(SketchCodecError, match="non-finite"):
            decode_batches(bytes(blob))

    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=200))
    def test_garbage_never_escapes_the_typed_error(self, data):
        try:
            decode_batches(MAGIC + data)
        except SketchCodecError:
            pass

    def test_magic_matches_codec_conventions(self):
        assert len(MAGIC) == 4
        assert valid_blob()[:4] == MAGIC
