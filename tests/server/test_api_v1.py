"""The versioned ``/v1`` API surface and its legacy aliases.

Every endpoint in :data:`repro.server.app.ROUTE_SPEC` must serve under
``/v1`` and under its bare legacy path; the legacy twin returns the
identical body plus a ``Deprecation`` header and a
``Link: <successor>; rel="successor-version"`` pointer.  Also covers
the client-side half of the redesign: ``base_url`` construction and
the deprecation of positional ``host``/``port``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.server import AsyncSketchClient
from repro.server.app import ROUTE_SPEC
from repro.server.routing import V1_PREFIX

from test_app import make_columns, make_store, raw_request


async def raw_post(
    port: int, target: str, body: bytes, content_type: str = "application/json"
) -> tuple[int, dict, bytes]:
    """One raw POST round-trip exposing the response headers."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        head = (
            f"POST {target} HTTP/1.1\r\n"
            f"Host: 127.0.0.1:{port}\r\n"
            "Connection: close\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        await writer.drain()
        raw_head = await reader.readuntil(b"\r\n\r\n")
        lines = raw_head.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        payload = await reader.read()
        return status, headers, payload
    finally:
        writer.close()
        await writer.wait_closed()


class TestV1Surface:
    def test_route_table_mounts_every_spec_entry_twice(self, run_scenario):
        async def scenario(server, client):
            registered = set(server.router.routes())
            for method, path, _handler in ROUTE_SPEC:
                assert (method, V1_PREFIX + path) in registered
                assert (method, path) in registered
            assert len(registered) == 2 * len(ROUTE_SPEC)

        run_scenario(scenario)

    def test_client_traffic_flows_through_v1(self, run_scenario):
        async def scenario(server, client):
            assert client.api_prefix == "/v1"
            keys, values = make_columns(120)
            await client.ingest("traffic", "monday", keys, values)
            result = await client.query("traffic", "sum", ["monday"])
            assert result["version"] == 1
            assert result["value"] is not None
            health = await client.healthz()
            assert health["status"] == "ok"
            metrics = await client.metrics()
            assert metrics["ingest"]["rows"] == 120
            server.series.collect(
                server.metrics.series_sample(
                    server.store, server.planner, dict(server._pending)
                )
            )
            history = await client.metrics_history("repro_ingest_rows_total")
            assert history["metric"] == "repro_ingest_rows_total"
            page = await client.statusz()
            assert "<html" in page.lower()
            # the route labels prove the requests really hit /v1 paths
            labels = set(metrics["requests"])
            assert "POST /v1/ingest" in labels
            assert "GET /v1/query" in labels

        run_scenario(scenario, store=make_store())

    def test_get_bodies_identical_legacy_adds_deprecation(self, run_scenario):
        async def scenario(server, client):
            keys, values = make_columns(150)
            await client.ingest("traffic", "monday", keys, values)
            target = "/query?name=traffic&kind=sum&instances=monday&variant=l"
            # warm the planner cache so both raw requests below re-serve
            # the same cached result (otherwise from_cache would differ)
            await client.query("traffic", "sum", ["monday"])
            v1_status, v1_headers, v1_body = await raw_request(
                server.port, "GET", V1_PREFIX + target
            )
            old_status, old_headers, old_body = await raw_request(
                server.port, "GET", target
            )
            assert v1_status == old_status == 200
            assert v1_body == old_body
            assert "deprecation" not in v1_headers
            assert old_headers["deprecation"] == "true"
            assert (
                old_headers["link"]
                == '</v1/query>; rel="successor-version"'
            )

        run_scenario(scenario, store=make_store())

    def test_legacy_post_ingest_serves_with_deprecation(self, run_scenario):
        async def scenario(server, client):
            keys, values = make_columns(40)
            body = json.dumps(
                {
                    "name": "traffic",
                    "instance": "monday",
                    "keys": keys,
                    "values": values,
                }
            ).encode()
            status, headers, payload = await raw_post(
                server.port, "/ingest", body
            )
            assert status == 200
            assert headers["deprecation"] == "true"
            assert headers["link"] == '</v1/ingest>; rel="successor-version"'
            assert json.loads(payload)["version"] == 1
            status, headers, payload = await raw_post(
                server.port, "/v1/ingest", body
            )
            assert status == 200
            assert "deprecation" not in headers
            assert json.loads(payload)["version"] == 2

        run_scenario(scenario, store=make_store())

    def test_deprecation_rides_on_legacy_405(self, run_scenario):
        async def scenario(server, client):
            status, headers, _body = await raw_request(
                server.port, "DELETE", "/ingest"
            )
            assert status == 405
            assert headers["deprecation"] == "true"
            status, headers, _body = await raw_request(
                server.port, "DELETE", "/v1/ingest"
            )
            assert status == 405
            assert "deprecation" not in headers

        run_scenario(scenario)

    def test_unknown_version_prefix_is_404(self, run_scenario):
        async def scenario(server, client):
            status, _headers, _body = await raw_request(
                server.port, "GET", "/v2/healthz"
            )
            assert status == 404

        run_scenario(scenario)


class TestClientConstruction:
    def test_base_url_defaults_to_v1(self):
        client = AsyncSketchClient(base_url="http://10.0.0.7:8080")
        assert (client.host, client.port) == ("10.0.0.7", 8080)
        assert client.api_prefix == "/v1"
        assert client._path("/query") == "/v1/query"

    def test_base_url_explicit_prefix(self):
        client = AsyncSketchClient(base_url="http://10.0.0.7:8080/v1/")
        assert client.api_prefix == "/v1"
        client = AsyncSketchClient(base_url="http://10.0.0.7/v2")
        assert (client.port, client.api_prefix) == (80, "/v2")

    @pytest.mark.parametrize(
        "bad",
        ["https://10.0.0.7:8080", "10.0.0.7:8080", "http://"],
    )
    def test_base_url_must_be_http(self, bad):
        with pytest.raises(ValueError, match="base_url"):
            AsyncSketchClient(base_url=bad)

    def test_base_url_conflicts_with_host_port(self):
        with pytest.raises(ValueError, match="not both"):
            AsyncSketchClient(
                host="127.0.0.1", port=1, base_url="http://127.0.0.1:1"
            )

    def test_positional_host_port_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="positional"):
            client = AsyncSketchClient("127.0.0.1", 8080)
        assert (client.host, client.port) == ("127.0.0.1", 8080)
        assert client.api_prefix == "/v1"

    def test_positional_and_keyword_conflict(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="positional"):
                AsyncSketchClient("127.0.0.1", 8080, host="other")

    def test_missing_endpoint_arguments(self):
        with pytest.raises(TypeError, match="host"):
            AsyncSketchClient()

    def test_base_url_used_against_live_server(self, run_scenario):
        async def scenario(server, client):
            url = f"http://127.0.0.1:{server.port}"
            async with AsyncSketchClient(base_url=url) as second:
                keys, values = make_columns(30)
                await second.ingest("traffic", "monday", keys, values)
                result = await second.query("traffic", "sum", ["monday"])
                assert result["version"] == 1

        run_scenario(scenario, store=make_store())
