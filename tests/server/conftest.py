"""Shared helpers for the HTTP server suite.

The tests are plain synchronous pytest functions that drive asyncio
scenarios through :func:`asyncio.run` — no async test plugin needed.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.server import AsyncSketchClient, ServerConfig, SketchServer
from repro.service import SketchStore


@pytest.fixture
def run_scenario():
    """Run ``await scenario(server, client)`` against a fresh server.

    ``scenario`` receives a started :class:`SketchServer` (ephemeral
    port) and one connected client; the server is shut down afterwards
    even when the scenario fails.  Extra keyword arguments become
    :class:`ServerConfig` fields.
    """

    def runner(scenario, store=None, **config_kwargs):
        async def main():
            target_store = store if store is not None else SketchStore()
            config_kwargs.setdefault("port", 0)
            server = SketchServer(target_store, ServerConfig(**config_kwargs))
            await server.start()
            try:
                client = AsyncSketchClient(host="127.0.0.1", port=server.port)
                async with client:
                    return await scenario(server, client)
            finally:
                await server.shutdown()

        return asyncio.run(main())

    return runner
