"""The ``/replicate`` endpoint and the client's follower-side loop.

A WAL-attached server ships its log tail (or a full store delta once
the tail was checkpointed away); :meth:`AsyncSketchClient.catch_up`
must bring a follower to bit-exact parity in both modes, and the WAL
Prometheus families must show up on the metrics scrape.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.server import (
    REPLICA_MODE_STORE,
    REPLICA_MODE_WAL,
    ClientResponseError,
)
from repro.service import SketchStore, codec

ENGINE_CONFIG = {
    "threshold": 0.05,
    "salt": 7,
    "coordinated": True,
    "n_shards": 4,
}


def engine_bytes(store, name: str = "t") -> bytes:
    return codec.to_bytes(store.engine(name))


def batch(i: int) -> tuple[str, list[str], list[float]]:
    return (
        f"day-{i % 2}",
        [f"user-{i}-{j}" for j in range(5)],
        [float(j + 1) for j in range(5)],
    )


async def create_and_fill(client, n: int, start: int = 0) -> None:
    if start == 0:
        await client.create_engine("t", "poisson", **ENGINE_CONFIG)
    for i in range(start, start + n):
        instance, keys, values = batch(i)
        await client.ingest("t", instance, keys, values)


class TestReplicateEndpoint:
    def test_requires_a_wal(self, run_scenario):
        async def scenario(server, client):
            with pytest.raises(ClientResponseError) as err:
                await client.replicate()
            assert err.value.status == 400
            assert "write-ahead log" in str(err.value)

        run_scenario(scenario)

    def test_rejects_bad_cursors(self, run_scenario, tmp_path):
        async def scenario(server, client):
            for since in ("-1", "abc"):
                status, payload = await client.request(
                    "GET", "/replicate", params={"since": since}
                )
                assert status == 400, payload
                assert "since" in payload["error"]

        run_scenario(scenario, wal_dir=tmp_path / "wal", wal_fsync="off")

    def test_tail_mode_until_checkpoint_then_store_mode(
        self, run_scenario, tmp_path
    ):
        async def scenario(server, client):
            await create_and_fill(client, 3)
            mode, last_lsn, _ = await client.replicate()
            assert mode == REPLICA_MODE_WAL
            assert last_lsn == 4  # engine create + 3 batches
            # the primary snapshot checkpoints the log away
            await client.snapshot()
            mode, last_lsn, _ = await client.replicate()
            assert mode == REPLICA_MODE_STORE
            assert last_lsn == 4
            # a follower that is already past the checkpoint still gets
            # an (empty) tail, not a full delta
            mode, _, payload = await client.replicate(since=4)
            assert mode == REPLICA_MODE_WAL
            assert payload == b""

        run_scenario(
            scenario,
            wal_dir=tmp_path / "wal",
            wal_fsync="off",
            snapshot_path=tmp_path / "store.bin",
        )


class TestFollowerCatchUp:
    def test_wal_tail_catch_up_is_bit_exact_and_incremental(
        self, run_scenario, tmp_path
    ):
        async def scenario(server, client):
            await create_and_fill(client, 4)
            follower = SketchStore()
            cursor = await client.catch_up(follower)
            assert cursor == 5
            assert engine_bytes(follower) == engine_bytes(server.store)
            assert follower.version("t") == 4
            # incremental: only the new records ship past the cursor
            await create_and_fill(client, 2, start=4)
            cursor = await client.catch_up(follower, cursor)
            assert cursor == 7
            assert engine_bytes(follower) == engine_bytes(server.store)
            # catching up again from the same cursor is a no-op
            assert await client.catch_up(follower, cursor) == cursor
            assert engine_bytes(follower) == engine_bytes(server.store)

        run_scenario(scenario, wal_dir=tmp_path / "wal", wal_fsync="off")

    def test_catch_up_replays_idempotently_from_zero(
        self, run_scenario, tmp_path
    ):
        async def scenario(server, client):
            await create_and_fill(client, 3)
            follower = SketchStore()
            await client.catch_up(follower)
            # a follower restarting from cursor 0 skips what it has
            await client.catch_up(follower, 0)
            assert engine_bytes(follower) == engine_bytes(server.store)
            assert follower.version("t") == 3

        run_scenario(scenario, wal_dir=tmp_path / "wal", wal_fsync="off")

    def test_full_store_mode_replaces_after_checkpoint(
        self, run_scenario, tmp_path
    ):
        async def scenario(server, client):
            await create_and_fill(client, 4)
            await client.snapshot()
            follower = SketchStore()
            cursor = await client.catch_up(follower)
            assert cursor == 5
            assert engine_bytes(follower) == engine_bytes(server.store)
            assert follower.version("t") == 4

        run_scenario(
            scenario,
            wal_dir=tmp_path / "wal",
            wal_fsync="off",
            snapshot_path=tmp_path / "store.bin",
        )

    def test_full_store_mode_can_merge_disjoint_followers(
        self, run_scenario, tmp_path
    ):
        local = ("local-day", [f"edge-{j}" for j in range(6)], [2.0] * 6)
        follower = _local_store()
        follower.ingest("t", *local)
        expected = _local_store()
        expected.ingest("t", *local)

        async def scenario(server, client):
            await create_and_fill(client, 3)
            await client.snapshot()
            mode, _, _ = await client.replicate()
            assert mode == REPLICA_MODE_STORE
            await client.catch_up(follower, on_full="merge")
            return engine_bytes(server.store)

        primary_bytes = run_scenario(
            scenario,
            wal_dir=tmp_path / "wal",
            wal_fsync="off",
            snapshot_path=tmp_path / "store.bin",
        )
        peer = SketchStore()
        peer.register("t", codec.from_bytes(primary_bytes))
        expected.merge_store(peer)
        assert engine_bytes(follower) == engine_bytes(expected)

    def test_catch_up_rejects_unknown_on_full(self, run_scenario, tmp_path):
        async def scenario(server, client):
            with pytest.raises(ValueError, match="on_full"):
                await client.catch_up(SketchStore(), on_full="panic")

        run_scenario(scenario, wal_dir=tmp_path / "wal", wal_fsync="off")

    def test_follow_loop_tracks_the_primary(self, run_scenario, tmp_path):
        async def scenario(server, client):
            await create_and_fill(client, 2)
            follower = SketchStore()
            client._sleep = lambda _delay: asyncio.sleep(0)
            cursor = await client.follow(follower, max_rounds=2)
            assert cursor == 3
            assert engine_bytes(follower) == engine_bytes(server.store)
            # a stop event ends the loop promptly
            stop = asyncio.Event()
            stop.set()
            cursor = await client.follow(follower, since=cursor, stop=stop)
            assert cursor == 3

        run_scenario(scenario, wal_dir=tmp_path / "wal", wal_fsync="off")


class TestWalMetrics:
    def test_json_and_prometheus_families(self, run_scenario, tmp_path):
        async def scenario(server, client):
            await create_and_fill(client, 3)
            payload = await client.metrics()
            wal_stats = payload["wal"]
            assert wal_stats is not None
            assert wal_stats["appended_records"] == 4
            assert wal_stats["last_lsn"] == 4
            assert wal_stats["fsync_policy"] == "interval"
            status, text = await client.request(
                "GET", "/metrics", params={"format": "prometheus"}
            )
            assert status == 200
            for family in (
                "repro_wal_appended_records_total 4",
                "repro_wal_appended_bytes_total",
                "repro_wal_fsync_seconds_bucket",
                'repro_wal_fsync_seconds_count{policy="interval"}',
                "repro_wal_replay_seconds",
                "repro_wal_last_lsn 4",
                "repro_wal_segments 1",
            ):
                assert family in text, f"missing family line: {family}"

        run_scenario(scenario, wal_dir=tmp_path / "wal")

    def test_no_wal_means_null_stats_and_no_families(self, run_scenario):
        async def scenario(server, client):
            payload = await client.metrics()
            assert payload["wal"] is None
            _, text = await client.request(
                "GET", "/metrics", params={"format": "prometheus"}
            )
            assert "repro_wal_" not in text

        run_scenario(scenario)


def _local_store() -> SketchStore:
    """A follower-side store whose engine config matches the primary's."""
    from repro.sampling.seeds import SeedAssigner

    store = SketchStore()
    store.create(
        "t",
        "poisson",
        threshold=0.05,
        n_shards=4,
        seed_assigner=SeedAssigner(salt=7, coordinated=True),
    )
    return store
