"""Transport-level behaviour of :class:`AsyncSketchClient`.

Drives the client against a scripted fake server so the suite can send
byte-exact malformed responses: a garbage or conflicting
``Content-Length`` must surface as a *connection* error (the class the
idempotent retry logic understands), never an unhandled ``ValueError``
mid-read (the regression this file pins down).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.server import AsyncSketchClient, ClientResponseError


class ScriptedServer:
    """One-connection-at-a-time server that replays canned responses."""

    def __init__(self, responses: list[bytes]) -> None:
        self.responses = list(responses)
        self.requests: list[bytes] = []
        self.server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    async def __aenter__(self) -> "ScriptedServer":
        self.server = await asyncio.start_server(
            self._serve, "127.0.0.1", 0
        )
        self.port = self.server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc_info) -> None:
        assert self.server is not None
        self.server.close()
        await self.server.wait_closed()

    async def _serve(self, reader, writer) -> None:
        try:
            while self.responses:
                head = await reader.readuntil(b"\r\n\r\n")
                self.requests.append(head)
                length = 0
                for line in head.decode("latin-1").split("\r\n"):
                    if line.lower().startswith("content-length:"):
                        length = int(line.split(":", 1)[1])
                if length:
                    await reader.readexactly(length)
                writer.write(self.responses.pop(0))
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        finally:
            writer.close()


def response(*header_lines: str, body: bytes = b"") -> bytes:
    head = "HTTP/1.1 200 OK\r\n" + "".join(
        line + "\r\n" for line in header_lines
    )
    return head.encode("latin-1") + b"\r\n" + body


def run(coroutine):
    return asyncio.run(coroutine)


class TestMalformedContentLength:
    def test_garbage_length_is_a_connection_error(self):
        async def scenario():
            responses = [response("Content-Length: banana")] * 2
            async with ScriptedServer(responses) as server:
                async with AsyncSketchClient(host="127.0.0.1", port=server.port) as client:
                    with pytest.raises(ConnectionResetError, match="banana"):
                        await client.request("GET", "/healthz")

        run(scenario())

    def test_negative_length_is_a_connection_error(self):
        async def scenario():
            responses = [response("Content-Length: -5")] * 2
            async with ScriptedServer(responses) as server:
                async with AsyncSketchClient(host="127.0.0.1", port=server.port) as client:
                    with pytest.raises(ConnectionResetError, match="-5"):
                        await client.request("GET", "/healthz")

        run(scenario())

    def test_post_with_garbage_length_does_not_retry(self):
        """Non-idempotent requests surface the error after ONE attempt —
        resending could double-apply the ingest."""

        async def scenario():
            responses = [response("Content-Length: nope")] * 2
            async with ScriptedServer(responses) as server:
                async with AsyncSketchClient(host="127.0.0.1", port=server.port) as client:
                    with pytest.raises(ConnectionResetError):
                        await client.request(
                            "POST", "/ingest", json_body={"name": "x"}
                        )
                # a second canned response remains: only one request hit
                # the wire
                assert len(server.requests) == 1

        run(scenario())

    def test_conflicting_duplicate_lengths_rejected(self):
        async def scenario():
            responses = [
                response(
                    "Content-Length: 2",
                    "Content-Length: 99",
                    body=b"{}",
                )
            ] * 2
            async with ScriptedServer(responses) as server:
                async with AsyncSketchClient(host="127.0.0.1", port=server.port) as client:
                    with pytest.raises(
                        ConnectionResetError, match="duplicate"
                    ):
                        await client.request("GET", "/healthz")

        run(scenario())

    def test_repeated_identical_lengths_accepted(self):
        async def scenario():
            responses = [
                response(
                    "Content-Length: 2",
                    "Content-Length: 2",
                    body=b"{}",
                )
            ]
            async with ScriptedServer(responses) as server:
                async with AsyncSketchClient(host="127.0.0.1", port=server.port) as client:
                    status, payload = await client.request("GET", "/healthz")
                    assert status == 200
                    assert payload == {}

        run(scenario())

    def test_well_formed_response_still_parses(self):
        async def scenario():
            responses = [
                response(
                    "Content-Length: 15",
                    "X-Request-Id: abc123",
                    body=b'{"status":"ok"}',
                )
            ]
            async with ScriptedServer(responses) as server:
                async with AsyncSketchClient(host="127.0.0.1", port=server.port) as client:
                    status, payload = await client.request("GET", "/healthz")
                    assert status == 200
                    assert payload == {"status": "ok"}
                    assert client.last_request_id == "abc123"

        run(scenario())


def status_response(
    status: int, *header_lines: str, body: bytes = b""
) -> bytes:
    head = f"HTTP/1.1 {status} X\r\n" + "".join(
        line + "\r\n" for line in header_lines
    )
    head += f"Content-Length: {len(body)}\r\n"
    return head.encode("latin-1") + b"\r\n" + body


def overloaded(*header_lines: str) -> bytes:
    return status_response(
        503, *header_lines, body=b'{"error":"backpressure"}'
    )


def ok() -> bytes:
    return status_response(200, body=b'{"status":"ok"}')


class TestBackpressureRetry:
    """503 handling in :meth:`AsyncSketchClient._checked`: capped
    exponential backoff with jitter, honouring ``Retry-After``."""

    @staticmethod
    def instrument(client, jitter: float = 0.0) -> list[float]:
        """Make backoff deterministic and capture the slept delays."""
        delays: list[float] = []

        async def fake_sleep(delay: float) -> None:
            delays.append(delay)

        client._sleep = fake_sleep
        client._random = lambda: jitter
        return delays

    def test_retries_until_success(self):
        async def scenario():
            responses = [overloaded(), overloaded(), ok()]
            async with ScriptedServer(responses) as server:
                client = AsyncSketchClient(
                    host="127.0.0.1", port=server.port, retry_base=0.1
                )
                delays = self.instrument(client)
                async with client:
                    assert await client.healthz() == {"status": "ok"}
                assert len(server.requests) == 3
                # zero jitter: delay == backoff/2, doubling per attempt
                assert delays == [0.05, 0.1]

        run(scenario())

    def test_jitter_spreads_the_herd(self):
        async def scenario():
            responses = [overloaded(), ok()]
            async with ScriptedServer(responses) as server:
                client = AsyncSketchClient(
                    host="127.0.0.1", port=server.port, retry_base=0.1
                )
                delays = self.instrument(client, jitter=1.0)
                async with client:
                    await client.healthz()
                # full jitter: backoff/2 + 1.0 * backoff/2 == backoff
                assert delays == [0.1]

        run(scenario())

    def test_backoff_is_capped(self):
        async def scenario():
            responses = [overloaded() for _ in range(5)] + [ok()]
            async with ScriptedServer(responses) as server:
                client = AsyncSketchClient(
                    host="127.0.0.1",
                    port=server.port,
                    retry_attempts=5,
                    retry_base=1.0,
                    retry_cap=2.0,
                )
                delays = self.instrument(client)
                async with client:
                    await client.healthz()
                # 1.0, 2.0, then pinned to the cap (halved: zero jitter)
                assert delays == [0.5, 1.0, 1.0, 1.0, 1.0]

        run(scenario())

    def test_attempts_are_capped_then_the_503_surfaces(self):
        async def scenario():
            responses = [overloaded() for _ in range(3)]
            async with ScriptedServer(responses) as server:
                client = AsyncSketchClient(
                    host="127.0.0.1", port=server.port, retry_attempts=2
                )
                delays = self.instrument(client)
                async with client:
                    with pytest.raises(ClientResponseError) as err:
                        await client.healthz()
                assert err.value.status == 503
                assert len(server.requests) == 3  # 1 try + 2 retries
                assert len(delays) == 2

        run(scenario())

    def test_zero_attempts_fails_fast(self):
        async def scenario():
            responses = [overloaded()]
            async with ScriptedServer(responses) as server:
                client = AsyncSketchClient(
                    host="127.0.0.1", port=server.port, retry_attempts=0
                )
                delays = self.instrument(client)
                async with client:
                    with pytest.raises(ClientResponseError):
                        await client.healthz()
                assert len(server.requests) == 1
                assert delays == []

        run(scenario())

    def test_retry_after_is_a_floor(self):
        async def scenario():
            responses = [overloaded("Retry-After: 0.8"), ok()]
            async with ScriptedServer(responses) as server:
                client = AsyncSketchClient(
                    host="127.0.0.1", port=server.port, retry_base=0.1
                )
                delays = self.instrument(client)
                async with client:
                    await client.healthz()
                # the computed 0.05 backoff is raised to the hint
                assert delays == [0.8]
                # the final 200 carried no hint, so the cache cleared
                assert client.last_retry_after is None

        run(scenario())

    def test_retry_after_is_clamped_to_the_cap(self):
        async def scenario():
            responses = [overloaded("Retry-After: 3600"), ok()]
            async with ScriptedServer(responses) as server:
                client = AsyncSketchClient(
                    host="127.0.0.1", port=server.port, retry_cap=1.5
                )
                delays = self.instrument(client)
                async with client:
                    await client.healthz()
                # a hostile/huge hint never stalls the client past the cap
                assert delays == [1.5]

        run(scenario())

    def test_malformed_retry_after_is_ignored(self):
        async def scenario():
            responses = [overloaded("Retry-After: soon"), ok()]
            async with ScriptedServer(responses) as server:
                client = AsyncSketchClient(
                    host="127.0.0.1", port=server.port, retry_base=0.1
                )
                delays = self.instrument(client)
                async with client:
                    await client.healthz()
                assert client.last_retry_after is None
                assert delays == [0.05]

        run(scenario())

    def test_non_503_errors_do_not_retry(self):
        async def scenario():
            responses = [
                status_response(404, body=b'{"error":"no such route"}')
            ]
            async with ScriptedServer(responses) as server:
                client = AsyncSketchClient(host="127.0.0.1", port=server.port)
                delays = self.instrument(client)
                async with client:
                    with pytest.raises(ClientResponseError) as err:
                        await client.healthz()
                assert err.value.status == 404
                assert len(server.requests) == 1
                assert delays == []

        run(scenario())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retry_attempts": -1},
            {"retry_base": 0.0},
            {"retry_base": 2.0, "retry_cap": 1.0},
        ],
    )
    def test_bad_retry_configuration_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AsyncSketchClient(host="127.0.0.1", port=1, **kwargs)
