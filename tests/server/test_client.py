"""Transport-level behaviour of :class:`AsyncSketchClient`.

Drives the client against a scripted fake server so the suite can send
byte-exact malformed responses: a garbage or conflicting
``Content-Length`` must surface as a *connection* error (the class the
idempotent retry logic understands), never an unhandled ``ValueError``
mid-read (the regression this file pins down).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.server import AsyncSketchClient


class ScriptedServer:
    """One-connection-at-a-time server that replays canned responses."""

    def __init__(self, responses: list[bytes]) -> None:
        self.responses = list(responses)
        self.requests: list[bytes] = []
        self.server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    async def __aenter__(self) -> "ScriptedServer":
        self.server = await asyncio.start_server(
            self._serve, "127.0.0.1", 0
        )
        self.port = self.server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc_info) -> None:
        assert self.server is not None
        self.server.close()
        await self.server.wait_closed()

    async def _serve(self, reader, writer) -> None:
        try:
            while self.responses:
                head = await reader.readuntil(b"\r\n\r\n")
                self.requests.append(head)
                length = 0
                for line in head.decode("latin-1").split("\r\n"):
                    if line.lower().startswith("content-length:"):
                        length = int(line.split(":", 1)[1])
                if length:
                    await reader.readexactly(length)
                writer.write(self.responses.pop(0))
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        finally:
            writer.close()


def response(*header_lines: str, body: bytes = b"") -> bytes:
    head = "HTTP/1.1 200 OK\r\n" + "".join(
        line + "\r\n" for line in header_lines
    )
    return head.encode("latin-1") + b"\r\n" + body


def run(coroutine):
    return asyncio.run(coroutine)


class TestMalformedContentLength:
    def test_garbage_length_is_a_connection_error(self):
        async def scenario():
            responses = [response("Content-Length: banana")] * 2
            async with ScriptedServer(responses) as server:
                async with AsyncSketchClient("127.0.0.1", server.port) as client:
                    with pytest.raises(ConnectionResetError, match="banana"):
                        await client.request("GET", "/healthz")

        run(scenario())

    def test_negative_length_is_a_connection_error(self):
        async def scenario():
            responses = [response("Content-Length: -5")] * 2
            async with ScriptedServer(responses) as server:
                async with AsyncSketchClient("127.0.0.1", server.port) as client:
                    with pytest.raises(ConnectionResetError, match="-5"):
                        await client.request("GET", "/healthz")

        run(scenario())

    def test_post_with_garbage_length_does_not_retry(self):
        """Non-idempotent requests surface the error after ONE attempt —
        resending could double-apply the ingest."""

        async def scenario():
            responses = [response("Content-Length: nope")] * 2
            async with ScriptedServer(responses) as server:
                async with AsyncSketchClient("127.0.0.1", server.port) as client:
                    with pytest.raises(ConnectionResetError):
                        await client.request(
                            "POST", "/ingest", json_body={"name": "x"}
                        )
                # a second canned response remains: only one request hit
                # the wire
                assert len(server.requests) == 1

        run(scenario())

    def test_conflicting_duplicate_lengths_rejected(self):
        async def scenario():
            responses = [
                response(
                    "Content-Length: 2",
                    "Content-Length: 99",
                    body=b"{}",
                )
            ] * 2
            async with ScriptedServer(responses) as server:
                async with AsyncSketchClient("127.0.0.1", server.port) as client:
                    with pytest.raises(
                        ConnectionResetError, match="duplicate"
                    ):
                        await client.request("GET", "/healthz")

        run(scenario())

    def test_repeated_identical_lengths_accepted(self):
        async def scenario():
            responses = [
                response(
                    "Content-Length: 2",
                    "Content-Length: 2",
                    body=b"{}",
                )
            ]
            async with ScriptedServer(responses) as server:
                async with AsyncSketchClient("127.0.0.1", server.port) as client:
                    status, payload = await client.request("GET", "/healthz")
                    assert status == 200
                    assert payload == {}

        run(scenario())

    def test_well_formed_response_still_parses(self):
        async def scenario():
            responses = [
                response(
                    "Content-Length: 15",
                    "X-Request-Id: abc123",
                    body=b'{"status":"ok"}',
                )
            ]
            async with ScriptedServer(responses) as server:
                async with AsyncSketchClient("127.0.0.1", server.port) as client:
                    status, payload = await client.request("GET", "/healthz")
                    assert status == 200
                    assert payload == {"status": "ok"}
                    assert client.last_request_id == "abc123"

        run(scenario())
