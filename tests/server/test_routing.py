"""Router semantics: exact-path dispatch, 404 vs 405, Allow header,
and the spec-generated ``/v1`` + legacy-alias table."""

from __future__ import annotations

import pytest

from repro.server.protocol import HttpError
from repro.server.routing import V1_PREFIX, Router


def handler_a():
    return "a"


def handler_b():
    return "b"


class TestRouter:
    def test_dispatch_by_method_and_path(self):
        router = Router()
        router.add("GET", "/x", handler_a)
        router.add("POST", "/x", handler_b)
        assert router.resolve("GET", "/x") is handler_a
        assert router.resolve("post", "/x") is handler_b

    def test_unknown_path_is_404(self):
        router = Router()
        router.add("GET", "/x", handler_a)
        with pytest.raises(HttpError) as excinfo:
            router.resolve("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405_with_allow(self):
        router = Router()
        router.add("GET", "/x", handler_a)
        router.add("POST", "/x", handler_b)
        with pytest.raises(HttpError) as excinfo:
            router.resolve("DELETE", "/x")
        assert excinfo.value.status == 405
        assert dict(excinfo.value.extra_headers)["Allow"] == "GET, POST"

    def test_duplicate_route_rejected(self):
        router = Router()
        router.add("GET", "/x", handler_a)
        with pytest.raises(ValueError, match="duplicate"):
            router.add("GET", "/x", handler_b)

    def test_routes_listing_sorted(self):
        router = Router()
        router.add("POST", "/b", handler_b)
        router.add("GET", "/a", handler_a)
        assert router.routes() == [("GET", "/a"), ("POST", "/b")]


class TestFromSpec:
    SPEC = [
        ("GET", "/query", handler_a),
        ("POST", "/ingest", handler_b),
    ]

    def test_each_entry_registers_canonical_and_legacy(self):
        router = Router.from_spec(self.SPEC)
        assert router.routes() == [
            ("POST", "/ingest"),
            ("GET", "/query"),
            ("POST", "/v1/ingest"),
            ("GET", "/v1/query"),
        ]

    def test_both_paths_dispatch_the_same_handler(self):
        router = Router.from_spec(self.SPEC)
        assert router.resolve("GET", "/v1/query") is handler_a
        assert router.resolve("GET", "/query") is handler_a
        assert router.resolve("POST", "/v1/ingest") is handler_b
        assert router.resolve("POST", "/ingest") is handler_b

    def test_legacy_paths_are_deprecated_aliases(self):
        router = Router.from_spec(self.SPEC)
        assert router.deprecation("/query") == V1_PREFIX + "/query"
        assert router.deprecation("/ingest") == V1_PREFIX + "/ingest"
        assert router.deprecation("/v1/query") is None
        assert router.deprecation("/v1/ingest") is None
        assert router.deprecation("/nope") is None

    def test_known_path_covers_both_registrations(self):
        router = Router.from_spec(self.SPEC)
        assert router.known_path("/v1/query")
        assert router.known_path("/query")
        assert not router.known_path("/v2/query")

    def test_wrong_method_on_legacy_path_still_405(self):
        router = Router.from_spec(self.SPEC)
        with pytest.raises(HttpError) as excinfo:
            router.resolve("DELETE", "/ingest")
        assert excinfo.value.status == 405
        # the Deprecation header decision is method-independent, so the
        # dispatcher can attach it to this 405 as well
        assert router.deprecation("/ingest") == "/v1/ingest"
