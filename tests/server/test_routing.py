"""Router semantics: exact-path dispatch, 404 vs 405, Allow header."""

from __future__ import annotations

import pytest

from repro.server.protocol import HttpError
from repro.server.routing import Router


def handler_a():
    return "a"


def handler_b():
    return "b"


class TestRouter:
    def test_dispatch_by_method_and_path(self):
        router = Router()
        router.add("GET", "/x", handler_a)
        router.add("POST", "/x", handler_b)
        assert router.resolve("GET", "/x") is handler_a
        assert router.resolve("post", "/x") is handler_b

    def test_unknown_path_is_404(self):
        router = Router()
        router.add("GET", "/x", handler_a)
        with pytest.raises(HttpError) as excinfo:
            router.resolve("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405_with_allow(self):
        router = Router()
        router.add("GET", "/x", handler_a)
        router.add("POST", "/x", handler_b)
        with pytest.raises(HttpError) as excinfo:
            router.resolve("DELETE", "/x")
        assert excinfo.value.status == 405
        assert dict(excinfo.value.extra_headers)["Allow"] == "GET, POST"

    def test_duplicate_route_rejected(self):
        router = Router()
        router.add("GET", "/x", handler_a)
        with pytest.raises(ValueError, match="duplicate"):
            router.add("GET", "/x", handler_b)

    def test_routes_listing_sorted(self):
        router = Router()
        router.add("POST", "/b", handler_b)
        router.add("GET", "/a", handler_a)
        assert router.routes() == [("GET", "/a"), ("POST", "/b")]
