"""Unit tests of :class:`repro.server.metrics.ServerMetrics`.

Exercises the metric bag away from the HTTP stack: robust throughput
rates (no sub-millisecond-uptime blowups), defensive per-engine
iteration when engines vanish mid-scrape, per-route latency histograms,
the Prometheus exposition, and a thread-pool hammer asserting counter
conservation under concurrent mutation.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import UnknownStoreError
from repro.sampling.seeds import SeedAssigner
from repro.server.metrics import _MIN_RATE_SECONDS, ServerMetrics, _rate
from repro.service import QueryPlanner, SketchStore


def make_store() -> SketchStore:
    store = SketchStore()
    store.create(
        "traffic",
        "bottom_k",
        k=16,
        seed_assigner=SeedAssigner(salt=7),
        n_shards=2,
    )
    return store


class VanishingStore:
    """A store whose engines disappear between ``names()`` and the
    probe — the race a concurrent restore/merge swap produces."""

    def __init__(self, inner: SketchStore, vanished: str) -> None:
        self._inner = inner
        self._vanished = vanished

    def names(self) -> list[str]:
        return sorted(set(self._inner.names()) | {self._vanished})

    def engine(self, name: str):
        return self._inner.engine(name)

    def version_hint(self, name: str) -> int:
        return self._inner.version_hint(name)


class TestRate:
    def test_zero_observations_is_zero(self):
        assert _rate(0, 0.0) == 0.0
        assert _rate(0, 100.0) == 0.0
        assert _rate(-1, 1.0) == 0.0

    def test_sub_millisecond_denominator_floored(self):
        # a server microseconds old must not extrapolate 10 rows into
        # millions of rows/s
        assert _rate(10, 1e-7) == pytest.approx(10 / _MIN_RATE_SECONDS)
        assert _rate(10, 0.0) == pytest.approx(10 / _MIN_RATE_SECONDS)

    def test_normal_rate(self):
        assert _rate(500, 2.0) == pytest.approx(250.0)

    def test_fresh_metrics_snapshot_rates_are_finite_and_modest(self):
        metrics = ServerMetrics()
        store, planner = make_store(), None

        class NullPlanner:
            @staticmethod
            def cache_stats():
                return {
                    "hits": 0,
                    "misses": 0,
                    "hit_rate": 0.0,
                    "entries": 0,
                    "max_entries": 1,
                }

        payload = metrics.snapshot(store, NullPlanner(), {})
        assert payload["ingest"]["rows_per_second"] == 0.0
        assert payload["ingest"]["rows_per_busy_second"] == 0.0
        # a handful of rows at near-zero uptime stays bounded
        metrics.record_ingest(5, 0.0)
        payload = metrics.snapshot(store, NullPlanner(), {})
        assert payload["ingest"]["rows_per_busy_second"] <= 5 / _MIN_RATE_SECONDS
        assert payload["ingest"]["rows_per_second"] > 0.0
        del planner


class MetricsHarness:
    """A ServerMetrics wired to a tiny real store and planner."""

    def __init__(self) -> None:
        self.metrics = ServerMetrics()
        self.store = make_store()
        self.planner = QueryPlanner(self.store, max_cache_entries=8)

    def snapshot(self, pending: dict | None = None) -> dict:
        return self.metrics.snapshot(self.store, self.planner, pending or {})

    def prometheus(self, pending: dict | None = None) -> str:
        return self.metrics.prometheus(self.store, self.planner, pending or {})


class TestSnapshot:
    def test_engine_block_probes_and_pending(self):
        harness = MetricsHarness()
        payload = harness.snapshot(pending={"traffic": 3})
        engine = payload["engines"]["traffic"]
        assert engine["pending_batches"] == 3
        assert engine["version"] == harness.store.version_hint("traffic")
        assert engine["n_updates"] == 0
        assert "shard_updates" in engine

    def test_vanished_engine_skipped_not_fatal(self):
        harness = MetricsHarness()
        store = VanishingStore(harness.store, vanished="ghost")
        payload = harness.metrics.snapshot(store, harness.planner, {})
        assert set(payload["engines"]) == {"traffic"}

    def test_vanished_engine_skipped_in_prometheus(self):
        harness = MetricsHarness()
        store = VanishingStore(harness.store, vanished="ghost")
        text = harness.metrics.prometheus(store, harness.planner, {})
        assert 'engine="traffic"' in text
        assert "ghost" not in text

    def test_latency_block_per_route(self):
        harness = MetricsHarness()
        harness.metrics.record_duration("GET /query", 0.002)
        harness.metrics.record_duration("GET /query", 0.004)
        harness.metrics.record_duration("POST /ingest", 0.050)
        payload = harness.snapshot()
        latency = payload["latency"]
        assert latency["GET /query"]["count"] == 2
        assert latency["POST /ingest"]["count"] == 1
        assert 0.001 <= latency["GET /query"]["p50_seconds"] <= 0.006
        merged = harness.metrics.merged_histogram()
        assert merged.count == 3

    def test_slow_request_counter(self):
        harness = MetricsHarness()
        harness.metrics.record_slow_request()
        assert harness.snapshot()["slow_requests"] == 1


class TestPrometheus:
    def test_exposition_contains_expected_families(self):
        harness = MetricsHarness()
        harness.metrics.record_request("GET", "/query")
        harness.metrics.record_response(200)
        harness.metrics.record_duration("GET /query", 0.002)
        harness.metrics.record_ingest(100, 0.01)
        text = harness.prometheus(pending={"traffic": 1})
        assert text.endswith("\n")
        for family in (
            "repro_uptime_seconds",
            'repro_requests_total{route="GET /query"} 1',
            'repro_responses_total{status="200"} 1',
            "repro_request_duration_seconds_bucket",
            "repro_ingest_rows_total 100",
            'repro_ingest_rejected_total{reason="backpressure"} 0',
            'repro_query_cache_requests_total{outcome="hit"} 0',
            'repro_engine_version{engine="traffic"}',
            'repro_engine_pending_batches{engine="traffic"} 1',
            'repro_engine_shard_updates_total{engine="traffic",shard="0"}',
        ):
            assert family in text, family

    def test_bucket_series_cumulative_per_route(self):
        harness = MetricsHarness()
        for seconds in (0.001, 0.002, 0.004):
            harness.metrics.record_duration("GET /query", seconds)
        text = harness.prometheus()
        bucket_lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_request_duration_seconds_bucket")
            and 'route="GET /query"' in line
        ]
        values = [float(line.rpartition(" ")[2]) for line in bucket_lines]
        assert values == sorted(values)
        assert values[-1] == 3  # the +Inf bucket equals the count


class TestConcurrency:
    def test_concurrent_mutation_conserves_counters(self):
        harness = MetricsHarness()
        per_thread, n_threads = 300, 8

        def hammer(worker: int) -> None:
            for index in range(per_thread):
                harness.metrics.record_request("GET", "/query")
                harness.metrics.record_response(200 if index % 2 else 503)
                harness.metrics.record_duration(f"route-{worker % 2}", index / 1e5)
                harness.metrics.record_ingest(2, 1e-4)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            for future in [pool.submit(hammer, worker) for worker in range(n_threads)]:
                future.result()

        total = per_thread * n_threads
        payload = harness.snapshot()
        assert payload["requests"]["GET /query"] == total
        assert sum(payload["responses"].values()) == total
        assert payload["ingest"]["rows"] == 2 * total
        assert payload["ingest"]["batches"] == total
        assert (
            payload["ingest"]["rejected_backpressure"]
            == payload["responses"]["503"]
        )
        merged = harness.metrics.merged_histogram()
        assert merged.count == total
        assert sum(merged.bucket_counts()) == total
        by_route = [
            harness.metrics.route_histogram(f"route-{index}").count
            for index in (0, 1)
        ]
        assert sum(by_route) == total
