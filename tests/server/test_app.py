"""Endpoint behaviour of :class:`repro.server.SketchServer`.

Covers the happy paths of every route plus the error surface the issue
calls out: malformed requests (400), unknown engines/paths (404),
oversized bodies and batches (413), per-engine backpressure (503), and
the graceful-shutdown snapshot of dirty engines.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

import json
import struct

from repro.sampling.seeds import SeedAssigner
from repro.server import AsyncSketchClient, ClientResponseError
from repro.server.wire import BATCH_CONTENT_TYPE, encode_batches
from repro.service import Query, SketchStore

SALT = 7


def make_store(kind: str = "poisson") -> SketchStore:
    store = SketchStore()
    if kind == "poisson":
        store.create(
            "traffic",
            "poisson",
            threshold=0.4,
            seed_assigner=SeedAssigner(salt=SALT),
            n_shards=4,
        )
    else:
        store.create(
            "traffic",
            "bottom_k",
            k=64,
            seed_assigner=SeedAssigner(salt=SALT),
            n_shards=4,
        )
    return store


def make_columns(n: int, seed: int = 0):
    generator = np.random.default_rng(seed)
    keys = [f"user{k}" for k in generator.choice(10**6, n, replace=False)]
    values = (generator.random(n) * 4 + 0.1).tolist()
    return keys, values


class TestBasics:
    def test_healthz_and_metrics(self, run_scenario):
        async def scenario(server, client):
            health = await client.healthz()
            assert health["status"] == "ok"
            assert health["engines"] == 1
            keys, values = make_columns(200)
            await client.ingest("traffic", "monday", keys, values)
            await client.query("traffic", "sum", ["monday"])
            await client.query("traffic", "sum", ["monday"])
            metrics = await client.metrics()
            assert metrics["ingest"]["rows"] == 200
            assert metrics["ingest"]["batches"] == 1
            assert metrics["query_cache"]["hits"] == 1
            assert metrics["query_cache"]["misses"] == 1
            engine = metrics["engines"]["traffic"]
            assert engine["version"] == 1
            assert engine["n_updates"] == 200
            assert engine["change_tick"] == 1
            assert metrics["responses"]["200"] >= 4

        run_scenario(scenario, store=make_store())

    def test_create_engine_then_ingest(self, run_scenario):
        async def scenario(server, client):
            created = await client.create_engine(
                "fresh", "bottom_k", k=32, salt=3, coordinated=True
            )
            assert created == {
                "name": "fresh",
                "kind": "bottom_k",
                "created": True,
            }
            keys, values = make_columns(50)
            report = await client.ingest("fresh", "day", keys, values)
            assert report["version"] == 1
            # duplicate creation is a client error
            with pytest.raises(ClientResponseError) as excinfo:
                await client.create_engine("fresh", "bottom_k", k=32)
            assert excinfo.value.status == 400
            # poisson without threshold is a client error
            status, payload = await client.request(
                "POST",
                "/engines",
                json_body={"name": "p", "kind": "poisson"},
            )
            assert status == 400
            assert "threshold" in payload["error"]

        run_scenario(scenario)

    def test_ingest_shapes_and_query_parity(self, run_scenario):
        store = make_store()
        reference = make_store()
        keys, values = make_columns(600)

        async def scenario(server, client):
            # column style for monday, row style for tuesday
            await client.ingest("traffic", "monday", keys[:400], values[:400])
            await client.ingest_rows(
                "traffic",
                [
                    ("tuesday", key, value)
                    for key, value in zip(keys[200:], values[200:])
                ],
            )
            result = await client.query("traffic", "distinct", ["monday", "tuesday"])
            assert not result["from_cache"]
            again = await client.query("traffic", "distinct", ["monday", "tuesday"])
            assert again["from_cache"]
            assert again["value"] == result["value"]
            return result

        result = run_scenario(scenario, store=store)
        reference.ingest("traffic", "monday", keys[:400], values[:400])
        reference.ingest("traffic", "tuesday", keys[200:], values[200:])
        assert store.engine("traffic") == reference.engine("traffic")
        expected = reference.query("traffic", Query.distinct("monday", "tuesday"))
        assert result["value"]["estimate"] == float(expected.value.estimate)
        assert result["value"]["counts"] == {
            key: int(count)
            for key, count in expected.value.counts.items()
        }

    def test_csv_ingest_matches_json_ingest(self, run_scenario):
        json_store = make_store()
        csv_store = make_store()
        keys, values = make_columns(300)
        lines = "".join(f"monday,{key},{value!r}\n" for key, value in zip(keys, values))

        async def json_scenario(server, client):
            await client.ingest("traffic", "monday", keys, values)

        async def csv_scenario(server, client):
            status, payload = await client.request(
                "POST",
                "/ingest",
                params={"name": "traffic"},
                body=lines.encode(),
                content_type="text/csv",
            )
            assert status == 200
            assert payload["rows"] == 300

        run_scenario(json_scenario, store=json_store)
        run_scenario(csv_scenario, store=csv_store)
        assert json_store.engine("traffic") == csv_store.engine("traffic")


class TestBinaryIngest:
    def test_binary_ingest_matches_json_bit_exactly(self, run_scenario):
        json_store = make_store()
        binary_store = make_store()
        generator = np.random.default_rng(3)
        keys = generator.choice(10**6, 400, replace=False).astype(np.int64)
        values = generator.random(400) + 0.05
        batches = [
            (
                "monday" if index % 2 else "tuesday",
                keys[index * 100 : (index + 1) * 100],
                values[index * 100 : (index + 1) * 100],
            )
            for index in range(4)
        ]

        async def json_scenario(server, client):
            for instance, batch_keys, batch_values in batches:
                await client.ingest(
                    "traffic",
                    instance,
                    [int(key) for key in batch_keys],
                    batch_values.tolist(),
                )

        async def binary_scenario(server, client):
            report = await client.ingest_binary("traffic", batches)
            assert report["rows"] == 400
            assert report["batches"] == 4
            assert report["version"] >= 1

        run_scenario(json_scenario, store=json_store)
        run_scenario(binary_scenario, store=binary_store)
        assert json_store.engine("traffic") == binary_store.engine("traffic")

    def test_binary_ingest_string_and_mixed_keys(self, run_scenario):
        store = make_store()
        reference = make_store()
        str_keys, values = make_columns(120, seed=9)

        async def scenario(server, client):
            await client.ingest_binary(
                "traffic",
                [
                    ("monday", str_keys, values),
                    ("tuesday", [1, (2, "x"), None], [1.0, 2.0, 3.0]),
                ],
            )

        run_scenario(scenario, store=store)
        reference.ingest("traffic", "monday", str_keys, values)
        reference.ingest(
            "traffic", "tuesday", [1, (2, "x"), None], [1.0, 2.0, 3.0]
        )
        assert store.engine("traffic") == reference.engine("traffic")

    def test_binary_ingest_requires_name(self, run_scenario):
        async def scenario(server, client):
            status, payload = await client.request(
                "POST",
                "/ingest",
                body=encode_batches([("d", [1], [1.0])]),
                content_type=BATCH_CONTENT_TYPE,
            )
            assert status == 400
            assert "?name=" in payload["error"]

        run_scenario(scenario, store=make_store())

    def test_binary_garbage_is_400_not_500(self, run_scenario):
        async def scenario(server, client):
            for body in (b"", b"junk", b"RBAT" + b"\xff" * 20):
                status, payload = await client.request(
                    "POST",
                    "/ingest",
                    params={"name": "traffic"},
                    body=body,
                    content_type=BATCH_CONTENT_TYPE,
                )
                assert status == 400, (body, payload)
                assert "error" in payload
            # nothing reached the engine
            assert server.store.version("traffic") == 0

        run_scenario(scenario, store=make_store())

    def test_binary_row_limit_applies_across_pipelined_batches(
        self, run_scenario
    ):
        async def scenario(server, client):
            batches = [
                ("d", np.arange(8, dtype=np.int64) + shift * 8, np.ones(8))
                for shift in range(3)
            ]
            status, payload = await client.request(
                "POST",
                "/ingest",
                params={"name": "traffic"},
                body=encode_batches(batches),
                content_type=BATCH_CONTENT_TYPE,
            )
            assert status == 413
            assert "24 rows" in payload["error"]
            assert server.store.version("traffic") == 0

        run_scenario(scenario, store=make_store(), max_batch_rows=20)


class TestNonFiniteRejection:
    """A NaN/Infinity body must get a 400 on every ingest format and
    never touch a sketch."""

    @staticmethod
    async def assert_rejected(server, client, *, body, content_type, params=None):
        status, payload = await client.request(
            "POST",
            "/ingest",
            params=params or {"name": "traffic"},
            body=body,
            content_type=content_type,
        )
        assert status == 400, payload
        assert "error" in payload
        assert server.store.version("traffic") == 0
        assert server.store.engine("traffic").n_updates == 0

    @pytest.mark.parametrize("literal", ["NaN", "Infinity", "-Infinity"])
    def test_json_literals_rejected(self, run_scenario, literal):
        async def scenario(server, client):
            # json.dumps(allow_nan=True) emits these bare literals, and
            # json.loads accepts them by default — the server must not
            body = (
                '{"name":"traffic","instance":"d","keys":["a"],'
                f'"values":[{literal}]}}'
            ).encode()
            await self.assert_rejected(
                server, client, body=body, content_type="application/json"
            )

        run_scenario(scenario, store=make_store())

    def test_json_overflow_number_rejected(self, run_scenario):
        async def scenario(server, client):
            # 1e999 is a spec-legal JSON number that parses to inf
            body = json.dumps(
                {
                    "name": "traffic",
                    "rows": [["d", "a", 1.0]],
                }
            ).replace("1.0", "1e999").encode()
            await self.assert_rejected(
                server, client, body=body, content_type="application/json"
            )

        run_scenario(scenario, store=make_store())

    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf", "NAN"])
    def test_csv_rejected_with_line_context(self, run_scenario, bad):
        async def scenario(server, client):
            body = f"d,a,1.0\nd,b,{bad}\n".encode()
            status, payload = await client.request(
                "POST",
                "/ingest",
                params={"name": "traffic"},
                body=body,
                content_type="text/csv",
            )
            assert status == 400
            assert "line 2" in payload["error"]
            assert server.store.engine("traffic").n_updates == 0

        run_scenario(scenario, store=make_store())

    def test_binary_smuggled_nan_rejected(self, run_scenario):
        async def scenario(server, client):
            blob = bytearray(encode_batches([("d", [1, 2], [1.0, 2.0])]))
            blob[-8:] = struct.pack("<d", float("nan"))
            await self.assert_rejected(
                server,
                client,
                body=bytes(blob),
                content_type=BATCH_CONTENT_TYPE,
            )

        run_scenario(scenario, store=make_store())


class TestCsvHeaderHandling:
    def test_header_after_leading_blank_lines_is_skipped(self, run_scenario):
        """Regression: a leading blank line used to demote the header to
        a data row, failing with a confusing 'bad update row'."""
        store = make_store()

        async def scenario(server, client):
            body = b"\n\ninstance,key,value\nd,a,1.0\nd,b,2.0\n"
            status, payload = await client.request(
                "POST",
                "/ingest",
                params={"name": "traffic"},
                body=body,
                content_type="text/csv",
            )
            assert status == 200, payload
            assert payload["rows"] == 2

        run_scenario(scenario, store=store)
        assert store.engine("traffic").n_updates == 2

    def test_error_lines_count_non_empty_rows(self, run_scenario):
        async def scenario(server, client):
            body = b"\nd,a,1.0\n\n\nd,b,bogus\n"
            status, payload = await client.request(
                "POST",
                "/ingest",
                params={"name": "traffic"},
                body=body,
                content_type="text/csv",
            )
            assert status == 400
            # 'd,b,bogus' is the second non-empty row
            assert "line 2" in payload["error"]

        run_scenario(scenario, store=make_store())


class TestErrorPaths:
    def test_malformed_requests_are_400(self, run_scenario):
        async def scenario(server, client):
            checks = [
                ("POST", "/ingest", {"body": b"not json"}),
                ("POST", "/ingest", {"json_body": ["not", "an", "object"]}),
                ("POST", "/ingest", {"json_body": {"instance": "d"}}),
                (
                    "POST",
                    "/ingest",
                    {"json_body": {"name": "traffic", "instance": "d"}},
                ),
                (
                    "POST",
                    "/ingest",
                    {
                        "json_body": {
                            "name": "traffic",
                            "instance": "d",
                            "keys": ["a", "b"],
                            "values": [1.0],
                        }
                    },
                ),
                (
                    "POST",
                    "/ingest",
                    {
                        "json_body": {
                            "name": "traffic",
                            "rows": [["d", "a", 1.0], ["d", "b"]],
                        }
                    },
                ),
                (
                    "POST",
                    "/ingest",
                    {
                        "json_body": {
                            "name": "traffic",
                            "instance": "d",
                            "keys": ["a"],
                            "values": ["NaN-ish"],
                        }
                    },
                ),
                (
                    "POST",
                    "/ingest",
                    {
                        "json_body": {
                            "name": "traffic",
                            "instance": "d",
                            "keys": ["a"],
                            "values": [-1.0],
                        }
                    },
                ),
                ("GET", "/query", {"params": {"name": "traffic"}}),
                (
                    "GET",
                    "/query",
                    {
                        "params": {
                            "name": "traffic",
                            "kind": "custom",
                            "instances": "a,b",
                        }
                    },
                ),
                (
                    "GET",
                    "/query",
                    {"params": {"name": "traffic", "kind": "distinct"}},
                ),
                ("POST", "/merge", {"json_body": {}}),
                ("POST", "/snapshot", {"json_body": {}}),
            ]
            for method, path, kwargs in checks:
                status, payload = await client.request(method, path, **kwargs)
                assert status == 400, (method, path, kwargs, payload)
                assert "error" in payload

        run_scenario(scenario, store=make_store())

    def test_unknown_targets_are_404(self, run_scenario, tmp_path):
        async def scenario(server, client):
            status, _ = await client.request("GET", "/nope")
            assert status == 404
            status, payload = await client.request(
                "POST",
                "/ingest",
                json_body={
                    "name": "ghost",
                    "instance": "d",
                    "keys": ["a"],
                    "values": [1.0],
                },
            )
            assert status == 404
            assert "ghost" in payload["error"]
            status, _ = await client.request(
                "GET",
                "/query",
                params={
                    "name": "ghost",
                    "kind": "sum",
                    "instances": "d",
                },
            )
            assert status == 404
            # a missing-but-confined peer file is 404
            status, _ = await client.request(
                "POST",
                "/merge",
                json_body={"path": "missing-peer.bin"},
            )
            assert status == 404

        run_scenario(
            scenario,
            store=make_store(),
            snapshot_path=tmp_path / "store.bin",
        )

    def test_network_paths_are_confined_to_the_data_dir(self, run_scenario, tmp_path):
        """/snapshot and /merge must never become an arbitrary
        file-write/read primitive for network clients."""

        async def scenario(server, client):
            for path in ("/etc/passwd", "../outside.bin"):
                status, payload = await client.request(
                    "POST", "/snapshot", json_body={"path": path}
                )
                assert status == 403, (path, payload)
                status, payload = await client.request(
                    "POST", "/merge", json_body={"path": path}
                )
                assert status == 403, (path, payload)

        run_scenario(
            scenario,
            store=make_store(),
            snapshot_path=tmp_path / "store.bin",
        )
        assert not (tmp_path.parent / "outside.bin").exists()

    def test_network_paths_rejected_without_data_dir(self, run_scenario):
        async def scenario(server, client):
            status, payload = await client.request(
                "POST", "/snapshot", json_body={"path": "anywhere.bin"}
            )
            assert status == 403
            assert "data directory" in payload["error"]
            status, _ = await client.request(
                "POST", "/merge", json_body={"path": "anywhere.bin"}
            )
            assert status == 403

        run_scenario(scenario, store=make_store())

    def test_wrong_method_is_405(self, run_scenario):
        async def scenario(server, client):
            status, _ = await client.request("DELETE", "/query")
            assert status == 405
            status, _ = await client.request("GET", "/ingest")
            assert status == 405

        run_scenario(scenario)

    def test_oversized_batch_is_413(self, run_scenario):
        async def scenario(server, client):
            keys, values = make_columns(21)
            status, payload = await client.request(
                "POST",
                "/ingest",
                json_body={
                    "name": "traffic",
                    "instance": "d",
                    "keys": keys,
                    "values": values,
                },
            )
            assert status == 413
            assert "21 rows" in payload["error"]
            # nothing was ingested
            assert server.store.version("traffic") == 0

        run_scenario(scenario, store=make_store(), max_batch_rows=20)

    def test_oversized_body_is_413(self, run_scenario):
        async def scenario(server, client):
            status, payload = await client.request(
                "POST",
                "/ingest",
                body=b"x" * 4096,
                content_type="text/csv",
                params={"name": "traffic"},
            )
            assert status == 413
            assert "exceeds" in payload["error"]

        run_scenario(scenario, store=make_store(), max_body_bytes=1024)


class GatedStore(SketchStore):
    """A store whose ingests block until the test opens the gate."""

    def __init__(self) -> None:
        super().__init__()
        self.gate = threading.Event()

    def submit(self, request):
        assert self.gate.wait(timeout=30), "test gate never opened"
        return super().submit(request)


class TestBackpressure:
    def test_excess_ingest_is_rejected_503(self, run_scenario):
        store = GatedStore()
        store.create(
            "traffic",
            "bottom_k",
            k=16,
            seed_assigner=SeedAssigner(salt=SALT),
            n_shards=2,
        )

        async def scenario(server, client):
            blocked = AsyncSketchClient(host="127.0.0.1", port=server.port)
            async with blocked:
                first = asyncio.ensure_future(
                    blocked.ingest("traffic", "d", ["a"], [1.0])
                )
                # wait until the first batch occupies the engine's slot
                for _ in range(500):
                    if server._pending.get("traffic"):
                        break
                    await asyncio.sleep(0.01)
                assert server._pending.get("traffic") == 1
                status, payload = await client.request(
                    "POST",
                    "/ingest",
                    json_body={
                        "name": "traffic",
                        "instance": "d",
                        "keys": ["b"],
                        "values": [1.0],
                    },
                )
                assert status == 503
                assert "in flight" in payload["error"]
                store.gate.set()
                report = await first
                assert report["version"] == 1
            metrics = await client.metrics()
            assert metrics["ingest"]["rejected_backpressure"] == 1

        run_scenario(
            scenario,
            store=store,
            max_pending_batches=1,
            ingest_threads=2,
        )


class TestShutdown:
    def test_shutdown_snapshots_dirty_engines(self, run_scenario, tmp_path):
        snapshot_path = tmp_path / "store.bin"
        store = make_store()

        async def scenario(server, client):
            keys, values = make_columns(150)
            await client.ingest("traffic", "monday", keys, values)

        run_scenario(scenario, store=store, snapshot_path=snapshot_path)
        assert snapshot_path.exists()
        restored = SketchStore.restore(snapshot_path)
        assert restored.engine("traffic") == store.engine("traffic")
        assert restored.version("traffic") == store.version("traffic")

    def test_shutdown_persists_http_created_engine(self, run_scenario, tmp_path):
        """An engine created over HTTP but never ingested into is still
        new state: shutdown must persist its definition (regression —
        creation used to mark the engine clean)."""
        snapshot_path = tmp_path / "store.bin"

        async def scenario(server, client):
            await client.create_engine("fresh", "poisson", threshold=0.5, salt=3)

        run_scenario(scenario, snapshot_path=snapshot_path)
        assert snapshot_path.exists()
        assert "fresh" in SketchStore.restore(snapshot_path).names()

    def test_backup_snapshot_does_not_suppress_shutdown_snapshot(
        self, run_scenario, tmp_path
    ):
        """POST /snapshot to a path other than the configured store file
        is a backup: the engines stay dirty and shutdown still persists
        the store file (regression — any snapshot used to mark clean)."""
        snapshot_path = tmp_path / "store.bin"

        async def scenario(server, client):
            keys, values = make_columns(60)
            await client.ingest("traffic", "monday", keys, values)
            await client.snapshot(tmp_path / "backup.bin")

        run_scenario(scenario, store=make_store(), snapshot_path=snapshot_path)
        assert (tmp_path / "backup.bin").exists()
        assert snapshot_path.exists()

    def test_config_cache_bound_reaches_planner(self, run_scenario):
        async def scenario(server, client):
            assert server.planner.max_cache_entries == 2

        run_scenario(scenario, max_cache_entries=2)

    def test_clean_engines_are_not_resnapshotted(self, run_scenario, tmp_path):
        snapshot_path = tmp_path / "store.bin"

        async def scenario(server, client):
            keys, values = make_columns(50)
            await client.ingest("traffic", "monday", keys, values)
            await client.snapshot()
            # drop the file: shutdown must NOT rewrite it, because no
            # engine changed since the explicit snapshot
            snapshot_path.unlink()

        run_scenario(scenario, store=make_store(), snapshot_path=snapshot_path)
        assert not snapshot_path.exists()

    def test_explicit_snapshot_and_merge_round_trip(self, run_scenario, tmp_path):
        peer_store = make_store()
        keys, values = make_columns(400, seed=5)
        peer_store.ingest("traffic", "monday", keys[:250], values[:250])
        peer_path = peer_store.snapshot(tmp_path / "peer.bin")
        main_store = make_store()

        async def scenario(server, client):
            await client.ingest("traffic", "monday", keys[250:], values[250:])
            report = await client.merge(peer_path)
            assert report["engines"]["traffic"]["n_updates"] == 400
            saved = await client.snapshot(tmp_path / "merged.bin")
            assert saved["engines"] == ["traffic"]
            return saved

        saved = run_scenario(
            scenario,
            store=main_store,
            snapshot_path=tmp_path / "live.bin",
        )
        merged = SketchStore.restore(saved["path"])
        reference = make_store()
        reference.ingest("traffic", "monday", keys, values)
        assert merged.engine("traffic") == reference.engine("traffic")


async def raw_request(
    port: int, method: str, target: str, headers: tuple = ()
) -> tuple[int, dict, bytes]:
    """One raw HTTP round-trip exposing the response headers."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        head = (
            f"{method} {target} HTTP/1.1\r\n"
            f"Host: 127.0.0.1:{port}\r\n"
            "Connection: close\r\n"
        )
        for name, value in headers:
            head += f"{name}: {value}\r\n"
        writer.write(head.encode("latin-1") + b"\r\n")
        await writer.drain()
        raw_head = await reader.readuntil(b"\r\n\r\n")
        lines = raw_head.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        response_headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0"))
        body = await reader.readexactly(length) if length else b""
        return status, response_headers, body
    finally:
        writer.close()


class TestObservability:
    def test_request_id_echoed_when_supplied(self, run_scenario):
        async def scenario(server, client):
            status, headers, _ = await raw_request(
                server.port,
                "GET",
                "/healthz",
                headers=(("X-Request-Id", "trace-me-42"),),
            )
            assert status == 200
            assert headers["x-request-id"] == "trace-me-42"

        run_scenario(scenario)

    def test_request_id_generated_when_missing_or_bogus(self, run_scenario):
        async def scenario(server, client):
            _, headers, _ = await raw_request(server.port, "GET", "/healthz")
            generated = headers["x-request-id"]
            assert len(generated) == 16
            int(generated, 16)
            # an unreasonable id (too long) is replaced, not echoed
            _, headers, _ = await raw_request(
                server.port,
                "GET",
                "/healthz",
                headers=(("X-Request-Id", "x" * 300),),
            )
            assert headers["x-request-id"] != "x" * 300

        run_scenario(scenario)

    def test_request_id_present_on_error_responses(self, run_scenario):
        async def scenario(server, client):
            status, headers, _ = await raw_request(server.port, "GET", "/nope")
            assert status == 404
            assert "x-request-id" in headers

        run_scenario(scenario)

    def test_client_propagates_and_records_request_id(self, run_scenario):
        async def scenario(server, client):
            await client.healthz()
            first = client.last_request_id
            assert first is not None
            status, _ = await client.request("GET", "/healthz", request_id="pinned-id")
            assert status == 200
            assert client.last_request_id == "pinned-id"

        run_scenario(scenario)

    def test_prometheus_exposition(self, run_scenario):
        async def scenario(server, client):
            keys, values = make_columns(100)
            await client.ingest("traffic", "monday", keys, values)
            await client.query("traffic", "sum", ["monday"])
            status, headers, body = await raw_request(
                server.port, "GET", "/metrics?format=prometheus"
            )
            assert status == 200
            assert headers["content-type"].startswith("text/plain; version=0.0.4")
            text = body.decode()
            assert text.endswith("\n")
            assert "repro_request_duration_seconds_bucket" in text
            assert 'repro_requests_total{route="POST /v1/ingest"} 1' in text
            assert 'repro_engine_version{engine="traffic"} 1' in text
            assert "repro_ingest_rows_total 100" in text

        run_scenario(scenario, store=make_store())

    def test_metrics_unknown_format_rejected(self, run_scenario):
        async def scenario(server, client):
            status, payload = await client.request(
                "GET", "/metrics", params={"format": "xml"}
            )
            assert status == 400
            assert "format" in payload["error"]

        run_scenario(scenario)

    def test_unmatched_routes_collapse_in_latency_labels(self, run_scenario):
        async def scenario(server, client):
            for path in ("/a", "/b", "/c"):
                status, _ = await client.request("GET", path)
                assert status == 404
            metrics = await client.metrics()
            unmatched = [
                route
                for route in metrics["latency"]
                if "(unmatched)" in route
            ]
            assert unmatched == ["GET (unmatched)"]
            assert metrics["latency"]["GET (unmatched)"]["count"] == 3

        run_scenario(scenario)

    def test_spans_recorded_through_the_stack(self, run_scenario):
        async def scenario(server, client):
            server.trace.clear()
            keys, values = make_columns(50)
            await client.ingest("traffic", "monday", keys, values)
            await client.query("traffic", "sum", ["monday"])
            http_spans = server.trace.recent(name="http.request")
            assert len(http_spans) >= 2
            (ingest_span,) = server.trace.recent(name="store.ingest")
            (query_span,) = server.trace.recent(name="planner.query")
            assert query_span.attrs["cache"] == "miss"
            # spans executed on worker threads still carry the request
            # id of the HTTP request that triggered them
            assert ingest_span.trace_id is not None
            routes = {span.attrs.get("route") for span in http_spans}
            assert "POST /v1/ingest" in routes

        run_scenario(scenario, store=make_store())

    def test_slow_request_log_counts(self, run_scenario):
        async def scenario(server, client):
            keys, values = make_columns(50)
            await client.ingest("traffic", "monday", keys, values)
            metrics = await client.metrics()
            # every request is beyond a 1e-9 ms threshold
            assert metrics["slow_requests"] >= 1
            assert server.slow_log.n_slow >= 1

        run_scenario(scenario, store=make_store(), slow_request_ms=1e-9)
