"""Fleet-health observability over HTTP.

``/healthz?verbose=1`` exposes the declarative health-rule engine,
``/statusz`` renders the operator page, ``/metrics/history`` serves the
ring-buffered time series the ticker samples, and ``?confidence=1``
queries carry the paper's estimate-quality payload.  The WAL
follower-lag scenario at the bottom is the integration test the rules
exist for: a held-back follower flips the server to degraded and a
catch-up recovers it through hysteresis.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.server import ClientResponseError
from repro.service import SketchStore, codec

# independently seeded (oblivious) instances: the cross-instance
# estimators behind distinct/l1 reject coordinated sketches
BOTTOM_K_CONFIG = {"k": 64, "salt": 3}
# distinct/l1 additionally need weight-oblivious (uniform-rank) sketches
POISSON_CONFIG = {"threshold": 0.5, "salt": 11, "n_shards": 2}


def sample_series(server) -> None:
    """One manual ticker sample — deterministic, no sleeping."""
    server.series.collect(
        server.metrics.series_sample(
            server.store, server.planner, dict(server._pending)
        )
    )


async def fill_engine(client, n: int = 40) -> None:
    await client.create_engine("t", "bottom_k", **BOTTOM_K_CONFIG)
    for day in ("mon", "tue"):
        await client.ingest(
            "t",
            day,
            [f"user-{day}-{i}" for i in range(n)],
            [float(i % 7 + 1) for i in range(n)],
        )


class TestHealthz:
    def test_plain_healthz_is_unchanged(self, run_scenario):
        async def scenario(server, client):
            payload = await client.healthz()
            assert payload["status"] == "ok"
            assert "health" not in payload

        run_scenario(scenario)

    def test_verbose_carries_the_rule_report(self, run_scenario):
        async def scenario(server, client):
            payload = await client.healthz(verbose=True)
            report = payload["health"]
            assert report["status"] == "healthy"
            assert report["severity"] == 0
            assert report["reasons"] == []
            for name in (
                "wal_follower_lag",
                "wal_checkpoint_age",
                "backpressure_503",
                "route_p99_burn",
                "cache_miss_rate",
                "sketch_fill_ratio",
            ):
                assert name in report["rules"], name
            # an idle WAL-less server has no data for the WAL probes
            assert report["rules"]["wal_follower_lag"]["value"] is None

        run_scenario(scenario)

    def test_sketch_probes_report_when_engines_exist(self, run_scenario):
        async def scenario(server, client):
            await fill_engine(client, n=200)
            payload = await client.healthz(verbose=True)
            rules = payload["health"]["rules"]
            fill = rules["sketch_fill_ratio"]["value"]
            assert fill is not None
            assert 0.0 < fill <= 1.0
            # informational probes never degrade the verdict
            assert payload["health"]["status"] == "healthy"
            assert rules["sketch_discard_ratio"]["value"] is not None

        run_scenario(scenario)


class TestStatusz:
    def test_statusz_renders_html(self, run_scenario):
        async def scenario(server, client):
            await fill_engine(client)
            sample_series(server)
            status, page = await client.request("GET", "/statusz")
            assert status == 200
            assert isinstance(page, str)
            assert page.startswith("<!DOCTYPE html>")
            assert "healthy" in page
            assert "repro sketch server" in page
            assert "t" in page  # the engine table

        run_scenario(scenario)

    def test_client_statusz_helper(self, run_scenario):
        async def scenario(server, client):
            page = await client.statusz()
            assert isinstance(page, str)
            assert "uptime" in page

        run_scenario(scenario)


class TestMetricsHistory:
    def test_requires_metric_and_knows_its_names(self, run_scenario):
        async def scenario(server, client):
            sample_series(server)
            status, payload = await client.request("GET", "/metrics/history")
            assert status == 400
            assert "repro_requests_total" in payload["error"]

        run_scenario(scenario)

    def test_unknown_metric_is_400(self, run_scenario):
        async def scenario(server, client):
            sample_series(server)
            with pytest.raises(ClientResponseError) as err:
                await client.metrics_history("no_such_metric")
            assert err.value.status == 400

        run_scenario(scenario)

    def test_bad_window_is_400(self, run_scenario):
        async def scenario(server, client):
            sample_series(server)
            for window in ("abc", "-1"):
                status, payload = await client.request(
                    "GET",
                    "/metrics/history",
                    params={
                        "metric": "repro_requests_total",
                        "window": window,
                    },
                )
                assert status == 400
                assert "window" in payload["error"]

        run_scenario(scenario)

    def test_history_returns_sampled_points_and_rates(self, run_scenario):
        async def scenario(server, client):
            await client.healthz()
            sample_series(server)
            await client.healthz()
            sample_series(server)
            payload = await client.metrics_history("repro_requests_total")
            assert payload["metric"] == "repro_requests_total"
            assert payload["kind"] == "counter"
            assert len(payload["points"]) == 2
            values = [value for _, value in payload["points"]]
            assert values[1] > values[0]  # the second healthz was counted
            assert len(payload["rates"]) == 1
            gauge = await client.metrics_history("repro_query_cache_entries")
            assert gauge["kind"] == "gauge"
            assert "rates" not in gauge

        run_scenario(scenario)

    def test_ticker_samples_in_the_background(self, run_scenario):
        async def scenario(server, client):
            deadline = asyncio.get_running_loop().time() + 5.0
            while server.series.n_samples < 2:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            payload = await client.metrics_history(
                "repro_requests_total", window=60.0
            )
            assert len(payload["points"]) >= 2
            assert payload["interval_seconds"] == pytest.approx(0.05)

        run_scenario(scenario, series_interval=0.05)

    def test_interval_zero_disables_the_ticker(self, run_scenario):
        async def scenario(server, client):
            assert server._series_task is None
            await asyncio.sleep(0.05)
            assert server.series.n_samples == 0

        run_scenario(scenario, series_interval=0.0)


class TestQueryConfidence:
    def test_sum_confidence_over_http(self, run_scenario):
        async def scenario(server, client):
            await fill_engine(client, n=200)
            payload = await client.query(
                "t", "sum", ["mon"], confidence=True
            )
            confidence = payload["confidence"]
            assert confidence["variance"] >= 0.0
            assert confidence["cv"] is None or confidence["cv"] >= 0.0
            assert confidence["ci90"]["confidence"] == pytest.approx(0.90)
            assert confidence["ci90"]["lower"] <= confidence["ci90"]["upper"]
            assert confidence["cv_bound"] == pytest.approx(
                1.0 / (BOTTOM_K_CONFIG["k"] - 2) ** 0.5
            )

        run_scenario(scenario)

    def test_distinct_confidence_over_http(self, run_scenario):
        async def scenario(server, client):
            await client.create_engine("p", "poisson", **POISSON_CONFIG)
            for day in ("mon", "tue"):
                await client.ingest(
                    "p",
                    day,
                    [f"user-{i}" for i in range(300)],
                    [1.0] * 300,
                )
            payload = await client.query(
                "p", "distinct", ["mon", "tue"], confidence=True
            )
            confidence = payload["confidence"]
            assert confidence["variance"] > 0.0
            assert confidence["ci90"]["lower"] <= confidence["ci90"]["upper"]

        run_scenario(scenario)

    def test_unconfident_query_has_no_payload(self, run_scenario):
        async def scenario(server, client):
            await fill_engine(client)
            payload = await client.query("t", "sum", ["mon"])
            assert "confidence" not in payload

        run_scenario(scenario)

    def test_refusal_is_a_400(self, run_scenario):
        async def scenario(server, client):
            await client.create_engine("p", "poisson", **POISSON_CONFIG)
            for day in ("mon", "tue"):
                await client.ingest("p", day, ["a", "b", "c"], [1.0] * 3)
            # the same l1 query answers fine without the quality request
            await client.query("p", "l1", ["mon", "tue"])
            with pytest.raises(ClientResponseError) as err:
                await client.query(
                    "p", "l1", ["mon", "tue"], confidence=True
                )
            assert err.value.status == 400
            assert "no variance estimator" in str(err.value)

        run_scenario(scenario)

    def test_accuracy_histogram_in_metrics(self, run_scenario):
        async def scenario(server, client):
            await fill_engine(client, n=200)
            await client.query("t", "sum", ["mon"], confidence=True)
            # the cached re-run must not re-weight the distribution
            await client.query("t", "sum", ["mon"], confidence=True)
            snapshot = await client.metrics()
            accuracy = snapshot["accuracy"]
            assert accuracy["sum"]["count"] == 1
            assert accuracy["sum"]["p50_seconds"] >= 0.0

        run_scenario(scenario)

    def test_prometheus_scrape_has_health_and_cv_families(
        self, run_scenario
    ):
        async def scenario(server, client):
            await fill_engine(client, n=200)
            await client.query("t", "sum", ["mon"], confidence=True)
            status, payload = await client.request(
                "GET", "/metrics", params={"format": "prometheus"}
            )
            assert status == 200
            text = (
                payload
                if isinstance(payload, str)
                else bytes(payload).decode("utf-8")
            )
            assert "# TYPE repro_health_status gauge" in text
            assert "repro_health_status 0" in text
            assert 'repro_health_status{rule="wal_follower_lag"} 0' in text
            assert "# TYPE repro_query_cv histogram" in text
            assert 'repro_query_cv_count{kind="sum"} 1' in text

        run_scenario(scenario)


class TestFollowerLagHealth:
    def test_lagging_follower_degrades_then_recovers(
        self, run_scenario, tmp_path
    ):
        async def scenario(server, client):
            await client.create_engine("t", "bottom_k", **BOTTOM_K_CONFIG)
            await client.ingest("t", "mon", ["a", "b"], [1.0, 2.0])
            replica = SketchStore()
            cursor = await client.catch_up(replica, follower="replica-1")
            report = (await client.healthz(verbose=True))["health"]
            assert report["status"] == "healthy"
            # the primary races ahead: 70 single-record batches, each
            # one LSN, past the 64-LSN warn threshold
            for i in range(70):
                await client.ingest("t", "mon", [f"late-{i}"], [1.0])
            report = (await client.healthz(verbose=True))["health"]
            assert report["status"] == "degraded"
            assert [r["rule"] for r in report["reasons"]] == [
                "wal_follower_lag"
            ]
            assert report["rules"]["wal_follower_lag"]["value"] >= 64
            # the follower catches up ...
            cursor = await client.catch_up(
                replica, cursor, follower="replica-1"
            )
            # ... but recovery waits for hysteresis consecutive healthy
            # evaluations: the first one still reports degraded
            report = (await client.healthz(verbose=True))["health"]
            assert report["status"] == "degraded"
            assert report["rules"]["wal_follower_lag"]["value"] == 0.0
            report = (await client.healthz(verbose=True))["health"]
            assert report["status"] == "healthy"
            assert report["reasons"] == []
            # and the replica really is caught up, bit-exact
            assert codec.to_bytes(replica.engine("t")) == codec.to_bytes(
                server.store.engine("t")
            )

        run_scenario(scenario, wal_dir=tmp_path / "wal", wal_fsync="off")

    def test_unregistered_replication_tracks_nothing(
        self, run_scenario, tmp_path
    ):
        async def scenario(server, client):
            await client.create_engine("t", "bottom_k", **BOTTOM_K_CONFIG)
            replica = SketchStore()
            await client.catch_up(replica)  # no follower id
            assert server._followers == {}
            report = (await client.healthz(verbose=True))["health"]
            assert report["rules"]["wal_follower_lag"]["value"] is None

        run_scenario(scenario, wal_dir=tmp_path / "wal", wal_fsync="off")
