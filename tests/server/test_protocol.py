"""HTTP/1.1 framing: request parsing, limits, response serialization."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.server.protocol import (
    HttpError,
    json_response_bytes,
    read_request,
    response_bytes,
)


def parse(raw: bytes, max_body_bytes: int = 4096):
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body_bytes)

    return asyncio.run(main())


class TestRequestParsing:
    def test_get_with_percent_encoded_params(self):
        request = parse(
            b"GET /query?name=a%20b&kind=distinct&empty= HTTP/1.1\r\n"
            b"Host: localhost\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/query"
        assert request.params == {
            "name": "a b",
            "kind": "distinct",
            "empty": "",
        }
        assert request.body == b""

    def test_headers_are_lowercased_and_stripped(self):
        request = parse(b"GET / HTTP/1.1\r\nX-Thing:   padded value \r\n\r\n")
        assert request.headers["x-thing"] == "padded value"

    def test_post_body_read_by_content_length(self):
        body = json.dumps({"name": "traffic"}).encode()
        request = parse(
            b"POST /ingest HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.body == body
        assert request.json() == {"name": "traffic"}

    def test_keep_alive_defaults(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive
        assert not parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive
        assert not parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive
        assert parse(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").keep_alive

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_unsupported_protocol_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/2\r\n\r\n")
        assert excinfo.value.status == 400

    def test_malformed_header_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert excinfo.value.status == 400

    def test_bad_content_length_is_400(self):
        for value in (b"abc", b"-5"):
            with pytest.raises(HttpError) as excinfo:
                parse(b"POST / HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n")
            assert excinfo.value.status == 400

    def test_oversized_body_is_413_before_reading(self):
        with pytest.raises(HttpError) as excinfo:
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: 99999\r\n\r\n",
                max_body_bytes=100,
            )
        assert excinfo.value.status == 413

    def test_truncated_body_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert excinfo.value.status == 400

    def test_chunked_bodies_are_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert excinfo.value.status == 400

    def test_malformed_json_body_is_400(self):
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 8\r\n\r\nnot json")
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST / HTTP/1.1\r\n\r\n").json()
        assert excinfo.value.status == 400


class TestResponses:
    def test_response_framing(self):
        raw = response_bytes(200, b"hi", keep_alive=False)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert body == b"hi"
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Content-Length: 2" in lines
        assert "Connection: close" in lines

    def test_json_response_round_trip(self):
        raw = json_response_bytes(
            503,
            {"error": "busy"},
            extra_headers=(("Retry-After", "1"),),
        )
        head, _, body = raw.partition(b"\r\n\r\n")
        assert json.loads(body) == {"error": "busy"}
        assert b"503 Service Unavailable" in head
        assert b"Retry-After: 1" in head

    def test_http_error_carries_extra_headers(self):
        error = HttpError(503, "busy", extra_headers=(("Retry-After", "2"),))
        assert error.status == 503
        assert error.extra_headers == (("Retry-After", "2"),)
