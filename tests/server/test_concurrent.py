"""Concurrent HTTP ingest parity.

Mirrors the 4-thread store parity suite one layer up: N async clients
interleave ingest and query requests against the server (whose ingest
runs on a multi-thread executor under per-shard locks), and the
resulting engines must be *identical* — bit-exact sketch state — to a
serial ingest of the same batches, for both sketch families.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.sampling.seeds import SeedAssigner
from repro.server import AsyncSketchClient
from repro.service import Query, SketchStore

SALT = 11
N_CLIENTS = 4
N_BATCHES = 24
BATCH_ROWS = 400
INSTANCES = ("monday", "tuesday")


def make_batches(seed: int = 0):
    """Distinct-key batches spread over two instances.

    Distinct keys keep the workload in the pre-aggregated model, where
    sketch state is insensitive to update order — the property that
    makes concurrent-vs-serial parity exact rather than statistical.
    """
    generator = np.random.default_rng(seed)
    n_rows = N_BATCHES * BATCH_ROWS
    keys = generator.choice(10**9, size=n_rows, replace=False)
    values = generator.random(n_rows) * 5.0 + 0.01
    batches = []
    for index in range(N_BATCHES):
        start = index * BATCH_ROWS
        stop = start + BATCH_ROWS
        batches.append(
            (
                INSTANCES[index % len(INSTANCES)],
                [f"user{key}" for key in keys[start:stop]],
                values[start:stop].tolist(),
            )
        )
    return batches


def build_store(kind: str) -> SketchStore:
    store = SketchStore()
    assigner = SeedAssigner(salt=SALT)
    if kind == "bottom_k":
        store.create("load", "bottom_k", k=128, seed_assigner=assigner, n_shards=8)
    else:
        store.create(
            "load", "poisson", threshold=0.3,
            seed_assigner=assigner, n_shards=8,
        )
    return store


def interleaved_query(kind: str) -> tuple[str, list]:
    """A query legal for the sketch family under test.

    ``distinct`` needs independently sampled weight-oblivious Poisson
    sketches; for bottom-k the subset-sum (rank conditioning) path is
    the natural read.
    """
    if kind == "bottom_k":
        return "sum", [INSTANCES[0]]
    return "distinct", list(INSTANCES)


async def client_worker(port: int, kind: str, batches: list, results: list) -> None:
    """One client: ingest its batches, interleaving queries throughout."""
    query_kind, query_instances = interleaved_query(kind)
    async with AsyncSketchClient(host="127.0.0.1", port=port) as client:
        for position, (instance, keys, values) in enumerate(batches):
            report = await client.ingest("load", instance, keys, values)
            assert report["rows"] == len(keys)
            # interleave reads with writes: every other batch, query a
            # (possibly mid-ingest) consistent snapshot
            if position % 2 == 1:
                result = await client.query("load", query_kind, query_instances)
                results.append(result)


@pytest.mark.parametrize("kind", ["bottom_k", "poisson"])
def test_concurrent_http_ingest_matches_serial(run_scenario, kind):
    batches = make_batches(seed=3 if kind == "bottom_k" else 4)
    concurrent_store = build_store(kind)

    async def scenario(server, client):
        results: list = []
        workers = [
            client_worker(server.port, kind, batches[index::N_CLIENTS], results)
            for index in range(N_CLIENTS)
        ]
        await asyncio.gather(*workers)
        metrics = await client.metrics()
        assert metrics["ingest"]["rows"] == N_BATCHES * BATCH_ROWS
        assert metrics["engines"]["load"]["version"] == N_BATCHES
        return results

    results = run_scenario(scenario, store=concurrent_store, ingest_threads=4)
    assert len(results) == N_BATCHES // 2

    serial_store = build_store(kind)
    for instance, keys, values in batches:
        serial_store.ingest("load", instance, keys, values)

    # bit-exact parity: every shard sketch of every instance identical
    assert concurrent_store.engine("load") == serial_store.engine("load")
    assert concurrent_store.version("load") == serial_store.version("load")

    # and the served query values equal the serial planner's
    query_kind, query_instances = interleaved_query(kind)
    query = Query(query_kind, tuple(query_instances))
    expected = serial_store.query("load", query)
    final = concurrent_store.query("load", query)
    if query_kind == "sum":
        assert float(final) == float(expected)
    else:
        assert float(final.value.estimate) == float(expected.value.estimate)
