"""Tests for the confidence-interval helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.confidence import (
    chebyshev_interval,
    normal_interval,
)
from repro.aggregates.distinct import distinct_count_l, distinct_l_variance
from repro.datasets.synthetic import set_pair_with_jaccard
from repro.exceptions import InvalidParameterError
from repro.sampling.seeds import SeedAssigner


class TestIntervalConstruction:
    def test_normal_interval_symmetric(self):
        interval = normal_interval(100.0, 25.0, confidence=0.95)
        assert interval.lower == pytest.approx(100.0 - 1.96 * 5.0, abs=0.01)
        assert interval.upper == pytest.approx(100.0 + 1.96 * 5.0, abs=0.01)
        assert interval.contains(100.0)
        assert interval.method == "normal"

    def test_chebyshev_wider_than_normal(self):
        normal = normal_interval(50.0, 16.0, confidence=0.9)
        chebyshev = chebyshev_interval(50.0, 16.0, confidence=0.9)
        assert chebyshev.width > normal.width

    def test_lower_clipped_at_zero(self):
        interval = normal_interval(1.0, 100.0)
        assert interval.lower == 0.0

    def test_zero_variance(self):
        interval = normal_interval(10.0, 0.0)
        assert interval.lower == interval.upper == 10.0
        assert interval.width == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            normal_interval(1.0, -1.0)
        with pytest.raises(InvalidParameterError):
            chebyshev_interval(1.0, 1.0, confidence=1.0)
        with pytest.raises(InvalidParameterError):
            normal_interval(1.0, 1.0, confidence=0.0)


class TestEmpiricalCoverage:
    def test_normal_interval_coverage_for_distinct_count(self):
        set1, set2 = set_pair_with_jaccard(3000, 0.5)
        truth = len(set1 | set2)
        probability = 0.2
        variance = distinct_l_variance(truth, 0.5, probability, probability)
        all_keys = sorted(set1 | set2)
        covered = 0
        n_trials = 60
        for salt in range(n_trials):
            seeds = SeedAssigner(salt=salt)
            seeds1 = seeds.seed_map(all_keys, instance=1)
            seeds2 = seeds.seed_map(all_keys, instance=2)
            sample1 = {k for k in set1 if seeds1[k] <= probability}
            sample2 = {k for k in set2 if seeds2[k] <= probability}
            estimate = distinct_count_l(
                sample1, sample2, probability, probability, seeds1, seeds2
            ).estimate
            if normal_interval(estimate, variance, 0.95).contains(truth):
                covered += 1
        # Nominal coverage 95%; allow binomial slack for 60 trials.
        assert covered / n_trials >= 0.85

    def test_chebyshev_interval_always_covers_more(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            estimate = float(rng.uniform(10, 1000))
            variance = float(rng.uniform(1, 500))
            normal = normal_interval(estimate, variance, 0.9)
            chebyshev = chebyshev_interval(estimate, variance, 0.9)
            assert chebyshev.lower <= normal.lower
            assert chebyshev.upper >= normal.upper
