"""Tests for the estimator comparison tables."""

from __future__ import annotations

import pytest

from repro.analysis.comparison import compare_estimators
from repro.core.max_oblivious import MaxObliviousHT, MaxObliviousL, MaxObliviousU
from repro.exceptions import InvalidParameterError
from repro.sampling.dispersed import ObliviousPoissonScheme


@pytest.fixture
def comparison(half_scheme):
    probabilities = (0.5, 0.5)
    return compare_estimators(
        {
            "HT": MaxObliviousHT(probabilities),
            "L": MaxObliviousL(probabilities),
            "U": MaxObliviousU(probabilities),
        },
        half_scheme,
        vectors=[(1.0, 0.0), (1.0, 0.5), (1.0, 1.0)],
        baseline="HT",
    )


class TestComparison:
    def test_all_unbiased(self, comparison):
        for row in comparison.rows:
            for mean in row["means"].values():
                assert mean == pytest.approx(max(row["vector"]))

    def test_dominance(self, comparison):
        assert comparison.dominates_baseline("L")
        assert comparison.dominates_baseline("U")

    def test_variance_ratios(self, comparison):
        ratios = comparison.variance_ratios("L")
        assert len(ratios) == 3
        assert all(ratio >= 1.0 for ratio in ratios)

    def test_table_rendering(self, comparison):
        lines = comparison.as_table()
        assert len(lines) == 4
        assert "HT" in lines[0] and "L" in lines[0]

    def test_requires_estimators(self, half_scheme):
        with pytest.raises(InvalidParameterError):
            compare_estimators({}, half_scheme, [(1.0, 1.0)])

    def test_unknown_baseline(self, half_scheme):
        with pytest.raises(InvalidParameterError):
            compare_estimators(
                {"HT": MaxObliviousHT((0.5, 0.5))},
                half_scheme,
                [(1.0, 1.0)],
                baseline="missing",
            )

    def test_zero_variance_ratio_handling(self):
        scheme = ObliviousPoissonScheme((1.0, 1.0))
        comparison = compare_estimators(
            {
                "HT": MaxObliviousHT((1.0, 1.0)),
                "L": MaxObliviousL((1.0, 1.0)),
            },
            scheme,
            vectors=[(2.0, 1.0)],
        )
        assert comparison.variance_ratios("L") == [1.0]
