"""Tests for the Monte-Carlo simulation harness."""

from __future__ import annotations

import pytest

from repro.analysis.montecarlo import simulate_estimator
from repro.core.max_oblivious import MaxObliviousL
from repro.core.max_weighted import MaxPpsL
from repro.core.variance import exact_moments
from repro.exceptions import InvalidParameterError
from repro.sampling.dispersed import ObliviousPoissonScheme, PpsPoissonScheme


class TestSimulateEstimator:
    def test_mean_matches_exact(self, rng):
        probabilities = (0.5, 0.5)
        scheme = ObliviousPoissonScheme(probabilities)
        estimator = MaxObliviousL(probabilities)
        values = (4.0, 1.0)
        result = simulate_estimator(estimator, scheme, values,
                                    n_trials=20_000, rng=rng)
        assert result.mean_within(max(values))
        exact_mean, exact_variance = exact_moments(estimator, scheme, values)
        assert result.variance == pytest.approx(exact_variance, rel=0.1)
        assert result.mean == pytest.approx(exact_mean, rel=0.05)

    def test_nonnegativity_reported(self, rng):
        probabilities = (0.5, 0.5)
        scheme = ObliviousPoissonScheme(probabilities)
        estimator = MaxObliviousL(probabilities)
        result = simulate_estimator(estimator, scheme, (4.0, 1.0),
                                    n_trials=5_000, rng=rng)
        assert result.min_estimate >= 0.0
        assert result.max_estimate > 0.0

    def test_works_with_pps_scheme(self, rng):
        scheme = PpsPoissonScheme((10.0, 10.0))
        estimator = MaxPpsL((10.0, 10.0))
        result = simulate_estimator(estimator, scheme, (5.0, 3.0),
                                    n_trials=10_000, rng=rng)
        assert result.mean_within(5.0)

    def test_requires_at_least_two_trials(self):
        scheme = ObliviousPoissonScheme((0.5, 0.5))
        estimator = MaxObliviousL((0.5, 0.5))
        with pytest.raises(InvalidParameterError):
            simulate_estimator(estimator, scheme, (1.0, 1.0), n_trials=1)

    def test_n_trials_recorded(self, rng):
        scheme = ObliviousPoissonScheme((0.5, 0.5))
        estimator = MaxObliviousL((0.5, 0.5))
        result = simulate_estimator(estimator, scheme, (1.0, 1.0),
                                    n_trials=500, rng=rng)
        assert result.n_trials == 500
        assert result.standard_error > 0.0
