"""Tests for the Figure 6 sample-size planning math."""

from __future__ import annotations

import pytest

from repro.analysis.samplesize import (
    distinct_count_coefficient_of_variation,
    required_probability,
    required_sample_size,
)
from repro.exceptions import InvalidParameterError


class TestCoefficientOfVariation:
    def test_ht_closed_form(self):
        # cv = sqrt(N (1/p^2 - 1)) / N with N = 2n/(1+J).
        n, jaccard, p = 1000.0, 0.0, 0.1
        distinct = 2 * n / (1 + jaccard)
        expected = (distinct * (1 / p ** 2 - 1)) ** 0.5 / distinct
        assert distinct_count_coefficient_of_variation(
            "HT", n, jaccard, p
        ) == pytest.approx(expected)

    def test_l_below_ht(self):
        for jaccard in (0.0, 0.5, 0.9, 1.0):
            for p in (0.01, 0.1, 0.5):
                assert distinct_count_coefficient_of_variation(
                    "L", 1e5, jaccard, p
                ) <= distinct_count_coefficient_of_variation(
                    "HT", 1e5, jaccard, p
                ) + 1e-12

    def test_decreasing_in_probability(self):
        values = [
            distinct_count_coefficient_of_variation("L", 1e4, 0.5, p)
            for p in (0.01, 0.05, 0.2, 0.8)
        ]
        assert values == sorted(values, reverse=True)

    def test_unknown_estimator(self):
        with pytest.raises(InvalidParameterError):
            distinct_count_coefficient_of_variation("XX", 100, 0.5, 0.1)


class TestRequiredSampleSize:
    def test_achieves_target(self):
        for estimator in ("HT", "L"):
            probability = required_probability(estimator, 1e6, 0.5, 0.1)
            achieved = distinct_count_coefficient_of_variation(
                estimator, 1e6, 0.5, probability
            )
            assert achieved == pytest.approx(0.1, rel=1e-3)

    def test_l_needs_fewer_samples(self):
        for jaccard in (0.0, 0.5, 0.9):
            for n in (1e4, 1e7):
                assert required_sample_size("L", n, jaccard, 0.1) <= \
                    required_sample_size("HT", n, jaccard, 0.1) + 1e-9

    def test_asymptotic_factor_for_disjoint_sets(self):
        # Paper: for small p the L estimator needs ~ sqrt(1-J)/2 of the HT
        # samples; with J = 0 that is a factor of one half.
        ratio = required_sample_size("L", 1e9, 0.0, 0.1) / \
            required_sample_size("HT", 1e9, 0.0, 0.1)
        assert ratio == pytest.approx(0.5, abs=0.05)

    def test_identical_sets_constant_sample_size(self):
        # Paper: when J is large, a constant number of samples suffices for
        # a fixed cv (the L curve flattens).
        small = required_sample_size("L", 1e6, 1.0, 0.1)
        large = required_sample_size("L", 1e9, 1.0, 0.1)
        assert large == pytest.approx(small, rel=0.01)
        # whereas the HT sample size keeps growing with n
        assert required_sample_size("HT", 1e9, 1.0, 0.1) > 10 * large

    def test_monotone_in_target(self):
        assert required_sample_size("L", 1e6, 0.5, 0.02) > \
            required_sample_size("L", 1e6, 0.5, 0.1)

    def test_invalid_target(self):
        with pytest.raises(InvalidParameterError):
            required_probability("L", 1e6, 0.5, 0.0)
