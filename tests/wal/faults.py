"""Fault-injection helpers for the write-ahead-log suite.

Small, deterministic primitives the tests compose: build a WAL-attached
store next to an identical control store, then damage the log —
truncate it at an arbitrary byte, flip a single bit, tear the final
record at every offset — and check recovery either reproduces the
control state (minus the torn batch) or fails loudly with offset
context.  Never a silently partial store.
"""

from __future__ import annotations

from pathlib import Path

from repro.sampling.seeds import SeedAssigner
from repro.service.store import SketchStore
from repro.wal import WriteAheadLog
from repro.wal.log import (
    RECORD_HEADER_BYTES,
    RECORD_MAGIC,
    SEGMENT_HEADER_BYTES,
    _U32,
)

#: engine name every helper-built store registers
ENGINE = "t"


def make_engine_kwargs(kind: str) -> dict:
    kwargs = {
        "seed_assigner": SeedAssigner(salt=7, coordinated=True),
        "n_shards": 4,
    }
    if kind == "poisson":
        kwargs["threshold"] = 0.05
    else:
        kwargs["k"] = 32
    return kwargs


def build_store(kind: str = "poisson") -> SketchStore:
    store = SketchStore()
    store.create(ENGINE, kind, **make_engine_kwargs(kind))
    return store


def build_wal_store(
    wal_dir: Path,
    kind: str = "poisson",
    *,
    fsync: str = "off",
    segment_bytes: int = 64 * 1024 * 1024,
) -> tuple[SketchStore, WriteAheadLog]:
    """A fresh store with an attached log (engine-create record included)."""
    store = SketchStore()
    wal = WriteAheadLog(wal_dir, fsync=fsync, segment_bytes=segment_bytes)
    store.attach_wal(wal)
    store.create(ENGINE, kind, **make_engine_kwargs(kind))
    return store, wal


def batch(i: int, rows: int = 5) -> tuple[str, list[str], list[float]]:
    """The ``i``-th deterministic ingest batch."""
    return (
        "mon" if i % 2 == 0 else "tue",
        [f"user-{i}-{j}" for j in range(rows)],
        [float(j % 3 + 1) for j in range(rows)],
    )


def fill(store: SketchStore, n_batches: int, rows: int = 5) -> None:
    for i in range(n_batches):
        instance, keys, values = batch(i, rows)
        store.ingest(ENGINE, instance, keys, values)


def control_after(n_batches: int, kind: str = "poisson", rows: int = 5):
    """The engine state an uninterrupted ingest of ``n_batches`` reaches."""
    store = build_store(kind)
    fill(store, n_batches, rows)
    return store.engine(ENGINE)


def truncate_to(path: Path, size: int) -> None:
    path.write_bytes(path.read_bytes()[:size])


def flip_bit(path: Path, offset: int, bit: int = 0) -> None:
    data = bytearray(path.read_bytes())
    data[offset] ^= 1 << bit
    path.write_bytes(bytes(data))


def record_spans(path: Path) -> list[tuple[int, int]]:
    """``(start, end)`` byte spans of every record frame in a segment.

    Walks the framing directly (magic + declared body length) instead of
    going through the validating scanner, so the tests can locate the
    final record even in files they are about to damage.
    """
    data = path.read_bytes()
    spans = []
    offset = SEGMENT_HEADER_BYTES
    while offset + RECORD_HEADER_BYTES <= len(data):
        assert data[offset : offset + 4] == RECORD_MAGIC, (
            f"helper walked off the frame chain at offset {offset}"
        )
        (body_len,) = _U32.unpack_from(data, offset + 4)
        end = offset + RECORD_HEADER_BYTES + body_len
        spans.append((offset, end))
        offset = end
    return spans
