"""Crash-recovery semantics: snapshot + tail replay, bit-exact.

Each crash window the ISSUE calls out gets a test: a record logged but
never applied, a snapshot persisted but the WAL truncation interrupted,
and an empty just-created segment on startup.  Replay must be
idempotent in every window — recovering twice, or recovering a log that
overlaps the snapshot, never double-applies a batch.
"""

from __future__ import annotations

import pytest

import faults
from repro.exceptions import InvalidParameterError, WalCorruptionError
from repro.service import codec
from repro.service.store import SketchStore
from repro.wal import WriteAheadLog, apply_records, recover_store


def engine_bytes(store) -> bytes:
    return codec.to_bytes(store.engine(faults.ENGINE))


def reopen_and_recover(wal_dir, snapshot=None):
    wal = WriteAheadLog(wal_dir, fsync="off")
    try:
        return recover_store(snapshot, wal)
    finally:
        wal.close()


class TestRecoverFromLogAlone:
    @pytest.mark.parametrize("kind", ["poisson", "bottom_k"])
    def test_bit_exact_without_a_snapshot(self, tmp_path, kind):
        store, wal = faults.build_wal_store(tmp_path / "wal", kind)
        faults.fill(store, 8)
        wal.close()
        report = reopen_and_recover(tmp_path / "wal")
        assert engine_bytes(report.store) == codec.to_bytes(
            faults.control_after(8, kind)
        )
        assert report.snapshot_engines == 0
        assert report.replayed_records == 9  # engine create + 8 batches
        assert report.replayed_rows == 8 * 5
        assert report.skipped_records == 0
        assert report.last_lsn == 9
        assert report.torn_tail is None
        assert report.replay_seconds > 0.0
        assert report.store.version(faults.ENGINE) == 8

    def test_rotated_log_replays_across_segments(self, tmp_path):
        store, wal = faults.build_wal_store(
            tmp_path / "wal", segment_bytes=256
        )
        faults.fill(store, 10)
        assert len(wal.segment_paths()) > 1
        wal.close()
        report = reopen_and_recover(tmp_path / "wal")
        assert engine_bytes(report.store) == engine_bytes(store)
        assert report.replayed_records == 11


class TestCrashWindows:
    def test_record_logged_but_never_applied(self, tmp_path):
        # crash between the WAL append and the in-memory apply: the
        # acknowledged-but-unapplied batch must come back on recovery
        store, wal = faults.build_wal_store(tmp_path / "wal")
        faults.fill(store, 3)
        instance, keys, values = faults.batch(3)
        wal.append_batch(
            faults.ENGINE,
            store.version(faults.ENGINE) + 1,
            instance,
            keys,
            values,
        )
        wal.close()
        report = reopen_and_recover(tmp_path / "wal")
        assert engine_bytes(report.store) == codec.to_bytes(
            faults.control_after(4)
        )
        assert report.store.version(faults.ENGINE) == 4

    def test_snapshot_persisted_but_truncation_interrupted(self, tmp_path):
        # crash after the snapshot rename but before the checkpoint: the
        # whole log overlaps the snapshot and must be skipped wholesale
        store, wal = faults.build_wal_store(tmp_path / "wal")
        faults.fill(store, 5)
        snapshot = tmp_path / "store.bin"
        store.snapshot_marked(snapshot, checkpoint_wal=False)
        wal.close()
        report = reopen_and_recover(tmp_path / "wal", snapshot)
        assert engine_bytes(report.store) == engine_bytes(store)
        assert report.snapshot_engines == 1
        assert report.replayed_records == 0
        assert report.skipped_records == 6  # engine create + 5 batches
        assert report.store.version(faults.ENGINE) == 5

    def test_replay_resumes_exactly_past_the_snapshot(self, tmp_path):
        store, wal = faults.build_wal_store(tmp_path / "wal")
        faults.fill(store, 3)
        snapshot = tmp_path / "store.bin"
        store.snapshot_marked(snapshot, checkpoint_wal=False)
        for i in range(3, 6):
            instance, keys, values = faults.batch(i)
            store.ingest(faults.ENGINE, instance, keys, values)
        wal.close()
        report = reopen_and_recover(tmp_path / "wal", snapshot)
        assert engine_bytes(report.store) == codec.to_bytes(
            faults.control_after(6)
        )
        assert report.skipped_records == 4  # engine create + batches 1..3
        assert report.replayed_records == 3  # batches 4..6

    def test_empty_wal_segment_on_startup(self, tmp_path):
        # crash right after segment creation: header only, zero records
        store = faults.build_store()
        faults.fill(store, 4)
        snapshot = tmp_path / "store.bin"
        store.snapshot_marked(snapshot)
        wal = WriteAheadLog(tmp_path / "wal", fsync="off")
        wal.close()
        report = reopen_and_recover(tmp_path / "wal", snapshot)
        assert engine_bytes(report.store) == engine_bytes(store)
        assert report.replayed_records == 0
        assert report.skipped_records == 0
        assert report.last_lsn == 0

    def test_replay_is_idempotent(self, tmp_path):
        store, wal = faults.build_wal_store(tmp_path / "wal")
        faults.fill(store, 4)
        wal.close()
        reader = WriteAheadLog(tmp_path / "wal", fsync="off")
        try:
            records, torn = reader.read_all()
        finally:
            reader.close()
        assert torn is None
        recovered = SketchStore()
        assert apply_records(recovered, records) == (5, 20, 0)
        once = engine_bytes(recovered)
        # a second pass over the same records is a no-op
        assert apply_records(recovered, records) == (0, 0, 5)
        assert engine_bytes(recovered) == once == engine_bytes(store)


class TestEngineRecords:
    def test_adopt_is_logged_and_replayed(self, tmp_path):
        store, wal = faults.build_wal_store(tmp_path / "wal")
        faults.fill(store, 2)
        replacement = faults.build_store()
        faults.fill(replacement, 6)
        store.adopt(
            faults.ENGINE, replacement.engine(faults.ENGINE), version=10
        )
        wal.close()
        report = reopen_and_recover(tmp_path / "wal")
        assert engine_bytes(report.store) == engine_bytes(replacement)
        assert report.store.version(faults.ENGINE) == 10

    def test_batch_for_unknown_engine_is_corruption(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="off")
        instance, keys, values = faults.batch(0)
        wal.append_batch("ghost", 1, instance, keys, values)
        wal.close()
        with pytest.raises(WalCorruptionError, match="ghost"):
            reopen_and_recover(tmp_path / "wal")


class TestReplayBatchGuards:
    def test_stale_version_is_the_callers_bug(self, tmp_path):
        store = faults.build_store()
        faults.fill(store, 2)
        instance, keys, values = faults.batch(0)
        with pytest.raises(InvalidParameterError, match="version"):
            store.replay_batch(faults.ENGINE, instance, keys, values, 1)
