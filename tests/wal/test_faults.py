"""Exhaustive fault injection against the log's integrity policy.

The final record of a log is torn at *every* byte offset — both by
truncation and by single-bit flips — and recovery must always land in
one of exactly two places: the precise pre-crash state minus the torn
batch, or a loud :class:`~repro.exceptions.WalCorruptionError` carrying
the byte offset.  Mid-log damage (sealed segments, corrupt records with
intact successors, header damage) must always take the loud branch.
Silently partial stores are never acceptable.
"""

from __future__ import annotations

import shutil

import pytest

import faults
from repro.exceptions import WalCorruptionError
from repro.service import codec
from repro.wal import WriteAheadLog, recover_store

N_BATCHES = 4
ROWS = 3


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """A finished WAL directory plus the two acceptable recovery states:

    ``full`` (all batches applied) and ``prev`` (the final batch torn
    away), both as canonical engine bytes.
    """
    wal_dir = tmp_path_factory.mktemp("pristine") / "wal"
    store, wal = faults.build_wal_store(wal_dir)
    faults.fill(store, N_BATCHES, ROWS)
    wal.close()
    full = codec.to_bytes(store.engine(faults.ENGINE))
    prev = codec.to_bytes(
        faults.control_after(N_BATCHES - 1, rows=ROWS)
    )
    assert full != prev, "the final batch must change the sketch"
    return wal_dir, full, prev


def damaged_copy(pristine_dir, scratch):
    if scratch.exists():
        shutil.rmtree(scratch)
    shutil.copytree(pristine_dir, scratch)
    (segment,) = list(scratch.glob("*.wal"))
    return segment


def recover_bytes(wal_dir):
    wal = WriteAheadLog(wal_dir, fsync="off")
    try:
        report = recover_store(None, wal)
    finally:
        wal.close()
    return codec.to_bytes(report.store.engine(faults.ENGINE)), report


def recover_error(wal_dir) -> str:
    with pytest.raises(WalCorruptionError) as err:
        wal = WriteAheadLog(wal_dir, fsync="off")
        try:
            recover_store(None, wal)
        finally:
            wal.close()
    return str(err.value)


class TestTornFinalRecord:
    def test_truncation_at_every_byte_offset(self, pristine, tmp_path):
        wal_dir, full, prev = pristine
        (segment,) = list(wal_dir.glob("*.wal"))
        start, end = faults.record_spans(segment)[-1]
        for cut in range(start, end):
            damaged = damaged_copy(wal_dir, tmp_path / "work")
            faults.truncate_to(damaged, cut)
            recovered, report = recover_bytes(damaged.parent)
            assert recovered == prev, f"truncated at byte {cut}"
            assert recovered != full
            # a cut exactly on the record boundary is a clean tail
            assert cut == start or report.torn_tail is not None

    def test_bit_flip_at_every_byte_offset(self, pristine, tmp_path):
        wal_dir, full, prev = pristine
        (segment,) = list(wal_dir.glob("*.wal"))
        start, end = faults.record_spans(segment)[-1]
        for offset in range(start, end):
            damaged = damaged_copy(wal_dir, tmp_path / "work")
            faults.flip_bit(damaged, offset, bit=offset % 8)
            recovered, report = recover_bytes(damaged.parent)
            # CRC framing means no flipped final record ever half-applies
            assert recovered == prev, f"bit flipped at byte {offset}"
            assert report.torn_tail is not None, f"byte {offset}"


class TestMidLogCorruption:
    def test_flips_in_earlier_records_fail_loudly(self, pristine, tmp_path):
        wal_dir, _, _ = pristine
        (segment,) = list(wal_dir.glob("*.wal"))
        spans = faults.record_spans(segment)
        for start, end in spans[:-1]:
            for offset in (start + 1, (start + end) // 2):
                damaged = damaged_copy(wal_dir, tmp_path / "work")
                faults.flip_bit(damaged, offset)
                message = recover_error(damaged.parent)
                assert "offset" in message, (
                    f"flip at {offset} lost its offset context: {message}"
                )

    def test_segment_header_damage_fails_loudly(self, pristine, tmp_path):
        wal_dir, _, _ = pristine
        for offset, expected in [
            (0, "segment magic"),  # magic
            (4, "segment version"),  # version field
            # base-LSN field: the first record is then out of sequence
            (6, "out of sequence"),
        ]:
            damaged = damaged_copy(wal_dir, tmp_path / "work")
            faults.flip_bit(damaged, offset)
            message = recover_error(damaged.parent)
            assert expected in message, f"header byte {offset}: {message}"

    def test_sealed_segment_damage_fails_loudly(self, tmp_path):
        wal_dir = tmp_path / "wal"
        store, wal = faults.build_wal_store(wal_dir, segment_bytes=256)
        faults.fill(store, 8, ROWS)
        sealed = wal.segment_paths()[0]
        assert len(wal.segment_paths()) > 1
        wal.close()
        start, end = faults.record_spans(sealed)[0]
        faults.flip_bit(sealed, (start + end) // 2)
        message = recover_error(wal_dir)
        assert "sealed segment" in message
        assert "offset" in message

    def test_missing_middle_segment_fails_loudly(self, tmp_path):
        wal_dir = tmp_path / "wal"
        store, wal = faults.build_wal_store(wal_dir, segment_bytes=256)
        faults.fill(store, 8, ROWS)
        paths = wal.segment_paths()
        assert len(paths) >= 3
        wal.close()
        paths[1].unlink()
        message = recover_error(wal_dir)
        assert "does not continue the log" in message
