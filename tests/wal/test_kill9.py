"""End-to-end crash recovery: SIGKILL a serving process, recover, compare.

A real ``python -m repro.service serve --wal-dir --fsync always``
subprocess takes acknowledged HTTP ingest batches and is then killed
with SIGKILL — no atexit, no shutdown snapshot, nothing graceful.  The
``recover`` subcommand must rebuild, from the snapshot plus the WAL
tail, exactly the state an uninterrupted in-process control reaches
from the same batches.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request

import pytest

import faults
from repro.service import codec
from repro.service.cli import main as cli_main
from repro.service.store import SketchStore

ENGINE_SPEC = {
    "name": faults.ENGINE,
    "kind": "poisson",
    "threshold": "0.05",
    "salt": "7",
    "coordinated": "1",
    "n_shards": "4",
}
N_ACKED = 7


def spec_argument() -> str:
    fields = dict(ENGINE_SPEC)
    fields["shards"] = fields.pop("n_shards")
    return ",".join(f"{key}={value}" for key, value in fields.items())


def start_server(store_path, wal_dir) -> tuple[subprocess.Popen, int]:
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "serve",
            "--store",
            str(store_path),
            "--port",
            "0",
            "--wal-dir",
            str(wal_dir),
            "--fsync",
            "always",
            "--create",
            spec_argument(),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    ready_line = process.stdout.readline()
    if not ready_line:
        process.kill()
        pytest.fail(f"server never came up: {process.stderr.read()}")
    ready = json.loads(ready_line)
    port = int(ready["listening"].rpartition(":")[2])
    assert ready["engines"] == [faults.ENGINE]
    return process, port


def post_batch(port: int, i: int) -> None:
    instance, keys, values = faults.batch(i)
    body = json.dumps(
        {
            "name": faults.ENGINE,
            "instance": instance,
            "keys": keys,
            "values": values,
        }
    ).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/ingest",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        assert response.status == 200
        payload = json.loads(response.read())
    assert payload["version"] == i + 1


def test_sigkill_then_recover_is_bit_exact(tmp_path, capsys):
    store_path = tmp_path / "store.bin"
    wal_dir = tmp_path / "wal"
    process, port = start_server(store_path, wal_dir)
    try:
        for i in range(N_ACKED):
            post_batch(port, i)
    finally:
        # fsync=always: every acknowledged batch is already durable, so
        # SIGKILL loses nothing that was acked
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)
    assert process.returncode == -signal.SIGKILL

    exit_code = cli_main(
        [
            "recover",
            "--store",
            str(store_path),
            "--wal-dir",
            str(wal_dir),
        ]
    )
    assert exit_code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["command"] == "recover"
    assert report["engines"] == [faults.ENGINE]
    # one engine-create record plus every acknowledged batch
    assert report["replayed_records"] == 1 + N_ACKED
    assert report["replayed_rows"] == N_ACKED * 5
    assert report["torn_tail"] is None

    control = SketchStore()
    control.create_from_config(
        {
            key: value
            for key, value in ENGINE_SPEC.items()
        }
    )
    faults.fill(control, N_ACKED)
    recovered = SketchStore.restore(store_path)
    assert codec.to_bytes(recovered.engine(faults.ENGINE)) == codec.to_bytes(
        control.engine(faults.ENGINE)
    )
    assert recovered.version(faults.ENGINE) == N_ACKED

    # recovery checkpointed the log: running it again replays nothing
    # and lands on the same bytes (idempotent crash loop)
    assert (
        cli_main(
            [
                "recover",
                "--store",
                str(store_path),
                "--wal-dir",
                str(wal_dir),
            ]
        )
        == 0
    )
    second = json.loads(capsys.readouterr().out)
    assert second["replayed_records"] == 0
    again = SketchStore.restore(store_path)
    assert codec.to_bytes(again.engine(faults.ENGINE)) == codec.to_bytes(
        control.engine(faults.ENGINE)
    )


def test_sigkill_mid_request_lands_on_a_batch_boundary(tmp_path, capsys):
    """Kill while a request may be in flight: every acked batch must
    survive, and the store must land on an exact batch boundary —
    never between two, whatever the race resolves to."""
    store_path = tmp_path / "store.bin"
    wal_dir = tmp_path / "wal"
    process, port = start_server(store_path, wal_dir)
    acked = 2
    try:
        for i in range(acked):
            post_batch(port, i)
        # fire one more batch and kill the server while it is (maybe)
        # still being appended / applied — the outcome is a race on
        # purpose, the recovery contract is not
        racer = threading.Thread(target=_post_quietly, args=(port, acked))
        racer.start()
    finally:
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)
    racer.join(timeout=30)

    assert (
        cli_main(
            ["recover", "--store", str(store_path), "--wal-dir", str(wal_dir)]
        )
        == 0
    )
    json.loads(capsys.readouterr().out)
    recovered = SketchStore.restore(store_path)
    version = recovered.version(faults.ENGINE)
    assert acked <= version <= acked + 1
    control = SketchStore()
    control.create_from_config(dict(ENGINE_SPEC))
    faults.fill(control, version)
    assert codec.to_bytes(recovered.engine(faults.ENGINE)) == codec.to_bytes(
        control.engine(faults.ENGINE)
    )


def _post_quietly(port: int, i: int) -> None:
    with contextlib.suppress(
        urllib.error.URLError, ConnectionError, AssertionError, OSError
    ):
        post_batch(port, i)
