"""Shard-worker crash recovery through the write-ahead log.

SIGKILL a worker mid-load: the parent must respawn the slot and replay
its un-folded WAL tail, ending bit-exact with an uninterrupted control
run — acked batches are never dropped, and the append-before-dispatch
ordering means the log always covers whatever the dead incarnation
held.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

import faults
from repro.service import codec

N_WORKERS = 2


def make_batches(n_batches: int = 12, rows: int = 300, seed: int = 9):
    generator = np.random.default_rng(seed)
    batches = []
    for instance in ("mon", "tue"):
        keys = generator.choice(
            10**7, size=n_batches * rows // 2, replace=False
        )
        values = generator.random(keys.size) * 6.0 + 0.1
        for start in range(0, keys.size, rows):
            batches.append(
                (instance, keys[start : start + rows],
                 values[start : start + rows])
            )
    return batches


def assert_respawned(store, dead_pid: int) -> None:
    """Healing is traffic-driven (a dispatch or fold notices the dead
    slot), so this checks the *outcome* after a sync read, not a
    passive wait."""
    probes = store.worker_probes()
    assert all(row["alive"] for row in probes)
    assert dead_pid not in [row["pid"] for row in probes]
    assert sum(row["restarts"] for row in probes) >= 1


class TestWorkerCrashRecovery:
    @pytest.mark.parametrize("kind", ["bottom_k", "poisson"])
    def test_sigkill_mid_load_recovers_bit_exact(self, tmp_path, kind):
        batches = make_batches()

        control = faults.build_store(kind)
        for instance, keys, values in batches:
            control.ingest(faults.ENGINE, instance, keys, values)
        control_blob = codec.to_bytes(control.engine(faults.ENGINE))

        store, wal = faults.build_wal_store(tmp_path / "wal", kind)
        store.start_workers(N_WORKERS)
        try:
            half = len(batches) // 2
            for instance, keys, values in batches[:half]:
                store.ingest(faults.ENGINE, instance, keys, values)
            victim = store.worker_probes()[0]["pid"]
            os.kill(victim, signal.SIGKILL)
            # keep loading through the crash: a dispatch or the final
            # fold notices the dead slot, respawns it, and replays the
            # WAL tail into the fresh incarnation
            for instance, keys, values in batches[half:]:
                store.ingest(faults.ENGINE, instance, keys, values)
            recovered = codec.to_bytes(
                store.engine(faults.ENGINE, sync=True)
            )
            assert_respawned(store, victim)
        finally:
            store.stop_workers()
            wal.close()
        assert recovered == control_blob

    def test_crash_between_loads_replays_acked_batches(self, tmp_path):
        """A worker killed while *idle* still loses its un-folded
        delta (acked batches live only in worker memory until a fold);
        the WAL tail replay must restore every one of them.

        The parity bar here is engine equality, not byte equality: the
        mid-run sync read makes this a multi-fold sequence, and a
        second fold merges into already-touched shards (heap insertion
        order may differ while the retained sample is identical)."""
        batches = make_batches(n_batches=6)
        control = faults.build_store("bottom_k")
        for instance, keys, values in batches:
            control.ingest(faults.ENGINE, instance, keys, values)

        store, wal = faults.build_wal_store(tmp_path / "wal", "bottom_k")
        store.start_workers(N_WORKERS)
        try:
            for instance, keys, values in batches[:-1]:
                store.ingest(faults.ENGINE, instance, keys, values)
            # quiesce: every batch above is applied and acked
            store.engine(faults.ENGINE, sync=True)
            victim = store.worker_probes()[1]["pid"]
            os.kill(victim, signal.SIGKILL)
            instance, keys, values = batches[-1]
            store.ingest(faults.ENGINE, instance, keys, values)
            recovered = store.engine(faults.ENGINE, sync=True)
            assert_respawned(store, victim)
            assert recovered == control.engine(faults.ENGINE)
        finally:
            store.stop_workers()
            wal.close()
