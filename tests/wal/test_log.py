"""Unit tests for the append-only segment log itself.

Framing, LSN discipline, rotation, checkpointing, tail shipping, fsync
policies and reopen semantics — everything below the recovery layer.
"""

from __future__ import annotations

import pytest

import faults
from repro.exceptions import InvalidParameterError, WalCorruptionError
from repro.server.wire import decode_batches
from repro.wal import (
    FSYNC_POLICIES,
    RECORD_BATCH,
    RECORD_ENGINE,
    WriteAheadLog,
    decode_tail,
)


def open_log(path, **kwargs):
    kwargs.setdefault("fsync", "off")
    return WriteAheadLog(path, **kwargs)


def append_n(wal: WriteAheadLog, n: int, start: int = 0) -> None:
    for i in range(start, start + n):
        instance, keys, values = faults.batch(i, rows=2)
        wal.append_batch("t", i + 1, instance, keys, values)


class TestFraming:
    def test_round_trip(self, tmp_path):
        wal = open_log(tmp_path)
        assert wal.append_engine("t", 0, b"engine-blob") == 1
        assert wal.append_batch("t", 1, "mon", ["a", "b"], [1.0, 2.5]) == 2
        records, torn = wal.read_all()
        wal.close()
        assert torn is None
        assert [r.lsn for r in records] == [1, 2]
        assert [r.kind for r in records] == [RECORD_ENGINE, RECORD_BATCH]
        assert [r.name for r in records] == ["t", "t"]
        assert [r.version for r in records] == [0, 1]
        assert records[0].payload == b"engine-blob"
        (batch,) = decode_batches(records[1].payload)
        assert batch.instance == "mon"
        assert list(batch.keys) == ["a", "b"]
        assert list(batch.values) == [1.0, 2.5]

    def test_lsns_are_monotone_from_one(self, tmp_path):
        wal = open_log(tmp_path)
        lsns = [
            wal.append_batch("t", i + 1, "mon", [f"k{i}"], [1.0])
            for i in range(5)
        ]
        assert lsns == [1, 2, 3, 4, 5]
        assert wal.last_lsn == 5
        wal.close()

    def test_empty_engine_name_rejected(self, tmp_path):
        wal = open_log(tmp_path)
        with pytest.raises(InvalidParameterError, match="non-empty"):
            wal.append_engine("", 0, b"x")
        wal.close()

    def test_closed_log_rejects_work(self, tmp_path):
        wal = open_log(tmp_path)
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(InvalidParameterError, match="closed"):
            wal.append_batch("t", 1, "mon", ["a"], [1.0])
        with pytest.raises(InvalidParameterError, match="closed"):
            wal.checkpoint(1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fsync": "sometimes"},
            {"fsync_interval": -0.1},
            {"segment_bytes": 10},
        ],
    )
    def test_bad_configuration_rejected(self, tmp_path, kwargs):
        with pytest.raises(InvalidParameterError):
            WriteAheadLog(tmp_path, **kwargs)


class TestRotation:
    def test_small_cap_rotates_and_preserves_order(self, tmp_path):
        wal = open_log(tmp_path, segment_bytes=256)
        append_n(wal, 12)
        paths = wal.segment_paths()
        assert len(paths) > 1
        assert paths == sorted(paths)
        records, torn = wal.read_all()
        wal.close()
        assert torn is None
        assert [r.lsn for r in records] == list(range(1, 13))

    def test_reopen_continues_the_lsn_sequence(self, tmp_path):
        wal = open_log(tmp_path, segment_bytes=256)
        append_n(wal, 7)
        wal.close()
        reopened = open_log(tmp_path, segment_bytes=256)
        assert reopened.last_lsn == 7
        assert reopened.torn_tail is None
        assert reopened.append_batch("t", 8, "mon", ["k"], [1.0]) == 8
        records, _ = reopened.read_all()
        reopened.close()
        assert [r.lsn for r in records] == list(range(1, 9))

    def test_reopen_truncates_a_torn_header(self, tmp_path):
        # crash during segment creation: the header write itself tore
        wal = open_log(tmp_path)
        wal.close()
        (path,) = list(tmp_path.glob("*.wal"))
        faults.truncate_to(path, 3)
        reopened = open_log(tmp_path)
        assert reopened.torn_tail is not None
        assert "torn segment header" in reopened.torn_tail
        assert reopened.last_lsn == 0
        assert reopened.append_batch("t", 1, "mon", ["k"], [1.0]) == 1
        records, _ = reopened.read_all()
        reopened.close()
        assert [r.lsn for r in records] == [1]

    def test_reopen_truncates_a_torn_final_record(self, tmp_path):
        wal = open_log(tmp_path)
        append_n(wal, 3)
        wal.close()
        (path,) = list(tmp_path.glob("*.wal"))
        faults.truncate_to(path, path.stat().st_size - 4)
        reopened = open_log(tmp_path)
        assert reopened.torn_tail is not None
        assert "torn tail" in reopened.torn_tail
        assert reopened.last_lsn == 2
        # the truncated slot is rewritten by the next append
        assert reopened.append_batch("t", 3, "mon", ["k"], [1.0]) == 3
        records, torn = reopened.read_all()
        reopened.close()
        assert [r.lsn for r in records] == [1, 2, 3]
        assert torn is not None

    def test_name_and_header_base_must_agree(self, tmp_path):
        wal = open_log(tmp_path)
        append_n(wal, 1)
        wal.close()
        (path,) = list(tmp_path.glob("*.wal"))
        path.rename(path.with_name("wal-00000000000000000009.wal"))
        with pytest.raises(WalCorruptionError, match="file name"):
            open_log(tmp_path)


class TestCheckpoint:
    def test_full_checkpoint_drops_covered_segments(self, tmp_path):
        wal = open_log(tmp_path, segment_bytes=256)
        append_n(wal, 10)
        before = len(wal.segment_paths())
        removed = wal.checkpoint(wal.last_lsn)
        assert removed >= 1
        assert len(wal.segment_paths()) == 1
        assert len(wal.segment_paths()) == before - removed + 1
        assert wal.checkpoint_lsn == 10
        # the covered tail is gone: a since=0 follower needs a full delta
        assert wal.tail_since(0) is None
        assert wal.tail_since(10) == (b"", 10)
        records, _ = wal.read_all()
        assert records == []
        # the log keeps appending past the checkpoint
        assert wal.append_batch("t", 11, "mon", ["k"], [1.0]) == 11
        wal.close()

    def test_partial_checkpoint_keeps_the_uncovered_tail(self, tmp_path):
        wal = open_log(tmp_path, segment_bytes=256)
        append_n(wal, 10)
        bases = [
            int(path.stem.partition("-")[2]) for path in wal.segment_paths()
        ]
        assert len(bases) >= 3, "need several sealed segments for this test"
        cutoff = bases[1] - 1  # exactly covers the first segment
        assert wal.checkpoint(cutoff) == 1
        records, _ = wal.read_all()
        assert [r.lsn for r in records] == list(range(bases[1], 11))
        # records past the cutoff are still shippable
        blob, last = wal.tail_since(cutoff)
        assert last == 10
        assert [r.lsn for r in decode_tail(blob)] == list(
            range(cutoff + 1, 11)
        )
        wal.close()


class TestTailSince:
    def test_full_tail_equals_read_all(self, tmp_path):
        wal = open_log(tmp_path, segment_bytes=256)
        append_n(wal, 9)
        blob, last = wal.tail_since(0)
        records, _ = wal.read_all()
        wal.close()
        assert last == 9
        assert decode_tail(blob) == records

    def test_cursor_skips_already_seen_records(self, tmp_path):
        wal = open_log(tmp_path)
        append_n(wal, 6)
        blob, last = wal.tail_since(4)
        wal.close()
        assert last == 6
        assert [r.lsn for r in decode_tail(blob)] == [5, 6]

    def test_negative_cursor_rejected(self, tmp_path):
        wal = open_log(tmp_path)
        with pytest.raises(InvalidParameterError, match=">= 0"):
            wal.tail_since(-1)
        wal.close()

    def test_decode_tail_is_strict(self, tmp_path):
        wal = open_log(tmp_path)
        append_n(wal, 2)
        blob, _ = wal.tail_since(0)
        wal.close()
        with pytest.raises(WalCorruptionError, match="offset"):
            decode_tail(blob[:-3])
        flipped = bytearray(blob)
        flipped[len(blob) // 2] ^= 0x10
        with pytest.raises(WalCorruptionError, match="offset"):
            decode_tail(bytes(flipped))


class TestFsyncPolicies:
    def test_policy_tuple_is_the_public_contract(self):
        assert FSYNC_POLICIES == ("always", "interval", "off")

    def test_always_fsyncs_every_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="always")
        append_n(wal, 4)
        stats = wal.stats()
        wal.close()
        assert stats["fsync_count"] >= 4
        assert stats["fsync_seconds"] > 0.0

    def test_off_never_fsyncs(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        append_n(wal, 4)
        wal.close()
        assert wal.stats()["fsync_count"] == 0

    def test_zero_interval_fsyncs_every_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="interval", fsync_interval=0.0)
        append_n(wal, 3)
        count = wal.stats()["fsync_count"]
        wal.close()
        assert count >= 3

    def test_sync_forces_an_fsync(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        append_n(wal, 1)
        wal.sync()
        wal.close()
        assert wal.stats()["fsync_count"] == 1


class TestStats:
    def test_counter_surface(self, tmp_path):
        wal = open_log(tmp_path)
        append_n(wal, 3)
        wal.note_replay(0.5, 2)
        stats = wal.stats()
        wal.close()
        assert stats["appended_records"] == 3
        assert stats["appended_bytes"] > 0
        assert stats["last_lsn"] == 3
        assert stats["checkpoint_lsn"] == 0
        assert stats["segments"] == 1
        assert stats["fsync_policy"] == "off"
        assert stats["replay_seconds"] == 0.5
        assert stats["replayed_records"] == 2
        assert stats["torn_tail"] is None
        assert stats["directory"] == str(tmp_path)
