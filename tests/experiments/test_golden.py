"""Golden-snapshot tests: the rewired experiment pipeline is
result-preserving.

The snapshots under ``tests/experiments/golden/`` were generated from the
scalar (pre-vectorization) experiment pipeline with the fast-mode
configuration; see :mod:`_golden` for the tolerance policy (figure 5 and
the impossibility table must match bit for bit, the variance figures to
1e-12 / 1e-9).
"""

from __future__ import annotations

import pytest

from _golden import TOLERANCES, assert_matches_golden

from repro.experiments.runner import FAST_KWARGS, EXPERIMENTS


@pytest.mark.parametrize("name", sorted(TOLERANCES))
def test_experiment_matches_golden(name):
    result = EXPERIMENTS[name](**FAST_KWARGS.get(name, {}))
    assert_matches_golden(name, result)
