"""Regenerate the golden experiment snapshots (fast-mode configuration).

Run from the repository root::

    PYTHONPATH=src python tests/experiments/make_golden.py

Only regenerate when an experiment's *intended* output changes; the whole
point of the snapshots is to prove that pipeline rewirings preserve
results.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _golden import save_golden  # noqa: E402

from repro.experiments.runner import run_all_experiments  # noqa: E402


def main() -> None:
    results = run_all_experiments(fast=True)
    for name, result in results.items():
        save_golden(name, result)
        print(f"wrote golden for {name}")


if __name__ == "__main__":
    main()
