"""Tests for the figure-reproduction experiment modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    run_all_experiments,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_impossibility,
)


class TestFigure1:
    def test_ratios_below_one(self):
        result = run_figure1(n_points=11)
        assert all(r <= 1.0 + 1e-9 for r in result["series"]["var_ratio_L_over_HT"])
        assert all(r <= 1.0 + 1e-9 for r in result["series"]["var_ratio_U_over_HT"])

    def test_l_best_on_identical_values(self):
        result = run_figure1(n_points=11)
        l_ratio = result["series"]["var_ratio_L_over_HT"]
        u_ratio = result["series"]["var_ratio_U_over_HT"]
        # At min/max = 1 (last grid point) L beats U; at 0 U beats L.
        assert l_ratio[-1] < u_ratio[-1]
        assert u_ratio[0] < l_ratio[0]

    def test_l_ratio_at_extremes_matches_closed_forms(self):
        result = run_figure1(n_points=3)
        l_ratio = result["series"]["var_ratio_L_over_HT"]
        assert l_ratio[0] == pytest.approx(11.0 / 27.0)
        assert l_ratio[-1] == pytest.approx(1.0 / 9.0)

    def test_estimate_tables_present(self):
        result = run_figure1(n_points=3)
        tables = result["estimate_tables_at_(1.0,0.4)"]
        assert set(tables) == {"HT", "L", "U"}
        assert tables["HT"]["S={1}"] == 0.0
        assert tables["L"]["S={1}"] > 0.0


class TestFigure2:
    def test_enumeration_matches_closed_forms(self):
        result = run_figure2(probabilities=[0.1, 0.3, 0.6])
        series = result["series"]
        assert np.allclose(series["L_(1,1)"], series["closed_form_L_(1,1)"])
        assert np.allclose(series["L_(1,0)"], series["closed_form_L_(1,0)"])
        assert np.allclose(series["HT_(1,1)"], series["closed_form_HT"])

    def test_l_and_u_dominate_ht(self):
        result = run_figure2(probabilities=[0.1, 0.3, 0.6])
        series = result["series"]
        for name in ("L", "U"):
            for data in ("(1,1)", "(1,0)"):
                assert all(
                    v <= ht + 1e-9
                    for v, ht in zip(series[f"{name}_{data}"],
                                     series[f"HT_{data}"])
                )

    def test_variance_decreasing_in_p(self):
        result = run_figure2(probabilities=[0.1, 0.3, 0.6, 0.9])
        values = result["series"]["L_(1,1)"]
        assert values == sorted(values, reverse=True)


class TestFigure3:
    def test_unbiasedness_certificate(self):
        result = run_figure3(n_grid=4)
        assert result["max_absolute_bias"] < 1e-3

    def test_determining_vector_mapping(self):
        result = run_figure3(n_grid=3)
        mapping = result["determining_vector_mapping"]
        assert mapping["S={}"] == (0.0, 0.0)
        # S = {1}: second entry is min(u2 tau2, v1) = min(0.75, 0.6) = 0.6.
        assert mapping["S={1}"] == pytest.approx((0.6, 0.6))
        assert mapping["S={1,2}"] == pytest.approx((0.6, 0.3))

    def test_estimate_table_nonnegative(self):
        result = run_figure3(n_grid=4)
        assert all(row["estimate"] >= 0.0 for row in result["estimate_table"])


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure4(rho_values=(0.5, 0.1), n_points=5, grid_size=501)

    def test_ht_variance_flat_and_matches_closed_form(self, result):
        for rho, panel in result["panels"].items():
            expected = 1.0 - rho ** 2
            assert np.allclose(panel["normalized_var_HT"], expected, atol=1e-9)

    def test_l_dominates_ht(self, result):
        for panel in result["panels"].values():
            assert all(
                l <= ht + 1e-9
                for l, ht in zip(panel["normalized_var_L"],
                                 panel["normalized_var_HT"])
            )

    def test_ratio_increases_with_similarity(self, result):
        for panel in result["panels"].values():
            ratios = panel["var_ratio_HT_over_L"]
            assert ratios[-1] > ratios[0]

    def test_ratio_at_identical_values_matches_paper(self, result):
        # At min = max the L estimator needs only one of the two samples:
        # Var[L] = rho^2 (1/(2rho - rho^2) - 1), giving the paper's
        # (1 + rho)/rho lower bound shape at this end of the curve.
        panel = result["panels"][0.5]
        rho = 0.5
        union = 2 * rho - rho ** 2
        expected = (1 - rho ** 2) / (rho ** 2 * (1 / union - 1))
        assert panel["var_ratio_HT_over_L"][-1] == pytest.approx(expected,
                                                                 rel=1e-3)


class TestFigure5:
    def test_matches_paper(self):
        result = run_figure5()
        assert result["matches_paper"]

    def test_rank_values_match_paper_table(self):
        result = run_figure5()
        ranks = result["shared_seed_ranks"]
        assert ranks[1][1] == pytest.approx(0.0147, abs=2e-4)
        assert ranks[2][4] == pytest.approx(0.046, abs=1e-3)
        assert ranks[3][5] == pytest.approx(0.0367, abs=1e-3)
        assert ranks[1][2] == float("inf")

    def test_function_rows(self):
        result = run_figure5()
        assert result["function_rows"]["max(v1,v2)"][4] == 20
        assert result["function_rows"]["RG(v1,v2,v3)"][6] == 0


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure6(n_values=(1e3, 1e5, 1e7, 1e9))

    def test_l_never_needs_more_samples(self, result):
        for panel in result["panels"].values():
            for jaccard, ratios in panel["ratio"].items():
                assert all(ratio <= 1.0 + 1e-9 for ratio in ratios)

    def test_ratio_approaches_half_for_disjoint_sets(self, result):
        panel = result["panels"][0.1]
        assert panel["ratio"][0.0][-1] == pytest.approx(0.5, abs=0.05)

    def test_identical_sets_flat_sample_size(self, result):
        panel = result["panels"][0.1]
        sizes = panel["L"][1.0]
        # The curve flattens: going from n = 1e3 to n = 1e9 changes the
        # required sample size only marginally (it converges to a constant).
        assert sizes[-1] == pytest.approx(sizes[0], rel=0.15)
        assert sizes[-1] == pytest.approx(sizes[-2], rel=0.01)

    def test_stricter_cv_needs_more_samples(self, result):
        loose = result["panels"][0.1]["L"][0.5]
        strict = result["panels"][0.02]["L"][0.5]
        assert all(s >= l for s, l in zip(strict, loose))


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure7(
            sampled_fractions=(0.02, 0.1, 0.4),
            n_keys_per_instance=600,
            total_flows=2.0e4,
            grid_size=401,
            include_point_estimates=True,
            rng_seed=3,
        )

    def test_l_dominates_ht(self, result):
        for row in result["rows"]:
            assert row["normalized_var_L"] <= row["normalized_var_HT"]

    def test_ratio_in_paper_ballpark(self, result):
        # The paper reports ratios between 2.45 and 2.7 on its traffic data;
        # the synthetic substitute should land in the same region (>= 2).
        low, high = result["ratio_range"]
        assert low >= 1.8
        assert high <= 4.0

    def test_variance_decreases_with_sampling_rate(self, result):
        variances = [row["normalized_var_L"] for row in result["rows"]]
        assert variances == sorted(variances, reverse=True)

    def test_point_estimates_reasonable(self, result):
        truth = result["true_max_dominance"]
        for row in result["rows"]:
            if row["sampled_fraction"] >= 0.1:
                assert row["point_estimate_L"] == pytest.approx(truth, rel=0.5)


class TestImpossibility:
    def test_unknown_seeds_or_infeasible_below_one(self):
        result = run_impossibility()
        for row in result["rows"]:
            if row["p1_plus_p2"] < 1.0:
                assert not row["or_unknown_seeds_feasible"]
            assert row["or_known_seeds_feasible"]
            assert not row["xor_unknown_seeds_feasible"]
            assert row["xor_known_seeds_feasible"]


class TestRunner:
    def test_run_all_fast(self):
        results = run_all_experiments(
            names=["figure1", "figure2", "figure6", "impossibility"],
        )
        assert set(results) == {"figure1", "figure2", "figure6",
                                "impossibility"}

    def test_parallel_equals_serial(self):
        names = ["figure1", "figure2", "figure5"]
        serial = run_all_experiments(names=names, parallel=False)
        parallel = run_all_experiments(names=names, parallel=True)
        assert serial == parallel

    def test_timings_collected(self):
        timings: dict[str, float] = {}
        run_all_experiments(names=["figure1", "figure5"], timings=timings)
        assert set(timings) == {"figure1", "figure5"}
        assert all(t >= 0.0 for t in timings.values())

    def test_verbose_report(self, capsys):
        run_all_experiments(names=["figure5"], verbose=True)
        out = capsys.readouterr().out
        assert "figure5" in out and "total" in out
