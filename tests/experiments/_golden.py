"""Golden-snapshot helpers for the experiment suite.

The experiment functions are deterministic for a fixed seed, so their
outputs can be pinned: ``tests/experiments/golden/<name>.json`` stores the
canonicalised output of each experiment under the fast-mode configuration
used by :func:`repro.experiments.run_all_experiments`.  The snapshots were
generated from the scalar (pre-vectorization) experiment pipeline, so the
golden test proves the vectorized rewiring is result-preserving.

Regenerate (only when an experiment's *intended* output changes) with::

    PYTHONPATH=src python tests/experiments/make_golden.py

Comparison tolerances: exact structural outputs (figure 5, the
impossibility table) are pinned bit for bit (``rel=0.0``).  The
exact-enumeration figures (1 and 2) are pinned at ``1e-12``: the rewired
scalar reference squares with the exactly-rounded ``x * x`` instead of
libm ``x ** 2`` (at most one ulp apart), and the vectorized engine matches
the *current* scalar path bit for bit (asserted directly by
``tests/exact``).  Figures whose pipeline merely reorders floating-point
reductions (vectorised bisection, deduplicated variance sums, batched
integration) are pinned at ``1e-9``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: Per-experiment relative tolerance; 0.0 means bit-identical floats.
TOLERANCES: dict[str, float] = {
    "figure1": 1e-12,
    "figure2": 1e-12,
    "figure3": 1e-9,
    "figure4": 1e-9,
    "figure5": 0.0,
    "figure6": 1e-9,
    "figure7": 1e-9,
    "impossibility": 0.0,
}


def canonicalize(obj):
    """Map an experiment result to a JSON-stable structure.

    Dict keys become strings, sets become sorted lists, tuples become
    lists, and NumPy scalars/arrays become Python numbers/lists.  The
    mapping is deterministic, so canonical forms of equal results compare
    equal.
    """
    if isinstance(obj, dict):
        return {str(key): canonicalize(value) for key, value in obj.items()}
    if isinstance(obj, (set, frozenset)):
        return sorted(canonicalize(value) for value in obj)
    if isinstance(obj, (list, tuple)):
        return [canonicalize(value) for value in obj]
    if isinstance(obj, np.ndarray):
        return canonicalize(obj.tolist())
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    return obj


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def save_golden(name: str, result) -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    with golden_path(name).open("w") as handle:
        json.dump(canonicalize(result), handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_golden(name: str):
    with golden_path(name).open() as handle:
        return json.load(handle)


def assert_matches_golden(name: str, result) -> None:
    """Compare a fresh experiment result against its pinned snapshot."""
    expected = load_golden(name)
    actual = canonicalize(result)
    mismatches: list[str] = []
    _compare(expected, actual, TOLERANCES[name], name, mismatches)
    assert not mismatches, (
        f"{len(mismatches)} mismatches vs golden '{name}':\n"
        + "\n".join(mismatches[:20])
    )


def _compare(expected, actual, rel: float, path: str, out: list[str]) -> None:
    if isinstance(expected, dict):
        if not isinstance(actual, dict) or set(expected) != set(actual):
            out.append(f"{path}: key sets differ")
            return
        for key in expected:
            _compare(expected[key], actual[key], rel, f"{path}.{key}", out)
        return
    if isinstance(expected, list):
        if not isinstance(actual, list) or len(expected) != len(actual):
            out.append(f"{path}: lengths differ")
            return
        for index, (e, a) in enumerate(zip(expected, actual)):
            _compare(e, a, rel, f"{path}[{index}]", out)
        return
    if isinstance(expected, float) or isinstance(actual, float):
        e, a = float(expected), float(actual)
        if math.isnan(e) or math.isnan(a):
            ok = math.isnan(e) and math.isnan(a)
        elif math.isinf(e) or math.isinf(a):
            ok = e == a
        elif rel == 0.0:
            ok = e == a
        else:
            ok = abs(e - a) <= rel * max(abs(e), abs(a)) + 1e-300
        if not ok:
            out.append(f"{path}: {e!r} != {a!r} (rel={rel})")
        return
    if expected != actual:
        out.append(f"{path}: {expected!r} != {actual!r}")
