"""Tests for the dispersed-vector sampling schemes."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.sampling.dispersed import ObliviousPoissonScheme, PpsPoissonScheme


class TestObliviousPoissonScheme:
    def test_enumeration_probabilities_sum_to_one(self, skewed_scheme):
        total = sum(p for _, p in skewed_scheme.iter_outcomes((3.0, 1.0)))
        assert total == pytest.approx(1.0)

    def test_enumeration_has_all_subsets(self, half_scheme):
        outcomes = list(half_scheme.iter_outcomes((1.0, 2.0)))
        sampled_sets = {o.sampled for o, _ in outcomes}
        assert sampled_sets == {
            frozenset(), frozenset({0}), frozenset({1}), frozenset({0, 1})
        }

    def test_outcome_probability_consistent_with_enumeration(self, skewed_scheme):
        values = (4.0, 0.0)
        for outcome, probability in skewed_scheme.iter_outcomes(values):
            assert skewed_scheme.outcome_probability(outcome, values) == \
                pytest.approx(probability)

    def test_sample_respects_explicit_seeds(self, skewed_scheme):
        outcome = skewed_scheme.sample((2.0, 3.0), seeds=(0.29, 0.71))
        assert outcome.sampled == frozenset({0})

    def test_sample_many_frequencies(self, skewed_scheme, rng):
        mask = skewed_scheme.sample_many((1.0, 1.0), 50_000, rng=rng)
        frequencies = mask.mean(axis=0)
        assert frequencies[0] == pytest.approx(0.3, abs=0.01)
        assert frequencies[1] == pytest.approx(0.7, abs=0.01)

    def test_dimension_mismatch(self, half_scheme):
        with pytest.raises(InvalidParameterError):
            half_scheme.sample((1.0, 2.0, 3.0), rng=0)

    def test_invalid_probability(self):
        with pytest.raises(InvalidParameterError):
            ObliviousPoissonScheme((0.5, 1.5))

    def test_inclusion_probability(self, skewed_scheme):
        assert skewed_scheme.inclusion_probability(1) == 0.7


class TestPpsPoissonScheme:
    def test_inclusion_probability(self, pps_scheme):
        assert pps_scheme.inclusion_probability(0, 5.0) == pytest.approx(0.5)
        assert pps_scheme.inclusion_probability(0, 25.0) == 1.0

    def test_zero_value_never_sampled(self, pps_scheme, rng):
        for _ in range(50):
            outcome = pps_scheme.sample((0.0, 8.0), rng=rng)
            assert 0 not in outcome.sampled

    def test_known_seeds_in_outcome(self, pps_scheme):
        outcome = pps_scheme.sample((5.0, 3.0), rng=0)
        assert outcome.knows_seeds
        assert set(outcome.seeds) == {0, 1}

    def test_unknown_seed_mode(self):
        scheme = PpsPoissonScheme((10.0, 10.0), known_seeds=False)
        outcome = scheme.sample((5.0, 3.0), rng=0)
        assert not outcome.knows_seeds

    def test_explicit_seeds_deterministic(self, pps_scheme):
        outcome = pps_scheme.sample((5.0, 3.0), seeds=(0.49, 0.31))
        assert outcome.sampled == frozenset({0})
        outcome = pps_scheme.sample((5.0, 3.0), seeds=(0.51, 0.29))
        assert outcome.sampled == frozenset({1})

    def test_sample_many_matches_marginals(self, pps_scheme, rng):
        mask, _ = pps_scheme.sample_many((5.0, 2.0), 50_000, rng=rng)
        frequencies = mask.mean(axis=0)
        assert frequencies[0] == pytest.approx(0.5, abs=0.01)
        assert frequencies[1] == pytest.approx(0.2, abs=0.01)

    def test_negative_values_rejected(self, pps_scheme):
        with pytest.raises(InvalidParameterError):
            pps_scheme.sample((-1.0, 2.0), rng=0)

    def test_invalid_threshold(self):
        with pytest.raises(InvalidParameterError):
            PpsPoissonScheme((0.0, 1.0))
