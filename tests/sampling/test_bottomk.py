"""Tests for bottom-k / priority sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.sampling.bottomk import bottom_k_sample, priority_sample
from repro.sampling.ranks import ExpRanks, PpsRanks
from repro.sampling.seeds import SeedAssigner

VALUES = {f"k{i}": float((i % 7) + 1) for i in range(60)}


class TestBottomK:
    def test_sample_size(self):
        sample = bottom_k_sample(VALUES, k=10, rng=0)
        assert len(sample) == 10

    def test_threshold_is_k_plus_first_rank(self):
        sample = bottom_k_sample(VALUES, k=10, rng=1)
        assert all(rank < sample.threshold for rank in sample.ranks.values())

    def test_zero_values_never_sampled(self):
        values = dict(VALUES)
        values["zero"] = 0.0
        for seed in range(5):
            sample = bottom_k_sample(values, k=10, rng=seed)
            assert "zero" not in sample

    def test_fewer_positive_keys_than_k(self):
        sample = bottom_k_sample({"a": 1.0, "b": 2.0}, k=10, rng=0)
        assert sample.keys == {"a", "b"}
        assert np.isinf(sample.threshold)
        assert sample.conditional_inclusion_probability("a") == 1.0

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            bottom_k_sample(VALUES, k=0)

    def test_known_seeds_reproducible(self):
        seeds = SeedAssigner(salt=8)
        a = bottom_k_sample(VALUES, k=10, seed_assigner=seeds, instance=1)
        b = bottom_k_sample(VALUES, k=10, seed_assigner=seeds, instance=1)
        assert a.keys == b.keys

    def test_rank_conditioning_total_unbiased_exp_ranks(self, rng):
        total = sum(VALUES.values())
        estimates = [
            bottom_k_sample(
                VALUES, k=15, rank_family=ExpRanks(), rng=rng
            ).rank_conditioning_total()
            for _ in range(600)
        ]
        assert np.mean(estimates) == pytest.approx(total, rel=0.05)

    def test_conditional_probability_requires_sampled_key(self):
        sample = bottom_k_sample(VALUES, k=5, rng=2)
        missing = next(key for key in VALUES if key not in sample)
        with pytest.raises(InvalidParameterError):
            sample.conditional_inclusion_probability(missing)


class TestPrioritySampling:
    def test_uses_pps_ranks(self):
        sample = priority_sample(VALUES, k=10, rng=0)
        assert isinstance(sample.rank_family, PpsRanks)

    def test_priority_total_unbiased(self, rng):
        total = sum(VALUES.values())
        estimates = [
            priority_sample(VALUES, k=15, rng=rng).priority_total()
            for _ in range(600)
        ]
        assert np.mean(estimates) == pytest.approx(total, rel=0.05)

    def test_priority_total_rejected_for_exp_ranks(self):
        sample = bottom_k_sample(VALUES, k=5, rank_family=ExpRanks(), rng=0)
        with pytest.raises(InvalidParameterError):
            sample.priority_total()

    def test_subset_predicate(self):
        sample = priority_sample(VALUES, k=len(VALUES), rng=3)
        total = sample.priority_total(predicate=lambda key: key.endswith("1"))
        expected = sum(v for k, v in VALUES.items() if k.endswith("1"))
        assert total == pytest.approx(expected)
