"""Tests for the VectorOutcome container."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidOutcomeError
from repro.sampling.outcomes import VectorOutcome


class TestVectorOutcome:
    def test_from_vector(self):
        outcome = VectorOutcome.from_vector((3.0, 5.0, 1.0), {0, 2})
        assert outcome.r == 3
        assert outcome.sampled == frozenset({0, 2})
        assert outcome.values == {0: 3.0, 2: 1.0}
        assert not outcome.knows_seeds

    def test_empty_and_full(self):
        empty = VectorOutcome.from_vector((1.0, 2.0), set())
        full = VectorOutcome.from_vector((1.0, 2.0), {0, 1})
        assert empty.is_empty and not empty.is_full
        assert full.is_full and not full.is_empty

    def test_max_sampled(self):
        outcome = VectorOutcome.from_vector((3.0, 5.0), {0})
        assert outcome.max_sampled() == 3.0
        assert VectorOutcome.from_vector((3.0, 5.0), set()).max_sampled() == 0.0

    def test_sampled_values_sorted_by_index(self):
        outcome = VectorOutcome.from_vector((3.0, 5.0, 1.0), {2, 0})
        assert outcome.sampled_values() == [3.0, 1.0]

    def test_value_or_none(self):
        outcome = VectorOutcome.from_vector((3.0, 5.0), {1})
        assert outcome.value_or_none(1) == 5.0
        assert outcome.value_or_none(0) is None

    def test_seeds_from_list(self):
        outcome = VectorOutcome.from_vector((3.0, 5.0), {0}, seeds=[0.1, 0.9])
        assert outcome.knows_seeds
        assert outcome.seed_of(1) == 0.9

    def test_seed_of_without_seeds_raises(self):
        outcome = VectorOutcome.from_vector((3.0, 5.0), {0})
        with pytest.raises(InvalidOutcomeError):
            outcome.seed_of(0)

    def test_invalid_dimension(self):
        with pytest.raises(InvalidOutcomeError):
            VectorOutcome(r=0, sampled=frozenset())

    def test_sampled_index_out_of_range(self):
        with pytest.raises(InvalidOutcomeError):
            VectorOutcome(r=2, sampled=frozenset({5}), values={5: 1.0})

    def test_sampled_index_without_value(self):
        with pytest.raises(InvalidOutcomeError):
            VectorOutcome(r=2, sampled=frozenset({0}), values={})

    def test_value_for_unsampled_index(self):
        with pytest.raises(InvalidOutcomeError):
            VectorOutcome(r=2, sampled=frozenset({0}),
                          values={0: 1.0, 1: 2.0})

    def test_partial_seed_dictionary_rejected(self):
        with pytest.raises(InvalidOutcomeError):
            VectorOutcome(
                r=2, sampled=frozenset({0}), values={0: 1.0}, seeds={0: 0.5}
            )

    def test_hashable_frozen(self):
        outcome = VectorOutcome.from_vector((1.0, 2.0), {0})
        with pytest.raises(AttributeError):
            outcome.r = 5
