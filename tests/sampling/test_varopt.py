"""Tests for VarOpt sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.sampling.varopt import varopt_sample, varopt_threshold


VALUES = {f"k{i}": float(i % 11 + 1) for i in range(40)}


class TestVarOptThreshold:
    def test_threshold_zero_when_everything_fits(self):
        assert varopt_threshold(np.array([1.0, 2.0, 3.0]), k=5) == 0.0

    def test_threshold_satisfies_expected_size(self):
        values = np.array([10.0, 8.0, 1.0, 1.0, 1.0, 1.0])
        k = 3
        tau = varopt_threshold(values, k)
        expected = float(np.sum(np.minimum(1.0, values / tau)))
        assert expected == pytest.approx(k, abs=1e-9)

    def test_uniform_values(self):
        values = np.ones(10)
        tau = varopt_threshold(values, k=4)
        assert float(np.sum(np.minimum(1.0, values / tau))) == pytest.approx(4)


class TestVarOptSample:
    def test_fixed_sample_size(self):
        for seed in range(5):
            sample = varopt_sample(VALUES, k=12, rng=seed)
            assert len(sample) == 12

    def test_all_kept_when_k_large(self):
        sample = varopt_sample(VALUES, k=1000, rng=0)
        assert len(sample) == len(VALUES)
        assert sample.total() == pytest.approx(sum(VALUES.values()))

    def test_adjusted_weights_at_least_threshold(self):
        sample = varopt_sample(VALUES, k=10, rng=1)
        for weight in sample.adjusted_weights.values():
            assert weight >= sample.threshold - 1e-9

    def test_total_estimate_approximately_unbiased(self, rng):
        total = sum(VALUES.values())
        estimates = [
            varopt_sample(VALUES, k=12, rng=rng).total() for _ in range(800)
        ]
        assert np.mean(estimates) == pytest.approx(total, rel=0.05)

    def test_zero_values_ignored(self):
        values = dict(VALUES)
        values["zero"] = 0.0
        sample = varopt_sample(values, k=10, rng=2)
        assert "zero" not in sample

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            varopt_sample(VALUES, k=0)

    def test_negative_values_rejected(self):
        with pytest.raises(InvalidParameterError):
            varopt_sample({"a": -3.0}, k=1)

    def test_inclusion_probability_of(self):
        sample = varopt_sample(VALUES, k=10, rng=3)
        if sample.threshold > 0:
            assert sample.inclusion_probability_of(
                sample.threshold / 2.0
            ) == pytest.approx(0.5)
        assert sample.inclusion_probability_of(1e12) == 1.0
