"""Tests for single-instance Poisson sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.sampling.poisson import (
    poisson_pps_sample,
    poisson_uniform_sample,
    poisson_weighted_sample,
)
from repro.sampling.ranks import ExpRanks
from repro.sampling.seeds import SeedAssigner

VALUES = {f"key{i}": float(i) for i in range(1, 51)}


class TestUniformPoisson:
    def test_known_seeds_deterministic(self):
        seeds = SeedAssigner(salt=4)
        a = poisson_uniform_sample(VALUES, 0.5, seed_assigner=seeds, instance=1)
        b = poisson_uniform_sample(VALUES, 0.5, seed_assigner=seeds, instance=1)
        assert a.entries == b.entries

    def test_inclusion_probability_recorded(self):
        sample = poisson_uniform_sample(VALUES, 0.3, rng=0)
        for probability in sample.inclusion_probabilities.values():
            assert probability == 0.3

    def test_sample_size_concentrates(self):
        seeds = SeedAssigner(salt=10)
        values = {i: 1.0 for i in range(5000)}
        sample = poisson_uniform_sample(values, 0.2, seed_assigner=seeds)
        assert 800 <= len(sample) <= 1200

    def test_ht_total_unbiased(self, rng):
        total = sum(VALUES.values())
        estimates = []
        for _ in range(400):
            sample = poisson_uniform_sample(VALUES, 0.4, rng=rng)
            estimates.append(sample.horvitz_thompson_total())
        assert np.mean(estimates) == pytest.approx(total, rel=0.05)

    def test_invalid_probability_rejected(self):
        with pytest.raises(InvalidParameterError):
            poisson_uniform_sample(VALUES, 0.0)

    def test_seed_of_requires_known_seeds(self):
        sample = poisson_uniform_sample(VALUES, 0.3, rng=1)
        with pytest.raises(InvalidParameterError):
            sample.seed_of("key1")

    def test_predicate_subset_sum(self):
        seeds = SeedAssigner(salt=2)
        sample = poisson_uniform_sample(VALUES, 1.0, seed_assigner=seeds)
        even_total = sample.horvitz_thompson_total(
            predicate=lambda key: int(key[3:]) % 2 == 0
        )
        assert even_total == pytest.approx(
            sum(v for k, v in VALUES.items() if int(k[3:]) % 2 == 0)
        )


class TestWeightedPoisson:
    def test_zero_values_never_sampled(self):
        values = {"a": 0.0, "b": 5.0}
        sample = poisson_pps_sample(values, threshold=10.0, rng=0)
        assert "a" not in sample

    def test_pps_inclusion_probability(self):
        sample = poisson_pps_sample(VALUES, threshold=0.01, rng=0)
        for key, probability in sample.inclusion_probabilities.items():
            assert probability == pytest.approx(min(1.0, VALUES[key] * 0.01))

    def test_expected_size_parameter(self):
        seeds = SeedAssigner(salt=123)
        sample = poisson_pps_sample(
            VALUES, expected_size=10, seed_assigner=seeds
        )
        # Expected size 10; allow generous slack for a single draw.
        assert 3 <= len(sample) <= 20

    def test_requires_exactly_one_size_parameter(self):
        with pytest.raises(InvalidParameterError):
            poisson_pps_sample(VALUES)
        with pytest.raises(InvalidParameterError):
            poisson_pps_sample(VALUES, threshold=0.1, expected_size=5)

    def test_ht_total_unbiased(self, rng):
        total = sum(VALUES.values())
        estimates = []
        for _ in range(400):
            sample = poisson_pps_sample(VALUES, threshold=0.02, rng=rng)
            estimates.append(sample.horvitz_thompson_total())
        assert np.mean(estimates) == pytest.approx(total, rel=0.05)

    def test_exp_ranks_weighted_sampling(self, rng):
        sample = poisson_weighted_sample(
            VALUES, rank_family=ExpRanks(), threshold=0.05, rng=rng
        )
        for key, probability in sample.inclusion_probabilities.items():
            expected = 1.0 - np.exp(-VALUES[key] * 0.05)
            assert probability == pytest.approx(expected)

    def test_negative_values_rejected(self):
        with pytest.raises(InvalidParameterError):
            poisson_pps_sample({"a": -1.0}, threshold=1.0)

    def test_inclusion_probability_of_unsampled_value(self):
        sample = poisson_pps_sample(VALUES, threshold=0.01, rng=3)
        assert sample.inclusion_probability_of("anything", 25.0) == \
            pytest.approx(0.25)
