"""Tests for hash-based seed assignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.seeds import SeedAssigner, splitmix64, uniform_from_uint64


class TestSplitMix:
    def test_deterministic(self):
        values = np.arange(10, dtype=np.uint64)
        assert np.array_equal(splitmix64(values), splitmix64(values))

    def test_distinct_inputs_give_distinct_outputs(self):
        values = np.arange(1000, dtype=np.uint64)
        hashed = splitmix64(values)
        assert len(np.unique(hashed)) == 1000

    def test_uniform_range(self):
        values = splitmix64(np.arange(10_000, dtype=np.uint64))
        uniforms = uniform_from_uint64(values)
        assert np.all(uniforms > 0.0)
        assert np.all(uniforms < 1.0)

    def test_uniform_mean_near_half(self):
        values = splitmix64(np.arange(50_000, dtype=np.uint64))
        uniforms = uniform_from_uint64(values)
        assert abs(float(np.mean(uniforms)) - 0.5) < 0.01


class TestSeedAssigner:
    def test_seed_in_unit_interval(self):
        seeds = SeedAssigner(salt=1)
        for key in ["a", 17, ("x", 2)]:
            value = seeds.seed(key, instance="i")
            assert 0.0 < value < 1.0

    def test_reproducible(self):
        a = SeedAssigner(salt=3)
        b = SeedAssigner(salt=3)
        assert a.seed("key", instance=2) == b.seed("key", instance=2)

    def test_salt_changes_seeds(self):
        a = SeedAssigner(salt=1)
        b = SeedAssigner(salt=2)
        keys = list(range(100))
        different = sum(
            1 for k in keys if a.seed(k) != b.seed(k)
        )
        assert different == 100

    def test_independent_instances_differ(self):
        seeds = SeedAssigner(salt=0, coordinated=False)
        keys = list(range(200))
        u1 = seeds.seeds(keys, instance=1)
        u2 = seeds.seeds(keys, instance=2)
        assert not np.allclose(u1, u2)

    def test_coordinated_instances_share_seeds(self):
        seeds = SeedAssigner(salt=0, coordinated=True)
        keys = list(range(200))
        u1 = seeds.seeds(keys, instance=1)
        u2 = seeds.seeds(keys, instance="another")
        assert np.array_equal(u1, u2)

    def test_vectorised_matches_scalar(self):
        seeds = SeedAssigner(salt=5)
        keys = [3, 99, 1234567]
        vector = seeds.seeds(keys, instance="x")
        scalars = [seeds.seed(k, instance="x") for k in keys]
        assert np.allclose(vector, scalars)

    def test_vectorised_matches_scalar_for_string_keys(self):
        seeds = SeedAssigner(salt=5)
        keys = ["alpha", "beta", "gamma"]
        vector = seeds.seeds(keys, instance=0)
        scalars = [seeds.seed(k, instance=0) for k in keys]
        assert np.allclose(vector, scalars)

    def test_seed_map(self):
        seeds = SeedAssigner(salt=2)
        mapping = seeds.seed_map(["a", "b"], instance=1)
        assert set(mapping) == {"a", "b"}
        assert mapping["a"] == seeds.seed("a", instance=1)

    def test_seeds_approximately_uniform(self):
        seeds = SeedAssigner(salt=11)
        values = seeds.seeds(list(range(20_000)), instance=0)
        assert abs(float(values.mean()) - 0.5) < 0.01
        assert abs(float(np.mean(values < 0.25)) - 0.25) < 0.02

    @pytest.mark.parametrize("instance", [0, "hour1", ("a", 1)])
    def test_arbitrary_instance_labels(self, instance):
        seeds = SeedAssigner(salt=9)
        assert 0.0 < seeds.seed("k", instance=instance) < 1.0
