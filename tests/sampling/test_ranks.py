"""Tests for the PPS and exponential rank families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.ranks import (
    ExpRanks,
    PpsRanks,
    UniformRanks,
    poisson_threshold_for_expected_size,
)


class TestPpsRanks:
    def test_rank_is_seed_over_value(self):
        ranks = PpsRanks()
        assert ranks.rank(4.0, 0.2) == pytest.approx(0.05)

    def test_zero_value_gets_infinite_rank(self):
        ranks = PpsRanks()
        assert np.isinf(ranks.rank(0.0, 0.3))

    def test_cdf_is_clipped_probability(self):
        ranks = PpsRanks()
        assert ranks.cdf(2.0, 0.25) == pytest.approx(0.5)
        assert ranks.cdf(2.0, 3.0) == pytest.approx(1.0)
        assert ranks.cdf(2.0, 0.0) == pytest.approx(0.0)

    def test_inclusion_probability_proportional_to_size(self):
        ranks = PpsRanks()
        tau = 0.01
        assert ranks.inclusion_probability(30.0, tau) == pytest.approx(0.3)
        assert ranks.inclusion_probability(60.0, tau) == pytest.approx(0.6)

    def test_inverse_cdf_round_trip(self):
        ranks = PpsRanks()
        value, quantile = 5.0, 0.4
        x = ranks.inverse_cdf(value, quantile)
        assert ranks.cdf(value, x) == pytest.approx(quantile)

    def test_vectorised(self):
        ranks = PpsRanks()
        values = np.array([1.0, 2.0, 0.0])
        seeds = np.array([0.5, 0.5, 0.5])
        result = ranks.rank(values, seeds)
        assert result[0] == pytest.approx(0.5)
        assert result[1] == pytest.approx(0.25)
        assert np.isinf(result[2])


class TestUniformRanks:
    def test_rank_is_the_seed(self):
        ranks = UniformRanks()
        assert ranks.rank(4.0, 0.2) == pytest.approx(0.2)
        assert ranks.rank(400.0, 0.2) == pytest.approx(0.2)

    def test_zero_value_gets_infinite_rank(self):
        ranks = UniformRanks()
        assert np.isinf(ranks.rank(0.0, 0.3))

    def test_cdf_is_value_oblivious_probability(self):
        ranks = UniformRanks()
        assert ranks.cdf(2.0, 0.25) == pytest.approx(0.25)
        assert ranks.cdf(999.0, 0.25) == pytest.approx(0.25)
        assert ranks.cdf(2.0, 3.0) == pytest.approx(1.0)
        assert ranks.cdf(0.0, 0.25) == pytest.approx(0.0)

    def test_inverse_cdf_round_trip(self):
        ranks = UniformRanks()
        assert ranks.inverse_cdf(5.0, 0.4) == pytest.approx(0.4)
        assert np.isinf(ranks.inverse_cdf(0.0, 0.4))

    def test_vectorised(self):
        ranks = UniformRanks()
        values = np.array([1.0, 2.0, 0.0])
        seeds = np.array([0.5, 0.3, 0.5])
        result = ranks.rank(values, seeds)
        assert result[0] == pytest.approx(0.5)
        assert result[1] == pytest.approx(0.3)
        assert np.isinf(result[2])


class TestExpRanks:
    def test_rank_matches_inverse_cdf(self):
        ranks = ExpRanks()
        assert ranks.rank(2.0, 0.5) == pytest.approx(-np.log(0.5) / 2.0)

    def test_cdf(self):
        ranks = ExpRanks()
        assert ranks.cdf(2.0, 1.0) == pytest.approx(1.0 - np.exp(-2.0))
        assert ranks.cdf(0.0, 1.0) == pytest.approx(0.0)

    def test_zero_value_never_sampled(self):
        ranks = ExpRanks()
        assert np.isinf(ranks.rank(0.0, 0.9))

    def test_min_rank_distribution_is_exponential_in_total(self, rng):
        # The minimum of EXP[w_i] ranks is EXP[sum w_i]; check the mean.
        ranks = ExpRanks()
        weights = np.array([1.0, 2.0, 3.0])
        n_trials = 20_000
        minima = np.empty(n_trials)
        for i in range(n_trials):
            seeds = rng.random(3)
            minima[i] = np.min(ranks.rank(weights, seeds))
        assert float(np.mean(minima)) == pytest.approx(1.0 / 6.0, rel=0.05)


class TestThresholdSolver:
    def test_expected_size_matches(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 10.0])
        for family in (PpsRanks(), ExpRanks()):
            tau = poisson_threshold_for_expected_size(family, values, 2.5)
            size = float(np.sum(family.cdf(values, tau)))
            assert size == pytest.approx(2.5, abs=1e-6)

    def test_zero_expected_size(self):
        tau = poisson_threshold_for_expected_size(
            PpsRanks(), np.array([1.0, 2.0]), 0.0
        )
        assert tau == 0.0

    def test_full_sample_gives_infinite_threshold(self):
        tau = poisson_threshold_for_expected_size(
            PpsRanks(), np.array([1.0, 2.0]), 2.0
        )
        assert np.isinf(tau)
