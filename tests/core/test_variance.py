"""Tests for the variance utilities and closed forms."""

from __future__ import annotations

import pytest

from repro.core.max_oblivious import MaxObliviousHT
from repro.core.variance import (
    exact_moments,
    exact_variance,
    figure1_max_ht_variance,
    figure1_max_l_variance,
    figure1_max_u_variance,
    ht_max_oblivious_variance,
    or_ht_variance,
    or_l_variance,
    or_u_variance,
)
from repro.sampling.dispersed import ObliviousPoissonScheme


class TestExactMoments:
    def test_zero_data_zero_moments(self, half_scheme):
        estimator = MaxObliviousHT((0.5, 0.5))
        mean, variance = exact_moments(estimator, half_scheme, (0.0, 0.0))
        assert mean == 0.0
        assert variance == 0.0

    def test_matches_ht_closed_form(self):
        probabilities = (0.2, 0.9)
        scheme = ObliviousPoissonScheme(probabilities)
        estimator = MaxObliviousHT(probabilities)
        values = (4.0, 7.0)
        assert exact_variance(estimator, scheme, values) == pytest.approx(
            ht_max_oblivious_variance(values, probabilities)
        )

    def test_variance_clamped_nonnegative_near_p_one(self):
        # Regression: the unclamped second_moment - mean**2 is a tiny
        # negative here (catastrophic cancellation as p -> 1).
        from repro.core.max_oblivious import MaxObliviousL

        p = 0.9999999999998703
        scheme = ObliviousPoissonScheme((p, p))
        estimator = MaxObliviousL((p, p))
        mean, variance = exact_moments(
            estimator, scheme, (255.9939, 260.0054)
        )
        assert mean == pytest.approx(260.0054)
        assert variance == 0.0

    def test_variance_zero_at_p_one(self):
        scheme = ObliviousPoissonScheme((1.0, 1.0))
        estimator = MaxObliviousHT((1.0, 1.0))
        assert exact_moments(estimator, scheme, (2.0, 6.0)) == (6.0, 0.0)


class TestOrVarianceClosedForms:
    def test_or_ht(self):
        assert or_ht_variance((0.5, 0.5)) == pytest.approx(3.0)
        assert or_ht_variance((1.0, 1.0)) == 0.0

    def test_or_l_zero_data(self):
        assert or_l_variance(0.5, 0.5, (0, 0)) == 0.0

    def test_or_l_symmetric_under_swap(self):
        assert or_l_variance(0.3, 0.7, (1, 0)) == pytest.approx(
            or_l_variance(0.7, 0.3, (0, 1))
        )

    def test_or_l_less_than_ht(self):
        for p in (0.1, 0.4, 0.8):
            assert or_l_variance(p, p, (1, 1)) <= or_ht_variance((p, p))
            assert or_l_variance(p, p, (1, 0)) <= or_ht_variance((p, p)) + 1e-12

    def test_or_u_matches_paper_minimum_on_disjoint_data(self):
        # OR^(U) achieves the minimum possible variance 1/p - 1 on (1, 0)
        # when p1 + p2 >= 1.
        p = 0.5
        assert or_u_variance(p, p, (1, 0)) == pytest.approx(1.0 / p - 1.0)

    def test_or_l_invalid_data(self):
        with pytest.raises(ValueError):
            or_l_variance(0.5, 0.5, (2, 0))


class TestFigure1ClosedForms:
    def test_values_at_extremes(self):
        assert figure1_max_ht_variance(1.0, 0.0) == pytest.approx(3.0)
        assert figure1_max_l_variance(1.0, 1.0) == pytest.approx(1.0 / 3.0)
        assert figure1_max_l_variance(1.0, 0.0) == pytest.approx(11.0 / 9.0)
        assert figure1_max_u_variance(1.0, 0.0) == pytest.approx(1.0)
        assert figure1_max_u_variance(1.0, 1.0) == pytest.approx(1.0)

    def test_l_and_u_below_ht_everywhere(self):
        for ratio in (0.0, 0.25, 0.5, 0.75, 1.0):
            ht = figure1_max_ht_variance(1.0, ratio)
            assert figure1_max_l_variance(1.0, ratio) <= ht
            assert figure1_max_u_variance(1.0, ratio) <= ht

    def test_symmetry(self):
        assert figure1_max_l_variance(2.0, 5.0) == pytest.approx(
            figure1_max_l_variance(5.0, 2.0)
        )
        assert figure1_max_u_variance(2.0, 5.0) == pytest.approx(
            figure1_max_u_variance(5.0, 2.0)
        )
