"""Tests for the generic Algorithm 1 derivation engine."""

from __future__ import annotations

import itertools

import pytest

from repro.core.max_oblivious import MaxObliviousL
from repro.core.order_based import DiscreteModel, OrderBasedDeriver
from repro.core.variance import exact_moments
from repro.exceptions import EstimatorDerivationError, InvalidParameterError
from repro.sampling.dispersed import ObliviousPoissonScheme
from repro.sampling.outcomes import VectorOutcome


def oblivious_model(probabilities, values_per_entry):
    """Discrete model for weight-oblivious Poisson sampling over a finite
    value grid."""
    scheme = ObliviousPoissonScheme(probabilities)
    vectors = list(itertools.product(values_per_entry,
                                     repeat=len(probabilities)))
    return scheme, DiscreteModel.from_scheme(scheme, vectors)


def l_order_key(vector):
    """The max^(L) order: 0 first, then by the number of entries strictly
    below the maximum."""
    if all(v == 0 for v in vector):
        return (-1, 0)
    below_max = sum(1 for v in vector if v < max(vector))
    return (0, below_max)


class TestDiscreteModel:
    def test_probabilities_validated(self):
        with pytest.raises(InvalidParameterError):
            DiscreteModel(
                vectors=((0.0,),),
                outcomes=("a",),
                probabilities={(0.0,): {"a": 0.5}},
            )

    def test_missing_vector_distribution(self):
        with pytest.raises(InvalidParameterError):
            DiscreteModel(
                vectors=((0.0,), (1.0,)),
                outcomes=("a",),
                probabilities={(0.0,): {"a": 1.0}},
            )

    def test_consistency_queries(self):
        scheme, model = oblivious_model((0.5, 0.5), (0.0, 1.0))
        outcome_label = ((0,), (1.0,))  # entry 0 sampled with value 1
        consistent = model.consistent_vectors(outcome_label)
        assert set(consistent) == {(1.0, 0.0), (1.0, 1.0)}

    def test_from_scheme_probabilities(self):
        scheme, model = oblivious_model((0.25, 0.5), (0.0, 2.0))
        assert model.probability((2.0, 2.0), ((0, 1), (2.0, 2.0))) == \
            pytest.approx(0.125)
        assert model.probability((2.0, 2.0), ((), ())) == pytest.approx(0.375)


class TestOrderBasedDerivation:
    def test_reproduces_closed_form_max_l_r2(self):
        probabilities = (0.3, 0.7)
        values = (0.0, 1.0, 2.0)
        scheme, model = oblivious_model(probabilities, values)
        derived = OrderBasedDeriver(model, max, l_order_key).derive()
        closed_form = MaxObliviousL(probabilities)
        for vector in model.vectors:
            for sampled in [set(), {0}, {1}, {0, 1}]:
                outcome = VectorOutcome.from_vector(vector, sampled)
                label = (
                    tuple(sorted(outcome.sampled)),
                    tuple(outcome.values[i] for i in sorted(outcome.sampled)),
                )
                if label in derived.estimates:
                    assert derived.estimate(label) == pytest.approx(
                        closed_form.estimate(outcome), abs=1e-9
                    )

    def test_reproduces_closed_form_max_l_r3_uniform(self):
        probabilities = (0.5, 0.5, 0.5)
        scheme, model = oblivious_model(probabilities, (0.0, 1.0, 3.0))
        derived = OrderBasedDeriver(model, max, l_order_key).derive()
        closed_form = MaxObliviousL(probabilities)
        for vector in model.vectors:
            for sampled_size in range(4):
                for sampled in itertools.combinations(range(3), sampled_size):
                    outcome = VectorOutcome.from_vector(vector, set(sampled))
                    label = (
                        tuple(sorted(outcome.sampled)),
                        tuple(outcome.values[i]
                              for i in sorted(outcome.sampled)),
                    )
                    if label in derived.estimates:
                        assert derived.estimate(label) == pytest.approx(
                            closed_form.estimate(outcome), abs=1e-8
                        )

    def test_derived_estimator_unbiased(self):
        probabilities = (0.4, 0.6)
        scheme, model = oblivious_model(probabilities, (0.0, 1.0, 5.0))
        derived = OrderBasedDeriver(model, max, l_order_key).derive()
        for vector in model.vectors:
            assert derived.expectation(vector) == pytest.approx(max(vector))

    def test_derived_estimator_nonnegative(self):
        probabilities = (0.4, 0.6)
        scheme, model = oblivious_model(probabilities, (0.0, 1.0, 5.0))
        derived = OrderBasedDeriver(model, max, l_order_key).derive()
        assert derived.is_nonnegative()

    def test_variance_matches_enumeration(self):
        probabilities = (0.5, 0.5)
        scheme, model = oblivious_model(probabilities, (0.0, 1.0, 2.0))
        derived = OrderBasedDeriver(model, max, l_order_key).derive()
        closed_form = MaxObliviousL(probabilities)
        for vector in [(2.0, 1.0), (1.0, 1.0), (2.0, 0.0)]:
            _, expected = exact_moments(closed_form, scheme, vector)
            assert derived.variance(vector) == pytest.approx(expected)

    def test_failure_when_no_unbiased_estimator(self):
        # Unknown-seed style model for OR: the empty outcome is the only
        # outcome of (0, 0) but also occurs for other vectors; ordering the
        # all-ones vector first forces a contradiction for XOR-like targets.
        model = DiscreteModel(
            vectors=((0.0,), (1.0,)),
            outcomes=("empty",),
            probabilities={
                (0.0,): {"empty": 1.0},
                (1.0,): {"empty": 1.0},
            },
        )
        deriver = OrderBasedDeriver(model, lambda v: float(v[0]), lambda v: v)
        with pytest.raises(EstimatorDerivationError):
            deriver.derive()

    def test_unknown_outcome_estimate_raises(self):
        probabilities = (0.5, 0.5)
        scheme, model = oblivious_model(probabilities, (0.0, 1.0))
        derived = OrderBasedDeriver(model, max, l_order_key).derive()
        with pytest.raises(InvalidParameterError):
            derived.estimate("nonexistent")

    def test_min_estimator_matches_ht(self):
        # For the minimum with r = 2, the HT estimator (positive only when
        # both entries are sampled) is the unique Pareto-optimal choice, so
        # the order-based derivation must coincide with it.
        probabilities = (0.5, 0.5)
        scheme, model = oblivious_model(probabilities, (0.0, 1.0, 2.0))
        derived = OrderBasedDeriver(
            model, min, lambda v: (min(v), max(v))
        ).derive()
        for vector in model.vectors:
            assert derived.expectation(vector) == pytest.approx(min(vector))
            label = (tuple(range(2)), tuple(vector))
            if min(vector) > 0:
                assert derived.estimate(label) == pytest.approx(
                    min(vector) / 0.25
                )
