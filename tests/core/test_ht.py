"""Tests for the Horvitz-Thompson / inverse-probability estimators."""

from __future__ import annotations

import pytest

from repro.core.functions import minimum, value_range
from repro.core.ht import (
    HorvitzThompsonOblivious,
    InverseProbabilityEstimator,
    ht_estimate,
    ht_variance,
)
from repro.core.variance import exact_moments
from repro.exceptions import InvalidOutcomeError, InvalidParameterError
from repro.sampling.dispersed import ObliviousPoissonScheme
from repro.sampling.outcomes import VectorOutcome


class TestScalarHT:
    def test_estimate(self):
        assert ht_estimate(6.0, 0.5, sampled=True) == 12.0
        assert ht_estimate(6.0, 0.5, sampled=False) == 0.0

    def test_variance_formula(self):
        assert ht_variance(6.0, 0.5) == pytest.approx(36.0)
        assert ht_variance(6.0, 1.0) == 0.0

    def test_invalid_probability(self):
        with pytest.raises(InvalidParameterError):
            ht_estimate(1.0, 0.0, sampled=True)


class TestObliviousHT:
    def test_positive_only_when_all_sampled(self):
        estimator = HorvitzThompsonOblivious((0.5, 0.25))
        full = VectorOutcome.from_vector((3.0, 4.0), {0, 1})
        partial = VectorOutcome.from_vector((3.0, 4.0), {0})
        assert estimator.estimate(full) == pytest.approx(4.0 / 0.125)
        assert estimator.estimate(partial) == 0.0

    def test_unbiased_for_max_min_range(self, skewed_scheme):
        for function, name in ((max, "max"), (minimum, "min"),
                               (value_range, "range")):
            estimator = HorvitzThompsonOblivious(
                (0.3, 0.7), function=function, function_name=name
            )
            for values in [(3.0, 1.0), (0.0, 2.0), (5.0, 5.0)]:
                mean, _ = exact_moments(estimator, skewed_scheme, values)
                assert mean == pytest.approx(float(function(values)))

    def test_variance_matches_closed_form(self, skewed_scheme):
        estimator = HorvitzThompsonOblivious((0.3, 0.7))
        values = (3.0, 8.0)
        _, variance = exact_moments(estimator, skewed_scheme, values)
        assert variance == pytest.approx(estimator.variance(values))

    def test_dimension_check(self):
        estimator = HorvitzThompsonOblivious((0.5, 0.5))
        with pytest.raises(InvalidOutcomeError):
            estimator.estimate(VectorOutcome.from_vector((1.0,), {0}))


class TestInverseProbabilityEstimator:
    def test_custom_s_star(self):
        # HT for the minimum over two oblivious samples: the minimum is
        # known whenever both entries are sampled.
        probabilities = (0.4, 0.6)
        estimator = InverseProbabilityEstimator(
            r=2,
            in_s_star=lambda outcome: outcome.is_full,
            f_star=lambda outcome: min(outcome.values.values()),
            p_star=lambda outcome: probabilities[0] * probabilities[1],
            function_name="min",
        )
        scheme = ObliviousPoissonScheme(probabilities)
        for values in [(2.0, 7.0), (4.0, 4.0)]:
            mean, _ = exact_moments(estimator, scheme, values)
            assert mean == pytest.approx(min(values))

    def test_invalid_probability_from_p_star(self):
        estimator = InverseProbabilityEstimator(
            r=1,
            in_s_star=lambda outcome: True,
            f_star=lambda outcome: 1.0,
            p_star=lambda outcome: 0.0,
        )
        with pytest.raises(InvalidParameterError):
            estimator.estimate(VectorOutcome.from_vector((1.0,), {0}))

    def test_dimension_check(self):
        estimator = InverseProbabilityEstimator(
            r=2,
            in_s_star=lambda outcome: True,
            f_star=lambda outcome: 1.0,
            p_star=lambda outcome: 1.0,
        )
        with pytest.raises(InvalidOutcomeError):
            estimator.estimate(VectorOutcome.from_vector((1.0,), {0}))
