"""Tests for the generic Algorithm 2 (ordered partition) derivation engine."""

from __future__ import annotations

import itertools

import pytest

from repro.core.max_oblivious import MaxObliviousU
from repro.core.order_based import DiscreteModel
from repro.core.partition_based import PartitionBasedDeriver
from repro.sampling.dispersed import ObliviousPoissonScheme


def oblivious_model(probabilities, values_per_entry):
    scheme = ObliviousPoissonScheme(probabilities)
    vectors = list(
        itertools.product(values_per_entry, repeat=len(probabilities))
    )
    return scheme, DiscreteModel.from_scheme(scheme, vectors)


def sparsity_batch_key(vector):
    """Number of positive entries — the max^(U) ordered partition."""
    return sum(1 for v in vector if v > 0)


def outcome_label(vector, sampled):
    sampled = tuple(sorted(sampled))
    return (sampled, tuple(vector[i] for i in sampled))


class TestPartitionBasedDerivation:
    @pytest.mark.parametrize("probabilities", [(0.5, 0.5), (0.25, 0.25), (0.3, 0.6)])
    def test_unbiased(self, probabilities):
        scheme, model = oblivious_model(probabilities, (0.0, 1.0, 4.0))
        derived = PartitionBasedDeriver(model, max, sparsity_batch_key).derive()
        for vector in model.vectors:
            assert derived.expectation(vector) == pytest.approx(
                max(vector), abs=1e-6
            )

    @pytest.mark.parametrize("probabilities", [(0.5, 0.5), (0.25, 0.25), (0.3, 0.6)])
    def test_nonnegative(self, probabilities):
        scheme, model = oblivious_model(probabilities, (0.0, 1.0, 4.0))
        derived = PartitionBasedDeriver(model, max, sparsity_batch_key).derive()
        assert derived.is_nonnegative(tolerance=1e-6)

    @pytest.mark.parametrize("probabilities", [(0.5, 0.5), (0.25, 0.25)])
    def test_reproduces_symmetric_max_u_single_positive_entry(
        self, probabilities
    ):
        # The estimate on outcomes with one positive sampled entry must match
        # the closed form v / (p (1 + max(0, 1 - p1 - p2))).
        scheme, model = oblivious_model(probabilities, (0.0, 1.0))
        derived = PartitionBasedDeriver(model, max, sparsity_batch_key).derive()
        closed_form = MaxObliviousU(probabilities)
        from repro.sampling.outcomes import VectorOutcome

        outcome = VectorOutcome.from_vector((1.0, 0.0), {0})
        label = outcome_label((1.0, 0.0), {0})
        assert derived.estimate(label) == pytest.approx(
            closed_form.estimate(outcome), rel=1e-4
        )

    @pytest.mark.parametrize("probabilities", [(0.5, 0.5), (0.25, 0.25)])
    def test_reproduces_symmetric_max_u_on_binary_domain(self, probabilities):
        scheme, model = oblivious_model(probabilities, (0.0, 1.0))
        derived = PartitionBasedDeriver(model, max, sparsity_batch_key).derive()
        closed_form = MaxObliviousU(probabilities)
        from repro.sampling.outcomes import VectorOutcome

        for vector in model.vectors:
            for sampled in [set(), {0}, {1}, {0, 1}]:
                label = outcome_label(vector, sampled)
                if label not in derived.estimates:
                    continue
                outcome = VectorOutcome.from_vector(vector, sampled)
                assert derived.estimate(label) == pytest.approx(
                    closed_form.estimate(outcome), rel=1e-4, abs=1e-6
                )

    def test_symmetry_of_derived_estimator(self):
        probabilities = (0.3, 0.3)
        scheme, model = oblivious_model(probabilities, (0.0, 2.0))
        derived = PartitionBasedDeriver(model, max, sparsity_batch_key).derive()
        first = derived.estimate(outcome_label((2.0, 0.0), {0}))
        second = derived.estimate(outcome_label((0.0, 2.0), {1}))
        assert first == pytest.approx(second, rel=1e-6)

    def test_prioritises_sparse_vectors_over_l_order(self):
        # On data with a zero entry the partition-based (U) estimator has
        # lower variance than the order-based (L) estimator.
        probabilities = (0.5, 0.5)
        scheme, model = oblivious_model(probabilities, (0.0, 3.0))
        derived = PartitionBasedDeriver(model, max, sparsity_batch_key).derive()
        from repro.core.max_oblivious import MaxObliviousL
        from repro.core.variance import exact_variance

        sparse_vector = (3.0, 0.0)
        l_variance = exact_variance(
            MaxObliviousL(probabilities),
            scheme,
            sparse_vector,
        )
        assert derived.variance(sparse_vector) <= l_variance + 1e-6

    def test_three_instances_partition(self):
        probabilities = (0.5, 0.5, 0.5)
        scheme, model = oblivious_model(probabilities, (0.0, 1.0))
        derived = PartitionBasedDeriver(model, max, sparsity_batch_key).derive()
        for vector in model.vectors:
            assert derived.expectation(vector) == pytest.approx(
                max(vector), abs=1e-5
            )
        assert derived.is_nonnegative(tolerance=1e-6)
