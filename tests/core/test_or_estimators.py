"""Tests for the Boolean OR estimators (Sections 4.3 and 5.1)."""

from __future__ import annotations

import itertools

import pytest

from repro.core.or_estimators import (
    OrKnownSeedsHT,
    OrKnownSeedsL,
    OrKnownSeedsU,
    OrObliviousHT,
    OrObliviousL,
    OrObliviousU,
    map_known_seed_outcome_to_oblivious,
)
from repro.core.variance import (
    exact_moments,
    exact_variance,
    or_ht_variance,
    or_l_variance,
    or_u_variance,
)
from repro.exceptions import InvalidOutcomeError
from repro.sampling.dispersed import ObliviousPoissonScheme, PpsPoissonScheme
from repro.sampling.outcomes import VectorOutcome

BINARY_R2 = list(itertools.product((0.0, 1.0), repeat=2))


class TestObliviousOr:
    @pytest.mark.parametrize("probabilities", [(0.5, 0.5), (0.3, 0.7), (0.9, 0.1)])
    @pytest.mark.parametrize("values", BINARY_R2)
    def test_unbiased(self, probabilities, values):
        scheme = ObliviousPoissonScheme(probabilities)
        for estimator in (
            OrObliviousHT(probabilities),
            OrObliviousL(probabilities),
            OrObliviousU(probabilities),
        ):
            mean, _ = exact_moments(estimator, scheme, values)
            expected = 1.0 if any(values) else 0.0
            assert mean == pytest.approx(expected, abs=1e-10)

    def test_variance_closed_forms(self):
        p1, p2 = 0.35, 0.6
        scheme = ObliviousPoissonScheme((p1, p2))
        assert exact_variance(OrObliviousHT((p1, p2)), scheme, (1.0, 1.0)) == \
            pytest.approx(or_ht_variance((p1, p2)))
        assert exact_variance(OrObliviousL((p1, p2)), scheme, (1.0, 1.0)) == \
            pytest.approx(or_l_variance(p1, p2, (1, 1)))
        assert exact_variance(OrObliviousL((p1, p2)), scheme, (1.0, 0.0)) == \
            pytest.approx(or_l_variance(p1, p2, (1, 0)))
        assert exact_variance(OrObliviousU((p1, p2)), scheme, (1.0, 0.0)) == \
            pytest.approx(or_u_variance(p1, p2, (1, 0)))

    def test_l_and_u_dominate_ht(self):
        for p in (0.2, 0.5, 0.8):
            scheme = ObliviousPoissonScheme((p, p))
            ht = OrObliviousHT((p, p))
            for estimator in (OrObliviousL((p, p)), OrObliviousU((p, p))):
                for values in BINARY_R2:
                    assert exact_variance(estimator, scheme, values) <= \
                        exact_variance(ht, scheme, values) + 1e-12

    def test_small_p_asymptotics(self):
        # Paper: for small p, Var[OR^L | (1,1)] ~ 1/(2p) while
        # Var[OR^HT] ~ 1/p^2, and Var[OR^L | (1,0)] ~ 1/(4 p^2).
        p = 0.001
        assert or_l_variance(p, p, (1, 1)) == pytest.approx(1.0 / (2 * p),
                                                            rel=0.01)
        assert or_ht_variance((p, p)) == pytest.approx(1.0 / p ** 2, rel=0.01)
        assert or_l_variance(p, p, (1, 0)) == pytest.approx(
            1.0 / (4 * p ** 2), rel=0.01
        )

    def test_non_binary_values_rejected(self):
        estimator = OrObliviousL((0.5, 0.5))
        with pytest.raises(InvalidOutcomeError):
            estimator.estimate(VectorOutcome.from_vector((2.0, 1.0), {0}))

    def test_multi_instance_or_l(self):
        # OR^(L) specialises max^(L) and works for any r with uniform p.
        p = 0.3
        r = 4
        scheme = ObliviousPoissonScheme((p,) * r)
        estimator = OrObliviousL((p,) * r)
        for values in itertools.product((0.0, 1.0), repeat=r):
            mean, _ = exact_moments(estimator, scheme, values)
            assert mean == pytest.approx(1.0 if any(values) else 0.0,
                                         abs=1e-9)


class TestKnownSeedMapping:
    def test_mapping_categories(self):
        probabilities = (0.4, 0.6)
        outcome = VectorOutcome(
            r=2,
            sampled=frozenset({0}),
            values={0: 1.0},
            seeds={0: 0.2, 1: 0.5},
        )
        mapped = map_known_seed_outcome_to_oblivious(outcome, probabilities)
        # Entry 0 sampled -> value 1; entry 1 unsampled with seed 0.5 <= 0.6
        # -> certified zero.
        assert mapped.sampled == frozenset({0, 1})
        assert mapped.values == {0: 1.0, 1: 0.0}

    def test_mapping_uninformative_entry(self):
        probabilities = (0.4, 0.6)
        outcome = VectorOutcome(
            r=2,
            sampled=frozenset({0}),
            values={0: 1.0},
            seeds={0: 0.2, 1: 0.95},
        )
        mapped = map_known_seed_outcome_to_oblivious(outcome, probabilities)
        assert mapped.sampled == frozenset({0})

    def test_mapping_requires_seeds(self):
        outcome = VectorOutcome.from_vector((1.0, 0.0), {0})
        with pytest.raises(InvalidOutcomeError):
            map_known_seed_outcome_to_oblivious(outcome, (0.5, 0.5))


class TestKnownSeedsOr:
    @pytest.mark.parametrize("values", BINARY_R2)
    @pytest.mark.parametrize("p", [(0.4, 0.4), (0.3, 0.8)])
    def test_unbiased_by_exact_region_enumeration(self, values, p):
        # The estimate only depends on whether each seed falls below or above
        # its sampling probability, so the expectation is an exact finite sum
        # over the four seed regions.
        estimators = {
            "HT": OrKnownSeedsHT(p),
            "L": OrKnownSeedsL(p),
            "U": OrKnownSeedsU(p),
        }
        scheme = PpsPoissonScheme((1.0 / p[0], 1.0 / p[1]), known_seeds=True)
        expected = 1.0 if any(values) else 0.0
        regions = []
        for low1 in (True, False):
            for low2 in (True, False):
                probability = (p[0] if low1 else 1.0 - p[0]) * (
                    p[1] if low2 else 1.0 - p[1]
                )
                seeds = (
                    p[0] / 2.0 if low1 else (1.0 + p[0]) / 2.0,
                    p[1] / 2.0 if low2 else (1.0 + p[1]) / 2.0,
                )
                regions.append((probability, seeds))
        for name, estimator in estimators.items():
            mean = sum(
                probability * estimator.estimate(
                    scheme.sample(values, seeds=seeds)
                )
                for probability, seeds in regions
            )
            assert mean == pytest.approx(expected, abs=1e-9), name

    def test_known_seeds_variance_equals_oblivious(self):
        # Section 5.1: the weighted known-seed OR estimators have the same
        # variance as their weight-oblivious counterparts.
        p = (0.45, 0.45)
        assert or_l_variance(*p, (1, 1)) == pytest.approx(
            1.0 / (p[0] + p[1] - p[0] * p[1]) - 1.0
        )

    def test_estimate_values_match_section_5_1_table(self):
        p1, p2 = 0.4, 0.5
        union = p1 + p2 - p1 * p2
        estimator = OrKnownSeedsL((p1, p2))
        # S = {1} with u2 > p2: estimate 1/union.
        outcome = VectorOutcome(
            r=2, sampled=frozenset({0}), values={0: 1.0},
            seeds={0: 0.1, 1: 0.9},
        )
        assert estimator.estimate(outcome) == pytest.approx(1.0 / union)
        # S = {1} with u2 <= p2: estimate 1/(p1 * union).
        outcome = VectorOutcome(
            r=2, sampled=frozenset({0}), values={0: 1.0},
            seeds={0: 0.1, 1: 0.2},
        )
        assert estimator.estimate(outcome) == pytest.approx(
            1.0 / (p1 * union)
        )
        # Empty outcome with both seeds high: no information, estimate 0.
        outcome = VectorOutcome(
            r=2, sampled=frozenset(), values={}, seeds={0: 0.9, 1: 0.95},
        )
        assert estimator.estimate(outcome) == 0.0
