"""Tests for the Section 6 impossibility results via LP feasibility."""

from __future__ import annotations

import pytest

from repro.core.feasibility import (
    binary_known_seed_model,
    binary_unknown_seed_model,
    unbiased_nonnegative_exists,
)
from repro.core.functions import boolean_or, boolean_xor


class TestUnknownSeeds:
    @pytest.mark.parametrize("p", [(0.3, 0.3), (0.2, 0.5), (0.45, 0.45)])
    def test_or_infeasible_when_p1_plus_p2_below_one(self, p):
        model = binary_unknown_seed_model(p)
        result = unbiased_nonnegative_exists(model, boolean_or)
        assert not result.feasible

    @pytest.mark.parametrize("p", [(0.6, 0.6), (0.9, 0.2), (1.0, 1.0)])
    def test_or_feasible_when_p1_plus_p2_at_least_one(self, p):
        # The impossibility argument of Theorem 6.1 needs p1 + p2 < 1; with
        # larger probabilities an unbiased nonnegative estimator exists.
        model = binary_unknown_seed_model(p)
        result = unbiased_nonnegative_exists(model, boolean_or)
        assert result.feasible

    @pytest.mark.parametrize("p", [(0.3, 0.3), (0.6, 0.6), (0.9, 0.9)])
    def test_xor_always_infeasible(self, p):
        # The XOR / exponentiated-range argument does not need p1 + p2 < 1.
        model = binary_unknown_seed_model(p)
        result = unbiased_nonnegative_exists(model, boolean_xor)
        assert not result.feasible

    def test_three_instances_second_largest_infeasible(self):
        # ell-th largest with ell < r: embed the two-instance argument by
        # fixing a third entry to one (Theorem 6.1's extension).
        p = (0.3, 0.3, 0.8)
        vectors = [(0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 1)]
        model = binary_unknown_seed_model(p, vectors=vectors)

        def second_largest(vector):
            return float(sorted(vector, reverse=True)[1])

        result = unbiased_nonnegative_exists(model, second_largest)
        assert not result.feasible

    def test_minimum_feasible(self):
        # The minimum (ell = r) does have an inverse-probability estimator
        # even with unknown seeds.
        model = binary_unknown_seed_model((0.3, 0.3))
        result = unbiased_nonnegative_exists(
            model, lambda v: float(min(v))
        )
        assert result.feasible


class TestKnownSeeds:
    @pytest.mark.parametrize("p", [(0.3, 0.3), (0.2, 0.5), (0.7, 0.7)])
    def test_or_feasible(self, p):
        model = binary_known_seed_model(p)
        result = unbiased_nonnegative_exists(model, boolean_or)
        assert result.feasible

    @pytest.mark.parametrize("p", [(0.3, 0.3), (0.7, 0.7)])
    def test_xor_feasible(self, p):
        model = binary_known_seed_model(p)
        result = unbiased_nonnegative_exists(model, boolean_xor)
        assert result.feasible

    def test_witness_is_unbiased(self):
        model = binary_known_seed_model((0.4, 0.6))
        result = unbiased_nonnegative_exists(model, boolean_or)
        assert result.feasible
        witness = result.estimates
        for vector in model.vectors:
            expectation = sum(
                model.probability(vector, outcome) * value
                for outcome, value in witness.items()
            )
            assert expectation == pytest.approx(boolean_or(vector), abs=1e-6)

    def test_witness_nonnegative(self):
        model = binary_known_seed_model((0.4, 0.6))
        result = unbiased_nonnegative_exists(model, boolean_or)
        assert all(value >= -1e-9 for value in result.estimates.values())


class TestModelConstruction:
    def test_unknown_seed_outcomes_are_sampled_sets(self):
        model = binary_unknown_seed_model((0.5, 0.5))
        assert frozenset() in model.outcomes
        assert frozenset({0, 1}) in model.outcomes

    def test_unknown_seed_zero_vector_always_empty_outcome(self):
        model = binary_unknown_seed_model((0.5, 0.5))
        assert model.probability((0, 0), frozenset()) == pytest.approx(1.0)

    def test_known_seed_states(self):
        model = binary_known_seed_model((0.5, 0.5))
        # For the all-zero vector every entry is either certified zero or
        # uninformative.
        for outcome in model.consistent_outcomes((0, 0)):
            assert set(outcome) <= {"0", "?"}

    def test_probabilities_sum_to_one(self):
        for builder in (binary_unknown_seed_model, binary_known_seed_model):
            model = builder((0.35, 0.65))
            for vector in model.vectors:
                total = sum(
                    model.probability(vector, outcome)
                    for outcome in model.outcomes
                )
                assert total == pytest.approx(1.0)
