"""Tests for the PPS known-seed max estimators (Section 5.2, Figure 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.max_weighted import MaxPpsHT, MaxPpsL
from repro.exceptions import (
    InvalidOutcomeError,
    UnsupportedConfigurationError,
)
from repro.sampling.dispersed import PpsPoissonScheme
from repro.sampling.outcomes import VectorOutcome


def outcome_with(values, sampled, seeds):
    return VectorOutcome.from_vector(values, sampled, seeds=seeds)


class TestMaxPpsHT:
    def test_estimate_when_max_is_determined(self):
        estimator = MaxPpsHT((10.0, 10.0))
        # Entry 0 sampled with value 6; entry 1 unsampled with bound
        # u * tau = 0.3 * 10 = 3 <= 6, so the maximum is known.
        outcome = outcome_with((6.0, 2.0), {0}, [0.3, 0.3])
        probability = min(1.0, 6.0 / 10.0) ** 2
        assert estimator.estimate(outcome) == pytest.approx(6.0 / probability)

    def test_zero_when_bound_exceeds_sampled_max(self):
        estimator = MaxPpsHT((10.0, 10.0))
        outcome = outcome_with((6.0, 2.0), {0}, [0.3, 0.8])
        assert estimator.estimate(outcome) == 0.0

    def test_zero_on_empty_outcome(self):
        estimator = MaxPpsHT((10.0, 10.0))
        outcome = outcome_with((1.0, 2.0), set(), [0.9, 0.9])
        assert estimator.estimate(outcome) == 0.0

    def test_requires_seeds(self):
        estimator = MaxPpsHT((10.0, 10.0))
        with pytest.raises(InvalidOutcomeError):
            estimator.estimate(VectorOutcome.from_vector((1.0, 2.0), {0}))

    def test_variance_closed_form(self):
        estimator = MaxPpsHT((10.0, 10.0))
        values = (5.0, 2.0)
        probability = 0.25
        assert estimator.variance(values) == pytest.approx(
            25.0 * (1.0 / probability - 1.0)
        )
        assert estimator.variance((0.0, 0.0)) == 0.0

    def test_unbiased_by_monte_carlo(self, rng):
        estimator = MaxPpsHT((10.0, 8.0))
        scheme = PpsPoissonScheme((10.0, 8.0))
        values = (6.0, 3.0)
        estimates = [
            estimator.estimate(scheme.sample(values, rng=rng))
            for _ in range(30_000)
        ]
        assert np.mean(estimates) == pytest.approx(6.0, rel=0.05)

    def test_three_instances_supported(self):
        estimator = MaxPpsHT((10.0, 10.0, 10.0))
        outcome = outcome_with((6.0, 1.0, 2.0), {0}, [0.1, 0.5, 0.55])
        probability = 0.6 ** 3
        assert estimator.estimate(outcome) == pytest.approx(6.0 / probability)


class TestMaxPpsLClosedForm:
    def test_figure3_equal_entries(self):
        estimator = MaxPpsL((10.0, 10.0))
        # Eq. (25): v / (q1 + q2 - q1 q2).
        assert estimator.estimate_from_determining(5.0, 5.0) == pytest.approx(
            5.0 / (0.5 + 0.5 - 0.25)
        )

    def test_figure3_case_both_above_thresholds(self):
        estimator = MaxPpsL((10.0, 4.0))
        # v1 >= v2 >= tau_2: estimate = v2 + (v1 - v2)/min(1, v1/tau_1).
        assert estimator.estimate_from_determining(8.0, 5.0) == pytest.approx(
            5.0 + 3.0 / 0.8
        )

    def test_figure3_case_large_entry_above_own_threshold(self):
        estimator = MaxPpsL((10.0, 10.0))
        assert estimator.estimate_from_determining(12.0, 3.0) == 12.0

    def test_figure3_case_both_below(self):
        # Eq. (29) at equal taus; verified against a hand-computed value.
        estimator = MaxPpsL((10.0, 10.0))
        value = estimator.estimate_from_determining(5.0, 2.0)
        tau = 10.0
        total = 2 * tau
        expected = (
            tau * tau / (total - 5.0)
            + tau * tau * (tau - 5.0) / (5.0 * total)
            * np.log((total - 2.0) * 5.0 / (2.0 * (total - 5.0)))
            + (5.0 - 2.0) * tau * tau * (tau - 5.0)
            / (5.0 * (total - 2.0) * (total - 5.0))
        )
        assert value == pytest.approx(expected)

    def test_zero_vector(self):
        estimator = MaxPpsL((10.0, 10.0))
        assert estimator.estimate_from_determining(0.0, 0.0) == 0.0

    def test_partial_zero_vector_rejected(self):
        estimator = MaxPpsL((10.0, 10.0))
        with pytest.raises(InvalidOutcomeError):
            estimator.estimate_from_determining(3.0, 0.0)

    def test_continuity_across_case_boundaries(self):
        # The estimate must be continuous in the determining vector; check
        # the three interior boundaries with unequal thresholds.
        estimator = MaxPpsL((10.0, 4.0))
        eps = 1e-7
        # Boundary b = tau_b (between Eq. 26 and Eq. 30).
        left = estimator.estimate_from_determining(7.0, 4.0 - eps)
        right = estimator.estimate_from_determining(7.0, 4.0 + eps)
        assert left == pytest.approx(right, abs=1e-4)
        # Boundary a = tau_a (between Eq. 30 and the constant case).
        left = estimator.estimate_from_determining(10.0 - eps, 2.0)
        right = estimator.estimate_from_determining(10.0 + eps, 2.0)
        assert left == pytest.approx(right, abs=1e-4)
        # Boundary a = tau_b (between Eq. 29 and Eq. 30).
        estimator_wide = MaxPpsL((10.0, 6.0))
        left = estimator_wide.estimate_from_determining(6.0 - eps, 2.0)
        right = estimator_wide.estimate_from_determining(6.0 + eps, 2.0)
        assert left == pytest.approx(right, abs=1e-4)

    def test_symmetry_under_entry_swap(self):
        # Swapping both the entries and the thresholds must not change the
        # estimate.
        a = MaxPpsL((10.0, 4.0)).estimate_from_determining(7.0, 2.0)
        b = MaxPpsL((4.0, 10.0)).estimate_from_determining(2.0, 7.0)
        assert a == pytest.approx(b)

    def test_vectorised_matches_scalar(self, rng):
        estimator = MaxPpsL((9.0, 5.0))
        for _ in range(100):
            a = rng.uniform(0.05, 11.0)
            b = rng.uniform(0.01, 1.0) * a
            scalar = estimator.estimate_from_determining(a, b)
            vector = estimator._sorted_estimate_vector(
                a, np.array([b]), 9.0, 5.0
            )[0]
            assert scalar == pytest.approx(vector, rel=1e-12)


class TestMaxPpsLDeterminingVector:
    def test_mapping_all_outcome_shapes(self):
        estimator = MaxPpsL((10.0, 10.0))
        seeds = {0: 0.35, 1: 0.8}
        empty = VectorOutcome(r=2, sampled=frozenset(), values={}, seeds=seeds)
        assert estimator.determining_vector(empty) == (0.0, 0.0)
        only_first = VectorOutcome(
            r=2, sampled=frozenset({0}), values={0: 6.0}, seeds=seeds
        )
        # bound of entry 1: 0.8 * 10 = 8 > 6 -> clipped at the sampled value.
        assert estimator.determining_vector(only_first) == (6.0, 6.0)
        only_first_low_bound = VectorOutcome(
            r=2, sampled=frozenset({0}), values={0: 6.0},
            seeds={0: 0.35, 1: 0.2},
        )
        assert estimator.determining_vector(only_first_low_bound) == (6.0, 2.0)
        both = VectorOutcome(
            r=2, sampled=frozenset({0, 1}), values={0: 6.0, 1: 1.0},
            seeds=seeds,
        )
        assert estimator.determining_vector(both) == (6.0, 1.0)

    def test_requires_seeds(self):
        estimator = MaxPpsL((10.0, 10.0))
        with pytest.raises(InvalidOutcomeError):
            estimator.determining_vector(
                VectorOutcome.from_vector((1.0, 2.0), {0})
            )

    def test_r2_only(self):
        with pytest.raises(UnsupportedConfigurationError):
            MaxPpsL((10.0, 10.0, 10.0))


class TestMaxPpsLStatisticalProperties:
    @pytest.mark.parametrize("tau_star", [(10.0, 10.0), (10.0, 4.0), (2.0, 6.0)])
    def test_unbiased_exact_integration(self, tau_star, rng):
        estimator = MaxPpsL(tau_star)
        for _ in range(6):
            scale = np.array(tau_star) * rng.uniform(0.05, 1.2, size=2)
            values = tuple(np.round(scale, 4))
            mean, _ = estimator.moments(values)
            assert mean == pytest.approx(max(values), rel=2e-3, abs=1e-6)

    def test_unbiased_monte_carlo(self, rng):
        estimator = MaxPpsL((10.0, 10.0))
        scheme = PpsPoissonScheme((10.0, 10.0))
        values = (4.0, 2.5)
        estimates = [
            estimator.estimate(scheme.sample(values, rng=rng))
            for _ in range(30_000)
        ]
        assert np.mean(estimates) == pytest.approx(4.0, rel=0.03)

    def test_monte_carlo_variance_matches_integration(self, rng):
        estimator = MaxPpsL((10.0, 10.0))
        scheme = PpsPoissonScheme((10.0, 10.0))
        values = (6.0, 3.0)
        estimates = np.array([
            estimator.estimate(scheme.sample(values, rng=rng))
            for _ in range(40_000)
        ])
        _, variance = estimator.moments(values)
        assert float(np.var(estimates)) == pytest.approx(variance, rel=0.08)

    def test_dominates_ht(self):
        tau_star = (10.0, 10.0)
        estimator_l = MaxPpsL(tau_star)
        estimator_ht = MaxPpsHT(tau_star)
        for values in [(5.0, 5.0), (5.0, 2.0), (8.0, 1.0), (3.0, 0.0),
                       (9.9, 9.0)]:
            assert estimator_l.variance(values) <= \
                estimator_ht.variance(values) + 1e-6

    def test_zero_variance_when_max_exceeds_threshold(self):
        estimator = MaxPpsL((10.0, 10.0))
        mean, variance = estimator.moments((12.0, 3.0))
        assert mean == pytest.approx(12.0)
        assert variance == pytest.approx(0.0, abs=1e-9)

    def test_nonnegative_estimates(self, rng):
        estimator = MaxPpsL((10.0, 7.0))
        scheme = PpsPoissonScheme((10.0, 7.0))
        for _ in range(2000):
            values = tuple(rng.uniform(0.0, 12.0, size=2))
            outcome = scheme.sample(values, rng=rng)
            assert estimator.estimate(outcome) >= 0.0

    def test_monotone_more_information_not_smaller(self):
        # Outcome with both entries sampled is more informative than the
        # outcome with only the larger entry sampled and an upper bound equal
        # to the smaller value.
        estimator = MaxPpsL((10.0, 10.0))
        seeds = {0: 0.1, 1: 0.3}
        both = VectorOutcome(
            r=2, sampled=frozenset({0, 1}), values={0: 6.0, 1: 3.0},
            seeds=seeds,
        )
        only_first = VectorOutcome(
            r=2, sampled=frozenset({0}), values={0: 6.0}, seeds=seeds,
        )
        assert estimator.estimate(both) >= estimator.estimate(only_first) - 1e-9
