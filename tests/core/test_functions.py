"""Tests for the multi-instance function primitives."""

from __future__ import annotations

import pytest

from repro.core.functions import (
    FUNCTIONS,
    boolean_or,
    boolean_xor,
    exp_range,
    lth_largest,
    maximum,
    minimum,
    value_range,
)
from repro.exceptions import InvalidParameterError


class TestQuantiles:
    def test_maximum(self):
        assert maximum([3.0, 7.0, 1.0]) == 7.0

    def test_minimum(self):
        assert minimum([3.0, 7.0, 1.0]) == 1.0

    def test_lth_largest(self):
        values = [5.0, 1.0, 9.0, 3.0]
        assert lth_largest(values, 1) == 9.0
        assert lth_largest(values, 2) == 5.0
        assert lth_largest(values, 4) == 1.0

    def test_lth_largest_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            lth_largest([1.0, 2.0], 3)
        with pytest.raises(InvalidParameterError):
            lth_largest([1.0, 2.0], 0)

    def test_empty_vector_rejected(self):
        for function in (maximum, minimum, value_range, boolean_or):
            with pytest.raises(InvalidParameterError):
                function([])


class TestRange:
    def test_value_range(self):
        assert value_range([2.0, 10.0, 5.0]) == 8.0

    def test_exp_range(self):
        assert exp_range([2.0, 5.0], exponent=2.0) == 9.0
        assert exp_range([2.0, 5.0]) == 3.0

    def test_exp_range_invalid_exponent(self):
        with pytest.raises(InvalidParameterError):
            exp_range([1.0, 2.0], exponent=0.0)


class TestBoolean:
    def test_or(self):
        assert boolean_or([0, 0, 1]) == 1.0
        assert boolean_or([0, 0, 0]) == 0.0

    def test_xor(self):
        assert boolean_xor([1, 1]) == 0.0
        assert boolean_xor([1, 0]) == 1.0
        assert boolean_xor([1, 1, 1]) == 1.0

    def test_non_binary_rejected(self):
        with pytest.raises(InvalidParameterError):
            boolean_or([0.5, 1.0])
        with pytest.raises(InvalidParameterError):
            boolean_xor([2.0, 1.0])


class TestRegistry:
    def test_registry_contains_primitives(self):
        assert set(FUNCTIONS) >= {"max", "min", "range", "or", "xor"}

    def test_registry_entries_callable(self):
        assert FUNCTIONS["max"]([1.0, 4.0]) == 4.0
