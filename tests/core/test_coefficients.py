"""Tests for the Theorem 4.2 coefficient recursion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coefficients import (
    max_l_r2_coefficients,
    uniform_max_l_coefficients,
    uniform_max_l_coefficients_grid,
    uniform_prefix_sums,
    uniform_prefix_sums_grid,
)
from repro.exceptions import InvalidParameterError


class TestGridAndCache:
    @pytest.mark.parametrize("r", [1, 2, 3, 5, 8])
    def test_grid_rows_equal_scalar_tables(self, r):
        probabilities = np.array([0.05, 0.3, 0.5, 0.9, 1.0])
        prefix_grid = uniform_prefix_sums_grid(r, probabilities)
        alpha_grid = uniform_max_l_coefficients_grid(r, probabilities)
        for row, p in enumerate(probabilities):
            np.testing.assert_array_equal(
                prefix_grid[row], uniform_prefix_sums(r, float(p))
            )
            np.testing.assert_array_equal(
                alpha_grid[row], uniform_max_l_coefficients(r, float(p))
            )

    def test_cached_results_are_fresh_copies(self):
        first = uniform_prefix_sums(3, 0.4)
        first[0] = -123.0  # corrupting the returned array must not poison
        second = uniform_prefix_sums(3, 0.4)  # the (r, p) cache entry
        assert second[0] != -123.0
        alphas = uniform_max_l_coefficients(3, 0.4)
        alphas[:] = 0.0
        assert uniform_max_l_coefficients(3, 0.4)[0] != 0.0

    def test_grid_validation(self):
        with pytest.raises(InvalidParameterError):
            uniform_prefix_sums_grid(0, np.array([0.5]))
        with pytest.raises(InvalidParameterError):
            uniform_prefix_sums_grid(3, np.array([0.5, 0.0]))
        with pytest.raises(InvalidParameterError):
            uniform_prefix_sums_grid(3, np.array([[0.5]]))


class TestUniformPrefixSums:
    def test_r2_closed_form(self):
        # Paper: A_2 = 1 / (p (2 - p)),  A_1 = 1 / (p^2 (2 - p)).
        p = 0.37
        prefix = uniform_prefix_sums(2, p)
        assert prefix[1] == pytest.approx(1.0 / (p * (2.0 - p)))
        assert prefix[0] == pytest.approx(1.0 / (p ** 2 * (2.0 - p)))

    def test_r3_closed_form(self):
        # Paper: A_3 = 1/(p(p^2-3p+3)), A_2 = A_3/(p(2-p)) ... and
        # A_1 = (2 + p^2 - 2p) / (p^3 (p^2-3p+3)(2-p)).
        p = 0.42
        poly = p ** 2 - 3.0 * p + 3.0
        prefix = uniform_prefix_sums(3, p)
        assert prefix[2] == pytest.approx(1.0 / (p * poly))
        assert prefix[1] == pytest.approx(1.0 / (p ** 2 * poly * (2.0 - p)))
        assert prefix[0] == pytest.approx(
            (2.0 + p ** 2 - 2.0 * p) / (p ** 3 * poly * (2.0 - p))
        )

    def test_last_prefix_sum_is_or_normaliser(self):
        # A_r = 1 / (1 - (1-p)^r): the estimate on an all-equal vector.
        for r in (2, 3, 4, 6):
            p = 0.3
            prefix = uniform_prefix_sums(r, p)
            assert prefix[-1] == pytest.approx(1.0 / (1.0 - (1.0 - p) ** r))

    def test_prefix_sums_decreasing_in_index_reversed(self):
        # A_1 >= A_2 >= ... >= A_r for the maximums estimator.
        prefix = uniform_prefix_sums(5, 0.25)
        assert np.all(np.diff(prefix) <= 1e-12)

    def test_invalid_arguments(self):
        with pytest.raises(InvalidParameterError):
            uniform_prefix_sums(0, 0.5)
        with pytest.raises(InvalidParameterError):
            uniform_prefix_sums(3, 0.0)


class TestCoefficients:
    def test_r2_coefficients_match_paper(self):
        # alpha = (1/(p^2(2-p)), -(1-p)/(p^2(2-p))) for uniform p (Eq. 22).
        p = 0.5
        alphas = uniform_max_l_coefficients(2, p)
        assert alphas[0] == pytest.approx(1.0 / (p ** 2 * (2.0 - p)))
        assert alphas[1] == pytest.approx(-(1.0 - p) / (p ** 2 * (2.0 - p)))

    def test_r3_coefficients_match_paper(self):
        p = 0.5
        poly = p ** 2 - 3.0 * p + 3.0
        alphas = uniform_max_l_coefficients(3, p)
        assert alphas[0] == pytest.approx(
            (2.0 - 2.0 * p + p ** 2) / (p ** 3 * (2.0 - p) * poly)
        )
        assert alphas[1] == pytest.approx(-(1.0 - p) / (p ** 3 * poly))
        assert alphas[2] == pytest.approx(
            -((1.0 - p) ** 2) / (p ** 2 * (2.0 - p) * poly)
        )

    def test_coefficients_sum_to_or_normaliser(self):
        for r in (2, 3, 5):
            p = 0.4
            alphas = uniform_max_l_coefficients(r, p)
            assert alphas.sum() == pytest.approx(1.0 / (1.0 - (1.0 - p) ** r))

    @pytest.mark.parametrize("r", [2, 3, 4])
    @pytest.mark.parametrize("p", [0.1, 0.3, 0.5, 0.8])
    def test_lemma_4_2_conditions(self, r, p):
        # alpha_1 <= 1/p^r and alpha_i < 0 for i > 1 imply monotonicity,
        # nonnegativity and dominance over HT (Lemma 4.2); the paper verified
        # them for r <= 4 and uniform p.
        alphas = uniform_max_l_coefficients(r, p)
        assert alphas[0] <= 1.0 / p ** r + 1e-9
        assert np.all(alphas[1:] < 1e-12)

    def test_p_equal_one_degenerates_to_exact(self):
        alphas = uniform_max_l_coefficients(3, 1.0)
        assert alphas[0] == pytest.approx(1.0)
        assert np.allclose(alphas[1:], 0.0)


class TestHeterogeneousR2:
    def test_matches_uniform_case(self):
        p = 0.45
        a1, a2 = max_l_r2_coefficients(p, p)
        uniform = uniform_max_l_coefficients(2, p)
        assert a1 == pytest.approx(uniform[0])
        assert a2 == pytest.approx(uniform[1])

    def test_eq_12_formula(self):
        p1, p2 = 0.2, 0.6
        union = p1 + p2 - p1 * p2
        a1, a2 = max_l_r2_coefficients(p1, p2)
        assert a1 == pytest.approx(1.0 / (p1 * union))
        assert a2 == pytest.approx(-(1.0 - p1) / (p1 * union))

    def test_invalid_probability(self):
        with pytest.raises(InvalidParameterError):
            max_l_r2_coefficients(0.0, 0.5)
