"""Tests for the derived-estimator adapters."""

from __future__ import annotations

import pytest

from repro.core.derived import (
    DerivedVectorEstimator,
    dense_first_order,
    derive_for_oblivious_scheme,
    sparse_first_batches,
)
from repro.core.functions import boolean_or, value_range
from repro.core.max_oblivious import MaxObliviousL, MaxObliviousU
from repro.core.variance import exact_moments
from repro.exceptions import InvalidOutcomeError, InvalidParameterError
from repro.sampling.dispersed import ObliviousPoissonScheme
from repro.sampling.outcomes import VectorOutcome


class TestOrderKeys:
    def test_dense_first_order(self):
        assert dense_first_order((0.0, 0.0)) < dense_first_order((2.0, 2.0))
        assert dense_first_order((2.0, 2.0)) < dense_first_order((2.0, 1.0))

    def test_sparse_first_batches(self):
        assert sparse_first_batches((0.0, 0.0)) == 0
        assert sparse_first_batches((1.0, 0.0)) == 1
        assert sparse_first_batches((1.0, 2.0)) == 2


class TestDeriveForObliviousScheme:
    def test_order_method_matches_closed_form_max_l(self):
        probabilities = (0.4, 0.7)
        grid = (0.0, 1.0, 3.0)
        derived = derive_for_oblivious_scheme(
            probabilities, max, grid, method="order", function_name="max"
        )
        closed = MaxObliviousL(probabilities)
        scheme = ObliviousPoissonScheme(probabilities)
        for v1 in grid:
            for v2 in grid:
                for outcome, _ in scheme.iter_outcomes((v1, v2)):
                    assert derived.estimate(outcome) == pytest.approx(
                        closed.estimate(outcome), abs=1e-8
                    )

    def test_partition_method_matches_closed_form_max_u(self):
        probabilities = (0.3, 0.3)
        grid = (0.0, 2.0)
        derived = derive_for_oblivious_scheme(
            probabilities, max, grid, method="partition", function_name="max"
        )
        closed = MaxObliviousU(probabilities)
        scheme = ObliviousPoissonScheme(probabilities)
        for v1 in grid:
            for v2 in grid:
                for outcome, _ in scheme.iter_outcomes((v1, v2)):
                    assert derived.estimate(outcome) == pytest.approx(
                        closed.estimate(outcome), rel=1e-4, abs=1e-6
                    )

    def test_unbiased_for_or(self):
        probabilities = (0.5, 0.5, 0.5)
        derived = derive_for_oblivious_scheme(
            probabilities, boolean_or, (0.0, 1.0), method="order",
            function_name="or",
        )
        scheme = ObliviousPoissonScheme(probabilities)
        for v1 in (0.0, 1.0):
            for v2 in (0.0, 1.0):
                for v3 in (0.0, 1.0):
                    data = (v1, v2, v3)
                    mean, _ = exact_moments(derived, scheme, data)
                    assert mean == pytest.approx(boolean_or(data), abs=1e-9)

    def test_range_estimator_derivable(self):
        # RG has no inverse-probability estimator issue under weighted
        # sampling, but under weight-oblivious sampling Algorithm 1 derives
        # an unbiased nonnegative estimator mechanically.
        probabilities = (0.6, 0.6)
        derived = derive_for_oblivious_scheme(
            probabilities,
            value_range,
            (0.0, 1.0, 2.0),
            method="order",
            order_key=lambda v: (value_range(v), max(v)),
            function_name="range",
        )
        scheme = ObliviousPoissonScheme(probabilities)
        for v1 in (0.0, 1.0, 2.0):
            for v2 in (0.0, 1.0, 2.0):
                mean, _ = exact_moments(derived, scheme, (v1, v2))
                assert mean == pytest.approx(abs(v1 - v2), abs=1e-8)

    def test_variance_accessor(self):
        probabilities = (0.5, 0.5)
        derived = derive_for_oblivious_scheme(
            probabilities, max, (0.0, 1.0), method="order"
        )
        scheme = ObliviousPoissonScheme(probabilities)
        _, expected = exact_moments(derived, scheme, (1.0, 0.0))
        assert derived.variance((1.0, 0.0)) == pytest.approx(expected)

    def test_invalid_method_and_grid(self):
        with pytest.raises(InvalidParameterError):
            derive_for_oblivious_scheme((0.5, 0.5), max, (0.0, 1.0),
                                        method="other")
        with pytest.raises(InvalidParameterError):
            derive_for_oblivious_scheme((0.5, 0.5), max, ())


class TestDerivedVectorEstimator:
    @pytest.fixture
    def derived(self):
        return derive_for_oblivious_scheme((0.5, 0.5), max, (0.0, 1.0))

    def test_strict_mode_rejects_unknown_values(self, derived):
        outcome = VectorOutcome.from_vector((7.0, 1.0), {0})
        with pytest.raises(InvalidOutcomeError):
            derived.estimate(outcome)

    def test_lenient_mode_returns_zero(self, derived):
        lenient = DerivedVectorEstimator(
            derived.derived, r=2, strict=False
        )
        outcome = VectorOutcome.from_vector((7.0, 1.0), {0})
        assert lenient.estimate(outcome) == 0.0

    def test_dimension_check(self, derived):
        with pytest.raises(InvalidOutcomeError):
            derived.estimate(VectorOutcome.from_vector((1.0,), {0}))

    def test_metadata(self, derived):
        assert derived.r == 2
        assert derived.is_pareto_optimal
        assert derived.variant == "derived-L"
