"""Tests for the weight-oblivious max estimators (Section 4)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.max_oblivious import (
    MaxObliviousHT,
    MaxObliviousL,
    MaxObliviousU,
    MaxObliviousUAsymmetric,
)
from repro.core.variance import (
    exact_moments,
    exact_variance,
    figure1_max_ht_variance,
    figure1_max_l_variance,
    figure1_max_u_variance,
)
from repro.exceptions import (
    InvalidOutcomeError,
    UnsupportedConfigurationError,
)
from repro.sampling.dispersed import ObliviousPoissonScheme
from repro.sampling.outcomes import VectorOutcome

DATA_R2 = [(3.0, 1.0), (1.0, 3.0), (2.0, 2.0), (5.0, 0.0), (0.0, 5.0),
           (0.0, 0.0), (7.5, 7.4)]


def all_estimators(probabilities):
    return {
        "HT": MaxObliviousHT(probabilities),
        "L": MaxObliviousL(probabilities),
        "U": MaxObliviousU(probabilities),
        "Uas": MaxObliviousUAsymmetric(probabilities),
    }


class TestUnbiasedness:
    @pytest.mark.parametrize(
        "probabilities", [(0.5, 0.5), (0.3, 0.7), (0.9, 0.2), (1.0, 0.4)]
    )
    @pytest.mark.parametrize("values", DATA_R2)
    def test_all_estimators_unbiased_r2(self, probabilities, values):
        scheme = ObliviousPoissonScheme(probabilities)
        for name, estimator in all_estimators(probabilities).items():
            mean, _ = exact_moments(estimator, scheme, values)
            assert mean == pytest.approx(max(values), abs=1e-9), name

    @pytest.mark.parametrize("r", [3, 4, 5])
    @pytest.mark.parametrize("p", [0.2, 0.5, 0.8])
    def test_uniform_max_l_unbiased_higher_dimensions(self, r, p, rng):
        scheme = ObliviousPoissonScheme((p,) * r)
        estimator = MaxObliviousL((p,) * r)
        for _ in range(4):
            values = tuple(np.round(rng.uniform(0, 10, r), 3))
            mean, _ = exact_moments(estimator, scheme, values)
            assert mean == pytest.approx(max(values), abs=1e-8)

    def test_uniform_max_l_unbiased_with_ties(self):
        p = 0.4
        scheme = ObliviousPoissonScheme((p,) * 3)
        estimator = MaxObliviousL((p,) * 3)
        for values in [(2.0, 2.0, 1.0), (3.0, 3.0, 3.0), (0.0, 2.0, 2.0)]:
            mean, _ = exact_moments(estimator, scheme, values)
            assert mean == pytest.approx(max(values), abs=1e-9)


class TestFigure1ClosedForms:
    def test_ht_variance(self, half_scheme):
        estimator = MaxObliviousHT((0.5, 0.5))
        for values in DATA_R2:
            assert exact_variance(estimator, half_scheme, values) == \
                pytest.approx(figure1_max_ht_variance(*values))

    def test_l_variance(self, half_scheme):
        estimator = MaxObliviousL((0.5, 0.5))
        for values in DATA_R2:
            assert exact_variance(estimator, half_scheme, values) == \
                pytest.approx(figure1_max_l_variance(*values))

    def test_u_variance(self, half_scheme):
        estimator = MaxObliviousU((0.5, 0.5))
        for values in DATA_R2:
            assert exact_variance(estimator, half_scheme, values) == \
                pytest.approx(figure1_max_u_variance(*values))

    def test_figure1_estimate_table_p_half(self):
        # The explicit table of Figure 1 at p1 = p2 = 1/2.
        l_estimator = MaxObliviousL((0.5, 0.5))
        u_estimator = MaxObliviousU((0.5, 0.5))
        v1, v2 = 6.0, 1.5
        only_first = VectorOutcome.from_vector((v1, v2), {0})
        both = VectorOutcome.from_vector((v1, v2), {0, 1})
        assert l_estimator.estimate(only_first) == pytest.approx(4 * v1 / 3)
        assert l_estimator.estimate(both) == pytest.approx(
            (8 * max(v1, v2) - 4 * min(v1, v2)) / 3
        )
        assert u_estimator.estimate(only_first) == pytest.approx(2 * v1)
        assert u_estimator.estimate(both) == pytest.approx(
            2 * max(v1, v2) - 2 * min(v1, v2)
        )


class TestDominanceAndOptimality:
    @pytest.mark.parametrize("probabilities", [(0.5, 0.5), (0.3, 0.7), (0.2, 0.2)])
    def test_l_and_u_dominate_ht(self, probabilities):
        scheme = ObliviousPoissonScheme(probabilities)
        ht = MaxObliviousHT(probabilities)
        for name in ("L", "U", "Uas"):
            estimator = all_estimators(probabilities)[name]
            for values in DATA_R2:
                assert exact_variance(estimator, scheme, values) <= \
                    exact_variance(ht, scheme, values) + 1e-9

    def test_l_and_u_are_incomparable(self, half_scheme):
        # L is better on similar values, U is better on disjoint values.
        l_estimator = MaxObliviousL((0.5, 0.5))
        u_estimator = MaxObliviousU((0.5, 0.5))
        similar = (4.0, 4.0)
        disjoint = (4.0, 0.0)
        assert exact_variance(l_estimator, half_scheme, similar) < \
            exact_variance(u_estimator, half_scheme, similar)
        assert exact_variance(u_estimator, half_scheme, disjoint) < \
            exact_variance(l_estimator, half_scheme, disjoint)


class TestNonnegativityAndMonotonicity:
    @pytest.mark.parametrize("probabilities", [(0.5, 0.5), (0.3, 0.7), (0.15, 0.9)])
    def test_estimates_nonnegative_on_all_outcomes(self, probabilities):
        scheme = ObliviousPoissonScheme(probabilities)
        for values in DATA_R2:
            for _, estimator in all_estimators(probabilities).items():
                for outcome, _ in scheme.iter_outcomes(values):
                    assert estimator.estimate(outcome) >= -1e-12

    def test_max_l_monotone_in_information(self):
        # Adding the second (smaller) sampled entry cannot decrease the
        # estimate below that of the less informative outcome with only the
        # larger entry... it can change, but monotonicity requires
        # estimate(S2) >= estimate(S1) when V*(S2) subset of V*(S1).
        estimator = MaxObliviousL((0.4, 0.6))
        v1, v2 = 5.0, 2.0
        less = VectorOutcome.from_vector((v1, v2), {0})
        more = VectorOutcome.from_vector((v1, v2), {0, 1})
        assert estimator.estimate(more) >= estimator.estimate(less) - 1e-12

    def test_uniform_max_l_monotone_r3(self, rng):
        estimator = MaxObliviousL((0.3,) * 3)
        for _ in range(20):
            values = tuple(np.round(rng.uniform(0, 5, 3), 2))
            # Compare nested outcomes S1 subset S2.
            indices = list(range(3))
            rng.shuffle(indices)
            smaller = set(indices[:1])
            larger = set(indices[:2])
            est_small = estimator.estimate(
                VectorOutcome.from_vector(values, smaller)
            )
            est_large = estimator.estimate(
                VectorOutcome.from_vector(values, larger)
            )
            assert est_large >= est_small - 1e-9


class TestConfigurationErrors:
    def test_non_uniform_high_dimension_rejected(self):
        with pytest.raises(UnsupportedConfigurationError):
            MaxObliviousL((0.5, 0.6, 0.7))

    def test_u_requires_two_instances(self):
        with pytest.raises(UnsupportedConfigurationError):
            MaxObliviousU((0.5, 0.5, 0.5))
        with pytest.raises(UnsupportedConfigurationError):
            MaxObliviousUAsymmetric((0.5, 0.5, 0.5))

    def test_dimension_mismatch_raises(self):
        estimator = MaxObliviousL((0.5, 0.5))
        with pytest.raises(InvalidOutcomeError):
            estimator.estimate(VectorOutcome.from_vector((1.0, 2.0, 3.0), {0}))

    def test_coefficients_only_for_uniform(self):
        estimator = MaxObliviousL((0.3, 0.7))
        with pytest.raises(UnsupportedConfigurationError):
            estimator.coefficients()

    def test_uniform_coefficients_accessible(self):
        estimator = MaxObliviousL((0.3, 0.3, 0.3))
        assert estimator.coefficients().shape == (3,)


class TestDeterminingVector:
    def test_unsampled_entries_get_max_sampled_value(self):
        estimator = MaxObliviousL((0.5, 0.5, 0.5))
        outcome = VectorOutcome.from_vector((1.0, 7.0, 3.0), {1, 2})
        assert estimator.determining_vector(outcome) == (7.0, 7.0, 3.0)

    def test_empty_outcome_gives_zero_vector(self):
        estimator = MaxObliviousL((0.5, 0.5))
        outcome = VectorOutcome.from_vector((1.0, 7.0), set())
        assert estimator.determining_vector(outcome) == (0.0, 0.0)


class TestAsymmetricU:
    def test_asymmetric_estimates(self):
        p1, p2 = 0.3, 0.4
        estimator = MaxObliviousUAsymmetric((p1, p2))
        v1, v2 = 4.0, 2.0
        first = VectorOutcome.from_vector((v1, v2), {0})
        second = VectorOutcome.from_vector((v1, v2), {1})
        assert estimator.estimate(first) == pytest.approx(v1 / p1)
        assert estimator.estimate(second) == pytest.approx(
            v2 / max(1.0 - p1, p2)
        )

    def test_asymmetry(self):
        estimator = MaxObliviousUAsymmetric((0.3, 0.3))
        outcome_first = VectorOutcome.from_vector((2.0, 0.0), {0})
        outcome_second = VectorOutcome.from_vector((0.0, 2.0), {1})
        assert estimator.estimate(outcome_first) != pytest.approx(
            estimator.estimate(outcome_second)
        )

    def test_symmetric_u_is_symmetric(self):
        estimator = MaxObliviousU((0.3, 0.3))
        outcome_first = VectorOutcome.from_vector((2.0, 0.0), {0})
        outcome_second = VectorOutcome.from_vector((0.0, 2.0), {1})
        assert estimator.estimate(outcome_first) == pytest.approx(
            estimator.estimate(outcome_second)
        )

    @pytest.mark.parametrize(
        "exhaustive_values",
        [list(itertools.product([0.0, 1.0, 3.0], repeat=2))],
    )
    def test_exhaustive_unbiasedness_small_domain(self, exhaustive_values):
        probabilities = (0.35, 0.55)
        scheme = ObliviousPoissonScheme(probabilities)
        for name, estimator in all_estimators(probabilities).items():
            for values in exhaustive_values:
                mean, _ = exact_moments(estimator, scheme, values)
                assert mean == pytest.approx(max(values), abs=1e-9), (
                    name, values
                )
