"""Package-level tests: public exports and exception hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.4.0"

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        import repro.aggregates
        import repro.analysis
        import repro.core
        import repro.datasets
        import repro.experiments
        import repro.sampling
        import repro.service
        import repro.streaming

        for module in (repro.core, repro.sampling, repro.aggregates,
                       repro.analysis, repro.datasets, repro.experiments,
                       repro.streaming, repro.service):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


class TestExceptions:
    def test_hierarchy(self):
        assert issubclass(exceptions.EstimatorDerivationError,
                          exceptions.ReproError)
        assert issubclass(exceptions.UnsupportedConfigurationError,
                          exceptions.ReproError)
        assert issubclass(exceptions.InvalidOutcomeError,
                          exceptions.ReproError)
        assert issubclass(exceptions.InvalidParameterError,
                          exceptions.ReproError)
        assert issubclass(exceptions.InvalidParameterError, ValueError)
        assert issubclass(exceptions.SketchCodecError,
                          exceptions.ReproError)
        assert issubclass(exceptions.SketchCodecError, ValueError)
        assert issubclass(exceptions.UnknownStoreError,
                          exceptions.ReproError)
        assert issubclass(exceptions.UnknownStoreError, KeyError)

    def test_invalid_parameter_is_catchable_as_value_error(self):
        from repro._validation import check_probability

        with pytest.raises(ValueError):
            check_probability(2.0)
