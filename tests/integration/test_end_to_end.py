"""End-to-end integration tests across the sampling, estimation and
aggregation layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates.distinct import distinct_count_ht, distinct_count_l
from repro.aggregates.dominance import (
    max_dominance_estimates,
    max_dominance_exact_variances,
    tau_star_for_sampling_fraction,
)
from repro.aggregates.sum_estimator import sum_aggregate_oblivious
from repro.analysis.comparison import compare_estimators
from repro.core.functions import maximum
from repro.core.max_oblivious import MaxObliviousHT, MaxObliviousL
from repro.core.order_based import DiscreteModel, OrderBasedDeriver
from repro.datasets.synthetic import (
    correlated_instance_pair,
    set_pair_with_jaccard,
    zipf_traffic_pair,
)
from repro.sampling.dispersed import ObliviousPoissonScheme
from repro.sampling.seeds import SeedAssigner


class TestDistinctCountPipeline:
    """Sets -> weighted samples with hash seeds -> distinct count."""

    def test_l_beats_ht_on_realistic_workload(self):
        set1, set2 = set_pair_with_jaccard(5000, 0.6)
        truth = len(set1 | set2)
        p = 0.05
        ht_errors, l_errors = [], []
        for salt in range(30):
            seeds = SeedAssigner(salt=salt)
            sample1 = {k for k in set1 if seeds.seed(k, instance=1) <= p}
            sample2 = {k for k in set2 if seeds.seed(k, instance=2) <= p}
            lookup1 = lambda key, s=seeds: s.seed(key, instance=1)
            lookup2 = lambda key, s=seeds: s.seed(key, instance=2)
            ht = distinct_count_ht(sample1, sample2, p, p, lookup1, lookup2)
            l = distinct_count_l(sample1, sample2, p, p, lookup1, lookup2)
            ht_errors.append((ht.estimate - truth) ** 2)
            l_errors.append((l.estimate - truth) ** 2)
        assert np.mean(l_errors) < np.mean(ht_errors)
        assert np.sqrt(np.mean(l_errors)) / truth < 0.25


class TestMaxDominancePipeline:
    """Traffic workload -> PPS samples -> max dominance (the Figure 7 path)."""

    def test_variance_ratio_and_estimates(self):
        dataset = zipf_traffic_pair(
            n_keys_per_instance=500, n_common_keys=250, total_flows=2e4,
            rng=1,
        )
        labels = ("hour1", "hour2")
        tau_star = tuple(
            tau_star_for_sampling_fraction(
                dataset.instance(label).values(), 0.1
            )
            for label in labels
        )
        var_ht, var_l = max_dominance_exact_variances(
            dataset, labels, tau_star, grid_size=401
        )
        assert var_l < var_ht
        result = max_dominance_estimates(
            dataset, labels, tau_star, SeedAssigner(salt=0)
        )
        # A single sample's estimate should be within a few standard
        # deviations of the truth.
        assert abs(result.l - result.true_value) < 6 * np.sqrt(var_l)
        assert abs(result.ht - result.true_value) < 6 * np.sqrt(var_ht)


class TestDerivationMatchesClosedForm:
    """The generic Algorithm 1 engine and the closed-form estimators give the
    same aggregate estimates on a shared workload."""

    def test_sum_aggregate_consistency(self):
        probabilities = (0.5, 0.5)
        dataset = correlated_instance_pair(n_keys=60, rng=2)
        # Derive the estimator on the value grid actually present.
        values = sorted(
            {0.0}
            | {
                round(v, 6)
                for label in dataset.instance_labels
                for v in dataset.instance(label).values()
            }
        )
        closed = sum_aggregate_oblivious(
            dataset,
            labels=("a", "b"),
            probabilities=probabilities,
            estimator=MaxObliviousL(probabilities),
            seed_assigner=SeedAssigner(salt=3),
            true_function=maximum,
        )
        assert closed.estimate >= 0.0
        assert closed.true_value == pytest.approx(
            dataset.max_dominance(("a", "b"))
        )

    def test_comparison_table_on_derived_model(self):
        probabilities = (0.4, 0.6)
        scheme = ObliviousPoissonScheme(probabilities)
        # The derivation needs the full product grid as its domain; a
        # restricted domain would yield a different (more informed) optimal
        # estimator.
        grid = (0.0, 1.0, 2.0)
        vectors = [(a, b) for a in grid for b in grid]
        model = DiscreteModel.from_scheme(scheme, vectors)
        derived = OrderBasedDeriver(
            model,
            max,
            lambda v: (0 if max(v) == 0 else 1,
                       sum(1 for x in v if x < max(v))),
        ).derive()
        comparison = compare_estimators(
            {
                "HT": MaxObliviousHT(probabilities),
                "L": MaxObliviousL(probabilities),
            },
            scheme,
            vectors,
            baseline="HT",
        )
        for row in comparison.rows:
            assert derived.variance(row["vector"]) == pytest.approx(
                row["variances"]["L"], abs=1e-8
            )


class TestSeedConsistencyAcrossLayers:
    """The same SeedAssigner drives sampling in aggregates and raw schemes."""

    def test_sample_membership_matches_seed_rule(self):
        dataset = correlated_instance_pair(n_keys=100, rng=4)
        seeds = SeedAssigner(salt=6)
        p = 0.5
        result = sum_aggregate_oblivious(
            dataset,
            labels=("a", "b"),
            probabilities=(p, p),
            estimator=MaxObliviousL((p, p)),
            seed_assigner=seeds,
            true_function=maximum,
        )
        # Recompute the estimate by hand from the seed rule.
        from repro.sampling.outcomes import VectorOutcome

        estimator = MaxObliviousL((p, p))
        manual = 0.0
        for key in dataset.active_keys(("a", "b")):
            values = dataset.value_vector(key, ("a", "b"))
            sampled = {
                i
                for i, label in enumerate(("a", "b"))
                if seeds.seed(key, instance=label) <= p
            }
            if sampled:
                manual += estimator.estimate(
                    VectorOutcome.from_vector(values, sampled)
                )
        assert manual == pytest.approx(result.estimate)
