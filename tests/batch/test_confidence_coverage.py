"""Monte Carlo coverage of the per-query ``ci90`` intervals (slow suite).

The per-query quality payload promises a nominal-90% normal interval
around the estimate.  Over repeated sketch builds of a *fixed*
population — only the sampling seeds vary across trials, which is
exactly the randomness the paper's variance analysis integrates over —
the fraction of intervals that cover the true value must sit near 90%:
the acceptance band is [85%, 95%], about 2.5 standard errors wide at
250 trials.  Checked for the two estimator families that report
confidence: bottom-k subset sums (rank-conditioning plug-in variance)
and distinct counts (Section 8.1 variance at the plug-in estimate).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.seeds import SeedAssigner
from repro.service.queries import Query
from repro.service.store import SketchStore

pytestmark = pytest.mark.slow

N_TRIALS = 250
COVERAGE_BAND = (0.85, 0.95)
SEED = 20110613


def population(n, seed=SEED):
    generator = np.random.default_rng(seed)
    keys = generator.choice(10**6, size=n, replace=False)
    values = generator.random(n) * 5.0 + 0.01
    return keys, values


def coverage_message(name, covered):
    rate = covered / N_TRIALS
    return (
        f"{name}: ci90 covered the truth in {covered}/{N_TRIALS} trials "
        f"({rate:.1%}); expected within {COVERAGE_BAND}"
    )


class TestCi90Coverage:
    def test_bottom_k_sum_coverage(self):
        keys, values = population(1500)
        truth = float(values.sum())
        covered = 0
        for trial in range(N_TRIALS):
            store = SketchStore()
            store.create(
                "bk", "bottom_k", k=96,
                seed_assigner=SeedAssigner(salt=1000 + trial),
            )
            store.ingest("bk", "d", keys, values)
            result = store.query(
                "bk", Query("sum", ("d",), confidence=True)
            )
            interval = result.confidence["ci90"]
            covered += interval["lower"] <= truth <= interval["upper"]
        rate = covered / N_TRIALS
        assert COVERAGE_BAND[0] <= rate <= COVERAGE_BAND[1], (
            coverage_message("bottom-k sum", covered)
        )

    def test_distinct_count_coverage(self):
        keys, _ = population(1200)
        # two overlapping unit-weight instances; the union is the truth
        first, second = keys[:800], keys[400:]
        truth = float(len(set(first) | set(second)))
        covered = 0
        for trial in range(N_TRIALS):
            store = SketchStore()
            store.create(
                "traffic", "poisson", threshold=0.35,
                seed_assigner=SeedAssigner(salt=5000 + trial),
            )
            store.ingest("traffic", "mon", first, np.ones(len(first)))
            store.ingest("traffic", "tue", second, np.ones(len(second)))
            result = store.query(
                "traffic",
                Query("distinct", ("mon", "tue"), confidence=True),
            )
            interval = result.confidence["ci90"]
            covered += interval["lower"] <= truth <= interval["upper"]
        rate = covered / N_TRIALS
        assert COVERAGE_BAND[0] <= rate <= COVERAGE_BAND[1], (
            coverage_message("distinct", covered)
        )
