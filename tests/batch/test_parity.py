"""Scalar-parity golden tests for the batch estimation engine.

For every estimator with a vectorized ``estimate_batch``, randomized
outcomes spanning the paper's regimes (dense, sparse, all-zero,
single-entry, empty, and p -> 1 edge cases) must produce estimates equal
to the scalar ``estimate`` loop to within 1e-12, and invalid batches must
raise the same exceptions the scalar path raises.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import OutcomeBatch
from repro.core.ht import HorvitzThompsonOblivious, InverseProbabilityEstimator
from repro.core.max_oblivious import (
    MaxObliviousHT,
    MaxObliviousL,
    MaxObliviousU,
    MaxObliviousUAsymmetric,
)
from repro.core.max_weighted import MaxPpsHT, MaxPpsL
from repro.core.or_estimators import (
    OrKnownSeedsHT,
    OrKnownSeedsL,
    OrKnownSeedsU,
    OrObliviousHT,
    OrObliviousL,
    OrObliviousU,
)
from repro.exceptions import InvalidOutcomeError
from repro.sampling.outcomes import VectorOutcome

TOLERANCE = dict(rtol=1e-12, atol=1e-12)


# ----------------------------------------------------------------------
# Outcome generators: every inclusion pattern and value regime.
# ----------------------------------------------------------------------
def _structured_masks(rng, n, r):
    """Inclusion masks covering empty, single-entry, full and random rows."""
    masks = [np.zeros(r, dtype=bool), np.ones(r, dtype=bool)]
    for index in range(r):
        single = np.zeros(r, dtype=bool)
        single[index] = True
        masks.append(single)
    while len(masks) < n:
        masks.append(rng.random(r) < rng.choice([0.2, 0.5, 0.9]))
    return masks[:n]


def oblivious_outcomes(rng, n=200, r=2, binary=False, seeds=False):
    outcomes = []
    for mask in _structured_masks(rng, n, r):
        if binary:
            values = rng.integers(0, 2, r).astype(float)
        else:
            regime = rng.choice(["dense", "sparse", "zero"])
            if regime == "dense":
                values = np.round(rng.gamma(2.0, 3.0, r) + 0.5, 3)
            elif regime == "sparse":
                values = np.round(
                    rng.gamma(2.0, 3.0, r) * (rng.random(r) < 0.4), 3
                )
            else:
                values = np.zeros(r)
        sampled = {i for i in range(r) if mask[i]}
        seed_vector = list(rng.random(r)) if seeds else None
        outcomes.append(
            VectorOutcome.from_vector(tuple(values), sampled, seeds=seed_vector)
        )
    return outcomes


def pps_outcomes(rng, tau_star, n=200):
    """Consistent PPS outcomes: sampled iff v > 0 and v >= u * tau."""
    r = len(tau_star)
    outcomes = []
    for _ in range(n):
        values = np.round(
            rng.gamma(2.0, 0.6 * max(tau_star), r) * (rng.random(r) < 0.7), 3
        )
        seeds = rng.random(r)
        sampled = {
            i
            for i in range(r)
            if values[i] > 0.0 and values[i] >= seeds[i] * tau_star[i]
        }
        outcomes.append(
            VectorOutcome.from_vector(tuple(values), sampled, seeds=list(seeds))
        )
    return outcomes


def known_seed_or_outcomes(rng, probabilities, n=200):
    """Weighted binary sampling with known seeds (Section 5.1 model)."""
    r = len(probabilities)
    outcomes = []
    for _ in range(n):
        values = rng.integers(0, 2, r).astype(float)
        seeds = rng.random(r)
        sampled = {
            i
            for i in range(r)
            if values[i] == 1.0 and seeds[i] <= probabilities[i]
        }
        outcomes.append(
            VectorOutcome.from_vector(tuple(values), sampled, seeds=list(seeds))
        )
    return outcomes


def assert_parity(estimator, outcomes):
    batch = OutcomeBatch.from_outcomes(outcomes)
    scalar = np.array([estimator.estimate(o) for o in outcomes], dtype=float)
    batched = estimator.estimate_batch(batch)
    assert batched.shape == scalar.shape
    np.testing.assert_allclose(batched, scalar, **TOLERANCE)
    np.testing.assert_allclose(
        estimator.estimate_many(outcomes), scalar, **TOLERANCE
    )


# ----------------------------------------------------------------------
# Golden parity per estimator family.
# ----------------------------------------------------------------------
PROBABILITY_GRID = [(0.3, 0.7), (0.5, 0.5), (0.05, 0.95), (1.0, 1.0), (1.0, 0.4)]


class TestObliviousMaxParity:
    @pytest.mark.parametrize("probabilities", PROBABILITY_GRID)
    def test_ht(self, rng, probabilities):
        assert_parity(MaxObliviousHT(probabilities), oblivious_outcomes(rng))

    @pytest.mark.parametrize("probabilities", PROBABILITY_GRID)
    def test_l_r2(self, rng, probabilities):
        assert_parity(MaxObliviousL(probabilities), oblivious_outcomes(rng))

    @pytest.mark.parametrize("r", [1, 2, 3, 5])
    @pytest.mark.parametrize("p", [0.05, 0.3, 1.0])
    def test_l_uniform(self, rng, r, p):
        assert_parity(
            MaxObliviousL((p,) * r), oblivious_outcomes(rng, r=r)
        )

    @pytest.mark.parametrize("probabilities", PROBABILITY_GRID)
    def test_u(self, rng, probabilities):
        assert_parity(MaxObliviousU(probabilities), oblivious_outcomes(rng))

    @pytest.mark.parametrize("probabilities", PROBABILITY_GRID)
    def test_u_asymmetric(self, rng, probabilities):
        assert_parity(
            MaxObliviousUAsymmetric(probabilities), oblivious_outcomes(rng)
        )

    def test_generic_ht_function_fallback(self, rng):
        """A custom scalar function without a batch twin still matches."""
        estimator = HorvitzThompsonOblivious(
            (0.4, 0.6),
            function=lambda values: min(values) + 0.5 * max(values),
            function_name="custom",
        )
        assert estimator.batch_function is None
        assert_parity(estimator, oblivious_outcomes(rng))


class TestOrParity:
    @pytest.mark.parametrize(
        "estimator_class", [OrObliviousHT, OrObliviousL, OrObliviousU]
    )
    @pytest.mark.parametrize("probabilities", PROBABILITY_GRID)
    def test_oblivious(self, rng, estimator_class, probabilities):
        assert_parity(
            estimator_class(probabilities),
            oblivious_outcomes(rng, binary=True),
        )

    @pytest.mark.parametrize(
        "estimator_class", [OrKnownSeedsHT, OrKnownSeedsL, OrKnownSeedsU]
    )
    @pytest.mark.parametrize("probabilities", [(0.3, 0.7), (0.5, 0.5)])
    def test_known_seeds(self, rng, estimator_class, probabilities):
        assert_parity(
            estimator_class(probabilities),
            known_seed_or_outcomes(rng, probabilities),
        )


class TestPpsMaxParity:
    @pytest.mark.parametrize(
        "tau_star", [(8.0, 8.0), (8.0, 15.0), (2.0, 40.0)]
    )
    def test_ht(self, rng, tau_star):
        assert_parity(MaxPpsHT(tau_star), pps_outcomes(rng, tau_star))

    def test_ht_r3(self, rng):
        tau_star = (8.0, 15.0, 4.0)
        assert_parity(MaxPpsHT(tau_star), pps_outcomes(rng, tau_star))

    @pytest.mark.parametrize(
        "tau_star", [(8.0, 8.0), (8.0, 15.0), (2.0, 40.0)]
    )
    def test_l(self, rng, tau_star):
        assert_parity(MaxPpsL(tau_star), pps_outcomes(rng, tau_star))

    def test_l_covers_every_closed_form(self, rng):
        """Force outcomes through each Figure 3 case (Eqs. 25/26/29/30)."""
        tau_star = (10.0, 10.0)
        estimator = MaxPpsL(tau_star)
        outcomes = [
            # both sampled, equal entries (Eq. 25)
            VectorOutcome.from_vector((4.0, 4.0), {0, 1}, seeds=[0.1, 0.2]),
            # both above the thresholds (Eq. 26 via b >= tau_b)
            VectorOutcome.from_vector((25.0, 12.0), {0, 1}, seeds=[0.5, 0.9]),
            # larger certain (a >= tau_a), smaller below threshold
            VectorOutcome.from_vector((15.0, 3.0), {0, 1}, seeds=[0.9, 0.2]),
            # both below both thresholds (Eq. 29)
            VectorOutcome.from_vector((6.0, 2.0), {0, 1}, seeds=[0.3, 0.1]),
            # empty outcome
            VectorOutcome.from_vector((6.0, 2.0), set(), seeds=[0.9, 0.9]),
            # single entry sampled, partial-information bound
            VectorOutcome.from_vector((6.0, 0.0), {0}, seeds=[0.3, 0.8]),
        ]
        # Eq. (30) requires tau_b <= a <= tau_a, i.e. heterogeneous taus.
        hetero = MaxPpsL((20.0, 5.0))
        hetero_outcomes = [
            VectorOutcome.from_vector((9.0, 3.0), {0, 1}, seeds=[0.2, 0.3]),
        ]
        assert_parity(estimator, outcomes)
        assert_parity(hetero, hetero_outcomes)


class TestExceptionParity:
    def test_r_mismatch(self, rng):
        outcomes = oblivious_outcomes(rng, n=10, r=3)
        batch = OutcomeBatch.from_outcomes(outcomes)
        for estimator in (
            MaxObliviousHT((0.5, 0.5)),
            MaxObliviousL((0.5, 0.5)),
            MaxObliviousU((0.5, 0.5)),
            MaxObliviousUAsymmetric((0.5, 0.5)),
            MaxPpsHT((8.0, 8.0)),
        ):
            with pytest.raises(InvalidOutcomeError):
                estimator.estimate(outcomes[0])
            with pytest.raises(InvalidOutcomeError):
                estimator.estimate_batch(batch)

    def test_or_non_binary_values(self):
        outcome = VectorOutcome.from_vector((2.0, 1.0), {0, 1})
        batch = OutcomeBatch.from_outcomes([outcome])
        for estimator in (OrObliviousL((0.5, 0.5)), OrObliviousU((0.5, 0.5))):
            with pytest.raises(InvalidOutcomeError):
                estimator.estimate(outcome)
            with pytest.raises(InvalidOutcomeError):
                estimator.estimate_batch(batch)

    def test_known_seed_or_requires_seeds(self):
        outcome = VectorOutcome.from_vector((1.0, 1.0), {0, 1})
        batch = OutcomeBatch.from_outcomes([outcome])
        estimator = OrKnownSeedsL((0.5, 0.5))
        with pytest.raises(InvalidOutcomeError):
            estimator.estimate(outcome)
        with pytest.raises(InvalidOutcomeError):
            estimator.estimate_batch(batch)

    def test_pps_requires_seeds(self):
        outcome = VectorOutcome.from_vector((4.0, 2.0), {0, 1})
        batch = OutcomeBatch.from_outcomes([outcome])
        for estimator in (MaxPpsHT((8.0, 8.0)), MaxPpsL((8.0, 8.0))):
            with pytest.raises(InvalidOutcomeError):
                estimator.estimate(outcome)
            with pytest.raises(InvalidOutcomeError):
                estimator.estimate_batch(batch)

    def test_pps_l_zero_sampled_value(self):
        outcome = VectorOutcome.from_vector(
            (0.0, 4.0), {0, 1}, seeds=[0.1, 0.1]
        )
        batch = OutcomeBatch.from_outcomes([outcome])
        estimator = MaxPpsL((8.0, 8.0))
        with pytest.raises(InvalidOutcomeError):
            estimator.estimate(outcome)
        with pytest.raises(InvalidOutcomeError):
            estimator.estimate_batch(batch)


class TestEstimateManyDispatch:
    def test_empty_iterable_returns_empty_float64(self):
        for estimator in (
            MaxObliviousL((0.5, 0.5)),
            InverseProbabilityEstimator(
                r=2,
                in_s_star=lambda outcome: outcome.is_full,
                f_star=lambda outcome: outcome.max_sampled(),
                p_star=lambda outcome: 0.25,
            ),
        ):
            result = estimator.estimate_many([])
            assert result.shape == (0,)
            assert result.dtype == np.float64

    def test_generator_input(self, rng):
        estimator = MaxObliviousL((0.3, 0.7))
        outcomes = oblivious_outcomes(rng, n=25)
        expected = [estimator.estimate(o) for o in outcomes]
        result = estimator.estimate_many(o for o in outcomes)
        np.testing.assert_allclose(result, expected, **TOLERANCE)

    def test_heterogeneous_outcomes_fall_back_to_scalar(self):
        estimator = MaxObliviousL((0.5, 0.5))
        outcomes = [
            VectorOutcome.from_vector((3.0, 1.0), {0, 1}),
            VectorOutcome.from_vector((3.0, 1.0), {0, 1}, seeds=[0.2, 0.4]),
        ]
        expected = [estimator.estimate(o) for o in outcomes]
        np.testing.assert_allclose(
            estimator.estimate_many(outcomes), expected, **TOLERANCE
        )

    def test_batch_path_flag(self):
        assert MaxObliviousL((0.5, 0.5)).has_batch_path
        fallback = InverseProbabilityEstimator(
            r=2,
            in_s_star=lambda outcome: outcome.is_full,
            f_star=lambda outcome: outcome.max_sampled(),
            p_star=lambda outcome: 0.25,
        )
        assert not fallback.has_batch_path
        outcome = VectorOutcome.from_vector((3.0, 1.0), {0, 1})
        batch = OutcomeBatch.from_outcomes([outcome])
        np.testing.assert_allclose(
            fallback.estimate_batch(batch), [fallback.estimate(outcome)]
        )
