"""Monte Carlo unbiasedness regression tests (slow suite).

For each estimator, the empirical mean over >= 20k sampled outcomes of a
fixed data vector must fall inside a 5-sigma normal confidence interval of
the true function value.  The outcomes are drawn and estimated through the
columnar batch engine, which is what keeps 20k-trial runs cheap; the batch
engine itself is held to scalar parity by ``test_parity.py``.

The suite is marked ``slow`` and deselected by default (see ``pytest.ini``);
a dedicated CI job runs it with ``-m slow``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.montecarlo import simulate_estimator
from repro.batch import OutcomeBatch
from repro.core.max_oblivious import (
    MaxObliviousHT,
    MaxObliviousL,
    MaxObliviousU,
    MaxObliviousUAsymmetric,
)
from repro.core.max_weighted import MaxPpsHT, MaxPpsL
from repro.core.or_estimators import (
    OrKnownSeedsHT,
    OrKnownSeedsL,
    OrKnownSeedsU,
    OrObliviousHT,
    OrObliviousL,
    OrObliviousU,
)
from repro.sampling.dispersed import ObliviousPoissonScheme, PpsPoissonScheme

pytestmark = pytest.mark.slow

N_TRIALS = 25_000
N_SIGMA = 5.0
SEED = 20110613


def assert_unbiased(result, target):
    assert result.n_trials >= 20_000
    assert result.mean_within(target, n_sigma=N_SIGMA), (
        f"empirical mean {result.mean} outside the {N_SIGMA}-sigma interval "
        f"around {target} (stderr {result.standard_error})"
    )


class TestObliviousMaxUnbiasedness:
    PROBABILITIES = (0.4, 0.7)

    @pytest.mark.parametrize(
        "estimator_class",
        [MaxObliviousHT, MaxObliviousL, MaxObliviousU, MaxObliviousUAsymmetric],
    )
    @pytest.mark.parametrize(
        "values", [(4.0, 1.0), (1.0, 4.0), (3.0, 3.0), (5.0, 0.0), (0.0, 2.0)]
    )
    def test_mean_matches_maximum(self, estimator_class, values):
        scheme = ObliviousPoissonScheme(self.PROBABILITIES)
        estimator = estimator_class(self.PROBABILITIES)
        result = simulate_estimator(
            estimator, scheme, values, n_trials=N_TRIALS, rng=SEED
        )
        assert_unbiased(result, max(values))

    @pytest.mark.parametrize("values", [(4.0, 1.0, 2.0, 3.0), (2.0, 0.0, 0.0, 7.0)])
    def test_uniform_l_any_r(self, values):
        probabilities = (0.3,) * 4
        scheme = ObliviousPoissonScheme(probabilities)
        result = simulate_estimator(
            MaxObliviousL(probabilities), scheme, values,
            n_trials=N_TRIALS, rng=SEED,
        )
        assert_unbiased(result, max(values))


class TestObliviousOrUnbiasedness:
    PROBABILITIES = (0.4, 0.7)

    @pytest.mark.parametrize(
        "estimator_class", [OrObliviousHT, OrObliviousL, OrObliviousU]
    )
    @pytest.mark.parametrize("values", [(1.0, 1.0), (1.0, 0.0), (0.0, 1.0), (0.0, 0.0)])
    def test_mean_matches_or(self, estimator_class, values):
        scheme = ObliviousPoissonScheme(self.PROBABILITIES)
        result = simulate_estimator(
            estimator_class(self.PROBABILITIES), scheme, values,
            n_trials=N_TRIALS, rng=SEED,
        )
        assert_unbiased(result, float(any(values)))


class TestKnownSeedOrUnbiasedness:
    """Weighted binary sampling with known seeds (Section 5.1 model)."""

    PROBABILITIES = (0.4, 0.7)

    @pytest.mark.parametrize(
        "estimator_class", [OrKnownSeedsHT, OrKnownSeedsL, OrKnownSeedsU]
    )
    @pytest.mark.parametrize("values", [(1.0, 1.0), (1.0, 0.0), (0.0, 1.0)])
    def test_mean_matches_or(self, estimator_class, values):
        probabilities = np.asarray(self.PROBABILITIES)
        values_vector = np.asarray(values)
        rng = np.random.default_rng(SEED)
        seeds = rng.random((N_TRIALS, 2))
        sampled = (values_vector[None, :] == 1.0) & (seeds <= probabilities)
        batch = OutcomeBatch(
            values=np.broadcast_to(values_vector, sampled.shape),
            sampled=sampled,
            seeds=seeds,
        )
        estimates = estimator_class(self.PROBABILITIES).estimate_batch(batch)
        mean = float(estimates.mean())
        stderr = float(estimates.std(ddof=1) / np.sqrt(N_TRIALS))
        target = float(any(values))
        assert abs(mean - target) <= N_SIGMA * max(stderr, 1e-12)


class TestPpsMaxUnbiasedness:
    TAU_STAR = (10.0, 10.0)

    @pytest.mark.parametrize("estimator_class", [MaxPpsHT, MaxPpsL])
    @pytest.mark.parametrize(
        "values", [(6.0, 3.0), (3.0, 6.0), (12.0, 2.0), (4.0, 0.0)]
    )
    def test_mean_matches_maximum(self, estimator_class, values):
        scheme = PpsPoissonScheme(self.TAU_STAR, known_seeds=True)
        result = simulate_estimator(
            estimator_class(self.TAU_STAR), scheme, values,
            n_trials=N_TRIALS, rng=SEED,
        )
        assert_unbiased(result, max(values))

    def test_heterogeneous_thresholds(self):
        tau_star = (20.0, 5.0)
        scheme = PpsPoissonScheme(tau_star, known_seeds=True)
        result = simulate_estimator(
            MaxPpsL(tau_star), scheme, (9.0, 3.0),
            n_trials=N_TRIALS, rng=SEED,
        )
        assert_unbiased(result, 9.0)
