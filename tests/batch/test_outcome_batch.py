"""Tests for the columnar OutcomeBatch container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import OutcomeBatch
from repro.exceptions import InvalidOutcomeError
from repro.sampling.outcomes import VectorOutcome


def _random_outcomes(rng, n, r, with_seeds):
    outcomes = []
    for _ in range(n):
        values = np.round(rng.gamma(2.0, 3.0, r), 3)
        mask = rng.random(r) < 0.6
        sampled = {i for i in range(r) if mask[i]}
        seeds = list(rng.random(r)) if with_seeds else None
        outcomes.append(
            VectorOutcome.from_vector(tuple(values), sampled, seeds=seeds)
        )
    return outcomes


class TestConstruction:
    def test_shapes_and_dtypes(self):
        batch = OutcomeBatch(
            values=[[1.0, 2.0], [3.0, 0.0]],
            sampled=[[True, True], [True, False]],
        )
        assert batch.n_outcomes == 2
        assert batch.r == 2
        assert len(batch) == 2
        assert batch.values.dtype == np.float64
        assert batch.sampled.dtype == bool
        assert not batch.knows_seeds

    def test_unsampled_values_canonicalised_to_zero(self):
        batch = OutcomeBatch(
            values=[[1.0, 99.0]], sampled=[[True, False]]
        )
        assert batch.values[0, 1] == 0.0

    def test_rejects_1d_mask(self):
        with pytest.raises(InvalidOutcomeError):
            OutcomeBatch(values=[1.0, 2.0], sampled=[True, False])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(InvalidOutcomeError):
            OutcomeBatch(
                values=[[1.0, 2.0, 3.0]], sampled=[[True, False]]
            )

    def test_rejects_seed_shape_mismatch(self):
        with pytest.raises(InvalidOutcomeError):
            OutcomeBatch(
                values=[[1.0, 2.0]],
                sampled=[[True, False]],
                seeds=[[0.5]],
            )

    def test_rejects_zero_columns(self):
        with pytest.raises(InvalidOutcomeError):
            OutcomeBatch(
                values=np.zeros((3, 0)), sampled=np.zeros((3, 0), dtype=bool)
            )

    def test_empty_batch_is_allowed(self):
        batch = OutcomeBatch(
            values=np.zeros((0, 2)), sampled=np.zeros((0, 2), dtype=bool)
        )
        assert batch.n_outcomes == 0
        assert batch.r == 2
        assert batch.max_sampled().shape == (0,)


class TestRowViews:
    def test_round_trip_without_seeds(self, rng):
        outcomes = _random_outcomes(rng, 40, 3, with_seeds=False)
        batch = OutcomeBatch.from_outcomes(outcomes)
        for original, reconstructed in zip(outcomes, batch.iter_outcomes()):
            assert reconstructed == original

    def test_round_trip_with_seeds(self, rng):
        outcomes = _random_outcomes(rng, 40, 2, with_seeds=True)
        batch = OutcomeBatch.from_outcomes(outcomes)
        assert batch.knows_seeds
        assert batch.to_outcomes() == outcomes

    def test_row_indexing(self, rng):
        outcomes = _random_outcomes(rng, 10, 2, with_seeds=False)
        batch = OutcomeBatch.from_outcomes(outcomes)
        assert batch.row(7) == outcomes[7]


class TestFromOutcomes:
    def test_empty_iterable_raises(self):
        with pytest.raises(InvalidOutcomeError):
            OutcomeBatch.from_outcomes([])

    def test_mixed_r_raises(self):
        outcomes = [
            VectorOutcome.from_vector((1.0, 2.0), {0}),
            VectorOutcome.from_vector((1.0, 2.0, 3.0), {0}),
        ]
        with pytest.raises(InvalidOutcomeError):
            OutcomeBatch.from_outcomes(outcomes)

    def test_mixed_seed_availability_raises(self):
        outcomes = [
            VectorOutcome.from_vector((1.0, 2.0), {0}),
            VectorOutcome.from_vector((1.0, 2.0), {0}, seeds=[0.1, 0.9]),
        ]
        with pytest.raises(InvalidOutcomeError):
            OutcomeBatch.from_outcomes(outcomes)


class TestColumnStatistics:
    def test_counts_and_masks(self):
        batch = OutcomeBatch(
            values=[[1.0, 2.0], [3.0, 0.0], [0.0, 0.0]],
            sampled=[[True, True], [True, False], [False, False]],
        )
        np.testing.assert_array_equal(batch.n_sampled(), [2, 1, 0])
        np.testing.assert_array_equal(
            batch.any_sampled(), [True, True, False]
        )
        np.testing.assert_array_equal(
            batch.all_sampled(), [True, False, False]
        )

    def test_max_sampled_matches_scalar(self, rng):
        outcomes = _random_outcomes(rng, 50, 4, with_seeds=False)
        batch = OutcomeBatch.from_outcomes(outcomes)
        expected = [outcome.max_sampled() for outcome in outcomes]
        np.testing.assert_allclose(batch.max_sampled(), expected)

    def test_max_sampled_zero_on_empty_rows(self):
        batch = OutcomeBatch(
            values=[[5.0, 7.0]], sampled=[[False, False]]
        )
        assert batch.max_sampled()[0] == 0.0
