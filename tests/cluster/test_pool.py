"""Multiprocess shard-worker plane: row partitioning, concurrent-vs-
serial parity across the process boundary, probes, lifecycle.

The parity bar here is *byte-exact* ``codec.to_bytes`` equality — the
ownership-transferring fold (:meth:`StreamEngine.fold_delta`) keeps
even heap insertion order identical to a serial ingest, as long as the
fold happens once after the load (the pattern a snapshot or read
fan-in produces).
"""

from __future__ import annotations

import contextlib
import os
import signal
import time

import numpy as np
import pytest

from repro.cluster import ShardWorkerPool, owned_subset
from repro.sampling.seeds import key_hashes
from repro.sampling.seeds import SeedAssigner
from repro.service import codec
from repro.service.store import SketchStore

ENGINE = "t"
N_SHARDS = 8


def make_engine_kwargs(kind: str) -> dict:
    kwargs = {
        "seed_assigner": SeedAssigner(salt=11, coordinated=True),
        "n_shards": N_SHARDS,
    }
    if kind == "poisson":
        kwargs["threshold"] = 0.2
    else:
        kwargs["k"] = 64
    return kwargs


def build_store(kind: str = "bottom_k") -> SketchStore:
    store = SketchStore()
    store.create(ENGINE, kind, **make_engine_kwargs(kind))
    return store


def make_batches(n_batches: int = 8, rows: int = 400, seed: int = 3):
    """Deterministic column batches over two instances.

    Every batch carries enough distinct keys that each of the workers'
    shard groups sees rows, which keeps the single-fold parity
    byte-exact.
    """
    generator = np.random.default_rng(seed)
    batches = []
    for instance in ("mon", "tue"):
        keys = generator.choice(10**7, size=n_batches * rows, replace=False)
        values = generator.random(n_batches * rows) * 8.0 + 0.05
        for start in range(0, n_batches * rows, rows):
            stop = start + rows
            batches.append((instance, keys[start:stop], values[start:stop]))
    return batches


def load(store: SketchStore, batches) -> None:
    for instance, keys, values in batches:
        store.ingest(ENGINE, instance, keys, values)


class TestOwnedSubset:
    def test_workers_partition_the_rows(self):
        generator = np.random.default_rng(0)
        keys = generator.choice(10**6, size=500, replace=False)
        values = generator.random(500)
        n_workers = 3
        seen = []
        for worker_id in range(n_workers):
            subset_keys, subset_values = owned_subset(
                keys, values, N_SHARDS, n_workers, worker_id
            )
            assert len(subset_keys) == len(subset_values)
            seen.extend(int(key) for key in np.asarray(subset_keys))
        assert sorted(seen) == sorted(int(key) for key in keys)

    def test_subset_rows_hash_into_owned_shards(self):
        generator = np.random.default_rng(1)
        keys = generator.choice(10**6, size=300, replace=False)
        values = generator.random(300)
        subset_keys, _ = owned_subset(keys, values, N_SHARDS, 4, 2)
        shards = key_hashes(np.asarray(subset_keys)) % np.uint64(N_SHARDS)
        assert set(int(shard) % 4 for shard in shards) == {2}

    def test_single_worker_passthrough(self):
        keys = ["a", "b", "c"]
        values = [1.0, 2.0, 3.0]
        subset_keys, subset_values = owned_subset(
            keys, values, N_SHARDS, 1, 0
        )
        assert subset_keys is keys
        assert subset_values.tolist() == values

    def test_empty_batch_passes_through(self):
        subset_keys, subset_values = owned_subset([], [], N_SHARDS, 4, 1)
        assert list(subset_keys) == []
        assert subset_values.size == 0


class TestPoolParity:
    @pytest.mark.parametrize("kind", ["bottom_k", "poisson"])
    @pytest.mark.parametrize("transport", ["shm", "pipe"])
    def test_pooled_ingest_matches_serial_byte_exact(self, kind, transport):
        batches = make_batches()
        serial = build_store(kind)
        load(serial, batches)

        pooled = build_store(kind)
        pooled.start_workers(4, transport=transport)
        try:
            assert pooled.has_workers
            load(pooled, batches)
            # the read fans in through one ownership-transferring fold
            pooled_blob = codec.to_bytes(pooled.engine(ENGINE, sync=True))
        finally:
            pooled.stop_workers()
        assert pooled_blob == codec.to_bytes(serial.engine(ENGINE))
        assert pooled.version(ENGINE) == serial.version(ENGINE)

    def test_reads_between_ingests_stay_consistent(self):
        batches = make_batches(n_batches=4)
        pooled = build_store()
        serial = build_store()
        pooled.start_workers(2)
        try:
            for index, (instance, keys, values) in enumerate(batches):
                pooled.ingest(ENGINE, instance, keys, values)
                serial.ingest(ENGINE, instance, keys, values)
                if index % 3 == 0:
                    # interleaved reads force multi-fold merges; the
                    # engines stay value-identical even where the byte
                    # encoding (heap insertion order) may drift
                    assert pooled.engine(ENGINE, sync=True) == serial.engine(ENGINE)
        finally:
            pooled.stop_workers()
        assert pooled.engine(ENGINE, sync=True) == serial.engine(ENGINE)

    def test_engine_registered_after_start_participates(self):
        pooled = build_store()
        serial = build_store()
        pooled.start_workers(2)
        try:
            for store in (pooled, serial):
                store.create("late", "bottom_k", **make_engine_kwargs("bottom_k"))
            batches = make_batches(n_batches=3)
            for instance, keys, values in batches:
                pooled.ingest("late", instance, keys, values)
                serial.ingest("late", instance, keys, values)
            blob = codec.to_bytes(pooled.engine("late", sync=True))
        finally:
            pooled.stop_workers()
        assert blob == codec.to_bytes(serial.engine("late"))


class TestLifecycle:
    def test_stop_workers_returns_to_thread_backend(self):
        store = build_store()
        batches = make_batches(n_batches=2)
        store.start_workers(2)
        try:
            load(store, batches[:2])
        finally:
            store.stop_workers()
        assert not store.has_workers
        assert store.worker_probes() == []
        load(store, batches[2:])
        serial = build_store()
        load(serial, batches)
        assert store.engine(ENGINE) == serial.engine(ENGINE)

    def test_probes_report_liveness_and_throughput(self):
        store = build_store()
        store.start_workers(2)
        try:
            load(store, make_batches(n_batches=2))
            # a read fans in, which also drains the dispatch queues
            store.engine(ENGINE, sync=True)
            probes = store.worker_probes()
        finally:
            store.stop_workers()
        assert [row["worker"] for row in probes] == [0, 1]
        for row in probes:
            assert row["alive"]
            assert row["pid"] > 0
            assert row["pid"] != os.getpid()
            assert row["transport"] == "shm"
            assert row["restarts"] == 0
        # both workers saw work: every batch spreads over all shards
        assert all(row["batches"] > 0 for row in probes)
        assert sum(row["rows"] for row in probes) > 0

    def test_double_start_rejected(self):
        store = build_store()
        store.start_workers(1)
        try:
            with pytest.raises(ValueError, match="already"):
                store.start_workers(1)
        finally:
            store.stop_workers()

    def test_crash_without_wal_is_loud(self):
        store = build_store()
        store.start_workers(2)
        try:
            batches = make_batches(n_batches=3)
            load(store, batches[:2])
            victim = store.worker_probes()[0]["pid"]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            with pytest.raises(RuntimeError, match="write-ahead log"):
                while time.monotonic() < deadline:
                    load(store, batches[2:4])
                    store.engine(ENGINE, sync=True)
                    time.sleep(0.05)
                raise AssertionError("crash never surfaced")
        finally:
            # the un-folded delta is acknowledged lost; the teardown
            # still must terminate the surviving worker
            with contextlib.suppress(RuntimeError):
                store.stop_workers()
        assert store._pool is None


class TestPoolPrimitives:
    def test_pool_validates_worker_count(self):
        with pytest.raises(ValueError):
            ShardWorkerPool(0)

    def test_pool_validates_transport(self):
        with pytest.raises(ValueError):
            ShardWorkerPool(1, transport="carrier-pigeon")
