"""Property-based tests for streaming/offline equivalence and merge algebra.

These are the exactness guarantees of the streaming subsystem:

* a :class:`StreamingBottomK` fed *any permutation* of a stream equals the
  offline :func:`bottom_k_sample` of the accumulated data under the same
  seed assignment — entries, ranks and threshold;
* sketch merging is associative, commutative, and insensitive to how the
  stream is split across shards.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.bottomk import bottom_k_sample
from repro.sampling.poisson import poisson_uniform_sample
from repro.sampling.ranks import ExpRanks, PpsRanks, UniformRanks
from repro.sampling.seeds import SeedAssigner
from repro.streaming.merge import merge_sketches
from repro.streaming.sketch import StreamingBottomK, StreamingPoisson

value_dicts = st.dictionaries(
    keys=st.integers(min_value=0, max_value=10_000),
    values=st.floats(min_value=0.0, max_value=1000.0),
    min_size=1,
    max_size=40,
)

rank_families = st.sampled_from([ExpRanks(), PpsRanks()])


def same_bottom_k_state(a: StreamingBottomK, b: StreamingBottomK) -> None:
    assert a.candidates() == b.candidates()
    assert a.candidate_ranks() == b.candidate_ranks()
    assert a.threshold == b.threshold


@settings(max_examples=60, deadline=None)
@given(
    values=value_dicts,
    k=st.integers(min_value=1, max_value=20),
    salt=st.integers(min_value=0, max_value=1000),
    order_seed=st.integers(min_value=0, max_value=2**32 - 1),
    family=rank_families,
)
def test_streamed_permutation_equals_offline_bottom_k(
    values, k, salt, order_seed, family
):
    assigner = SeedAssigner(salt=salt)
    items = list(values.items())
    np.random.default_rng(order_seed).shuffle(items)
    sketch = StreamingBottomK(
        k=k, instance=7, rank_family=family, seed_assigner=assigner
    )
    for key, value in items:
        sketch.update(key, value)
    offline = bottom_k_sample(
        values, k, rank_family=family, seed_assigner=assigner, instance=7
    )
    snapshot = sketch.to_sample()
    assert snapshot.entries == offline.entries
    assert snapshot.ranks == offline.ranks
    assert snapshot.threshold == offline.threshold
    assert snapshot.k == offline.k


@settings(max_examples=60, deadline=None)
@given(
    values=value_dicts,
    k=st.integers(min_value=1, max_value=20),
    salt=st.integers(min_value=0, max_value=1000),
    n_shards=st.integers(min_value=1, max_value=6),
    family=rank_families,
)
def test_bottom_k_merge_insensitive_to_shard_split(
    values, k, salt, n_shards, family
):
    assigner = SeedAssigner(salt=salt)

    def sharded(n: int) -> StreamingBottomK:
        shards = [
            StreamingBottomK(
                k=k, rank_family=family, seed_assigner=assigner
            )
            for _ in range(n)
        ]
        for key, value in values.items():
            shards[hash(key) % n].update(key, value)
        return merge_sketches(shards)

    same_bottom_k_state(sharded(n_shards), sharded(1))


@settings(max_examples=40, deadline=None)
@given(
    values=value_dicts,
    k=st.integers(min_value=1, max_value=15),
    salt=st.integers(min_value=0, max_value=1000),
    split=st.integers(min_value=0, max_value=39),
)
def test_bottom_k_merge_commutative_and_associative(values, k, salt, split):
    assigner = SeedAssigner(salt=salt)
    items = list(values.items())
    cut1 = split % (len(items) + 1)
    cut2 = (cut1 + len(items)) // 2

    def sketch_of(part) -> StreamingBottomK:
        sketch = StreamingBottomK(k=k, seed_assigner=assigner)
        sketch.extend(part)
        return sketch

    a = sketch_of(items[:cut1])
    b = sketch_of(items[cut1:cut2])
    c = sketch_of(items[cut2:])
    same_bottom_k_state(merge_sketches([a, b]), merge_sketches([b, a]))
    same_bottom_k_state(
        merge_sketches([merge_sketches([a, b]), c]),
        merge_sketches([a, merge_sketches([b, c])]),
    )


@settings(max_examples=60, deadline=None)
@given(
    values=value_dicts,
    threshold=st.floats(min_value=0.05, max_value=0.95),
    salt=st.integers(min_value=0, max_value=1000),
    order_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_streamed_permutation_equals_offline_uniform_poisson(
    values, threshold, salt, order_seed
):
    assigner = SeedAssigner(salt=salt)
    items = list(values.items())
    np.random.default_rng(order_seed).shuffle(items)
    sketch = StreamingPoisson(
        threshold, instance=3, seed_assigner=assigner
    )
    for key, value in items:
        sketch.update(key, value)
    # a zero-value update never arrives in a stream, so compare against the
    # offline sample of the positive support (the dataset model treats
    # zero-valued keys as absent)
    offline = poisson_uniform_sample(
        {key: value for key, value in values.items() if value > 0.0},
        threshold, seed_assigner=assigner, instance=3,
    )
    assert sketch.entries == dict(offline.entries)


@settings(max_examples=40, deadline=None)
@given(
    values=value_dicts,
    threshold=st.floats(min_value=0.05, max_value=0.95),
    salt=st.integers(min_value=0, max_value=1000),
    n_shards=st.integers(min_value=1, max_value=6),
    family=st.sampled_from([UniformRanks(), PpsRanks(), ExpRanks()]),
)
def test_poisson_merge_insensitive_to_shard_split(
    values, threshold, salt, n_shards, family
):
    assigner = SeedAssigner(salt=salt)

    def sharded(n: int) -> StreamingPoisson:
        shards = [
            StreamingPoisson(
                threshold, rank_family=family, seed_assigner=assigner
            )
            for _ in range(n)
        ]
        for key, value in values.items():
            shards[hash(key) % n].update(key, value)
        return merge_sketches(shards)

    merged = sharded(n_shards)
    single = sharded(1)
    assert merged.entries == single.entries
    assert merged.candidate_ranks() == single.candidate_ranks()
