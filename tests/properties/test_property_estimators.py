"""Property-based tests (hypothesis) for the core estimators.

The invariants checked here are the ones the paper's constructions
guarantee for *every* data vector and sampling configuration:

* exact unbiasedness (via enumeration of the outcome space);
* nonnegativity of every outcome estimate;
* dominance of the partial-information estimators over Horvitz-Thompson;
* consistency between closed forms and the generic derivation engine.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.max_oblivious import (
    MaxObliviousHT,
    MaxObliviousL,
    MaxObliviousU,
)
from repro.core.max_weighted import MaxPpsL
from repro.core.or_estimators import OrObliviousL, OrObliviousU
from repro.core.variance import exact_moments, exact_variance
from repro.sampling.dispersed import ObliviousPoissonScheme

probabilities = st.floats(min_value=0.05, max_value=1.0)
values = st.floats(min_value=0.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)
positive_values = st.floats(min_value=0.01, max_value=100.0)


@settings(max_examples=60, deadline=None)
@given(p1=probabilities, p2=probabilities, v1=values, v2=values)
def test_max_l_unbiased_r2(p1, p2, v1, v2):
    scheme = ObliviousPoissonScheme((p1, p2))
    estimator = MaxObliviousL((p1, p2))
    mean, _ = exact_moments(estimator, scheme, (v1, v2))
    assert abs(mean - max(v1, v2)) <= 1e-8 * max(1.0, max(v1, v2))


@settings(max_examples=60, deadline=None)
@given(p1=probabilities, p2=probabilities, v1=values, v2=values)
def test_max_u_unbiased_r2(p1, p2, v1, v2):
    scheme = ObliviousPoissonScheme((p1, p2))
    estimator = MaxObliviousU((p1, p2))
    mean, _ = exact_moments(estimator, scheme, (v1, v2))
    assert abs(mean - max(v1, v2)) <= 1e-8 * max(1.0, max(v1, v2))


@settings(max_examples=40, deadline=None)
@given(p=probabilities, v1=values, v2=values, v3=values)
def test_max_l_unbiased_r3_uniform(p, v1, v2, v3):
    scheme = ObliviousPoissonScheme((p, p, p))
    estimator = MaxObliviousL((p, p, p))
    data = (v1, v2, v3)
    mean, _ = exact_moments(estimator, scheme, data)
    assert abs(mean - max(data)) <= 1e-7 * max(1.0, max(data))


@settings(max_examples=60, deadline=None)
@given(p1=probabilities, p2=probabilities, v1=values, v2=values)
def test_l_and_u_estimates_nonnegative(p1, p2, v1, v2):
    scheme = ObliviousPoissonScheme((p1, p2))
    for estimator in (MaxObliviousL((p1, p2)), MaxObliviousU((p1, p2))):
        for outcome, _ in scheme.iter_outcomes((v1, v2)):
            assert estimator.estimate(outcome) >= -1e-10


@settings(max_examples=60, deadline=None)
@given(p1=probabilities, p2=probabilities, v1=values, v2=values)
def test_l_and_u_dominate_ht(p1, p2, v1, v2):
    scheme = ObliviousPoissonScheme((p1, p2))
    data = (v1, v2)
    ht_variance = exact_variance(MaxObliviousHT((p1, p2)), scheme, data)
    for estimator in (MaxObliviousL((p1, p2)), MaxObliviousU((p1, p2))):
        assert exact_variance(estimator, scheme, data) <= ht_variance + 1e-7


@settings(max_examples=60, deadline=None)
@given(p1=probabilities, p2=probabilities,
       b1=st.booleans(), b2=st.booleans())
def test_or_estimators_unbiased_binary(p1, p2, b1, b2):
    data = (float(b1), float(b2))
    scheme = ObliviousPoissonScheme((p1, p2))
    expected = 1.0 if (b1 or b2) else 0.0
    for estimator in (OrObliviousL((p1, p2)), OrObliviousU((p1, p2))):
        mean, _ = exact_moments(estimator, scheme, data)
        assert abs(mean - expected) <= 1e-9


# Value fractions are either exactly zero or bounded away from the
# denormal-float range, where intermediate terms of the closed form
# overflow.
value_fractions = st.one_of(
    st.just(0.0), st.floats(min_value=1e-6, max_value=1.3)
)


@settings(max_examples=40, deadline=None)
@given(
    tau1=st.floats(min_value=0.5, max_value=50.0),
    tau2=st.floats(min_value=0.5, max_value=50.0),
    f1=value_fractions,
    f2=value_fractions,
)
def test_pps_max_l_unbiased(tau1, tau2, f1, f2):
    estimator = MaxPpsL((tau1, tau2))
    data = (f1 * tau1, f2 * tau2)
    mean, _ = estimator.moments(data, grid_size=1201)
    assert abs(mean - max(data)) <= 3e-3 * max(1.0, max(data))


@settings(max_examples=40, deadline=None)
@given(
    tau1=st.floats(min_value=0.5, max_value=50.0),
    tau2=st.floats(min_value=0.5, max_value=50.0),
    a_fraction=st.floats(min_value=0.01, max_value=1.5),
    b_fraction=st.floats(min_value=0.001, max_value=1.0),
)
def test_pps_max_l_closed_form_monotone_in_smaller_entry(
    tau1, tau2, a_fraction, b_fraction
):
    # For a fixed larger entry, the Figure 3 estimate is nonincreasing in
    # the smaller entry of the determining vector (more mass below the
    # maximum means lower estimates are needed on other outcomes, so the
    # conditional estimate decreases towards the case of equal entries).
    estimator = MaxPpsL((tau1, tau2))
    larger = a_fraction * max(tau1, tau2)
    smaller_high = larger * max(b_fraction, 1e-3)
    smaller_low = smaller_high / 2.0
    high = estimator.estimate_from_determining(larger, smaller_high)
    low = estimator.estimate_from_determining(larger, smaller_low)
    assert low >= high - 1e-6 * max(1.0, high)
