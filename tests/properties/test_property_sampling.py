"""Property-based tests for the sampling substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coefficients import uniform_max_l_coefficients
from repro.sampling.bottomk import bottom_k_sample
from repro.sampling.ranks import ExpRanks, PpsRanks
from repro.sampling.seeds import SeedAssigner
from repro.sampling.varopt import varopt_sample, varopt_threshold

value_dicts = st.dictionaries(
    keys=st.integers(min_value=0, max_value=10_000),
    values=st.floats(min_value=0.0, max_value=1000.0),
    min_size=1,
    max_size=40,
)


@settings(max_examples=50, deadline=None)
@given(values=value_dicts, k=st.integers(min_value=1, max_value=20),
       salt=st.integers(min_value=0, max_value=1000))
def test_bottom_k_size_and_threshold(values, k, salt):
    sample = bottom_k_sample(values, k, seed_assigner=SeedAssigner(salt=salt))
    positive = sum(1 for v in values.values() if v > 0)
    assert len(sample) == min(k, positive)
    for rank in sample.ranks.values():
        assert rank < sample.threshold or sample.threshold == float("inf")
    for key in sample.keys:
        assert values[key] > 0


@settings(max_examples=50, deadline=None)
@given(values=value_dicts, k=st.integers(min_value=1, max_value=20),
       seed=st.integers(min_value=0, max_value=1000))
def test_varopt_size_and_weights(values, k, seed):
    sample = varopt_sample(values, k, rng=seed)
    positive = sum(1 for v in values.values() if v > 0)
    assert len(sample) == min(k, positive)
    for key, weight in sample.adjusted_weights.items():
        assert weight >= values[key] - 1e-9 or weight >= sample.threshold - 1e-9


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                    max_size=50),
    k=st.integers(min_value=1, max_value=30),
)
def test_varopt_threshold_expected_size(values, k):
    array = np.asarray(values)
    positive = array[array > 0]
    tau = varopt_threshold(array, k)
    if positive.size <= k:
        assert tau == 0.0
    else:
        size = float(np.sum(np.minimum(1.0, positive / tau)))
        assert abs(size - k) < 1e-6


@settings(max_examples=50, deadline=None)
@given(
    w=st.floats(min_value=0.01, max_value=1000.0),
    u=st.floats(min_value=0.001, max_value=0.999),
    x=st.floats(min_value=0.0001, max_value=100.0),
)
def test_rank_families_consistent(w, u, x):
    for family in (PpsRanks(), ExpRanks()):
        rank = float(family.rank(w, u))
        # Rank is the u-quantile of the family: CDF(rank) == u.
        cdf = float(family.cdf(w, rank))
        assert abs(cdf - u) < 1e-9
        # CDF is nondecreasing.
        assert float(family.cdf(w, x)) <= float(family.cdf(w, x * 2)) + 1e-12


@settings(max_examples=50, deadline=None)
@given(keys=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                     max_size=50, unique=True),
       salt=st.integers(min_value=0, max_value=10**6))
def test_seed_assigner_deterministic_and_bounded(keys, salt):
    assigner = SeedAssigner(salt=salt)
    first = assigner.seeds(keys, instance="x")
    second = assigner.seeds(keys, instance="x")
    assert np.array_equal(first, second)
    assert np.all(first > 0.0)
    assert np.all(first < 1.0)


@settings(max_examples=50, deadline=None)
@given(r=st.integers(min_value=2, max_value=7),
       p=st.floats(min_value=0.05, max_value=1.0))
def test_uniform_coefficients_invariants(r, p):
    alphas = uniform_max_l_coefficients(r, p)
    assert alphas.shape == (r,)
    # Prefix sums are positive (estimates of nonnegative data vectors stay
    # nonnegative) and the total equals the OR normaliser A_r.
    prefix = np.cumsum(alphas)
    # The coefficients alternate hugely in magnitude for small p, so the
    # comparison tolerance must scale with the largest coefficient.
    tolerance = 1e-9 * float(np.abs(alphas).max()) * r + 1e-9
    assert np.all(prefix > -tolerance)
    assert abs(prefix[-1] - 1.0 / (1.0 - (1.0 - p) ** r)) < tolerance
