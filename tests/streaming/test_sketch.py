"""Unit tests for the streaming sketches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.sampling.bottomk import bottom_k_sample
from repro.sampling.poisson import poisson_pps_sample, poisson_uniform_sample
from repro.sampling.ranks import ExpRanks, PpsRanks, UniformRanks
from repro.sampling.seeds import SeedAssigner
from repro.streaming.sketch import StreamingBottomK, StreamingPoisson


def make_data(n: int = 200, seed: int = 0) -> dict[int, float]:
    generator = np.random.default_rng(seed)
    keys = generator.choice(10**7, size=n, replace=False)
    values = generator.random(n) * 10.0 + 0.1
    return {int(k): float(v) for k, v in zip(keys, values)}


class TestStreamingBottomK:
    def test_matches_offline_sample_exactly(self):
        data = make_data()
        assigner = SeedAssigner(salt=3)
        for family in (ExpRanks(), PpsRanks()):
            sketch = StreamingBottomK(
                k=16, instance="i", rank_family=family, seed_assigner=assigner
            )
            sketch.extend(data.items())
            offline = bottom_k_sample(
                data, 16, rank_family=family, seed_assigner=assigner,
                instance="i",
            )
            snapshot = sketch.to_sample()
            assert snapshot.entries == offline.entries
            assert snapshot.ranks == offline.ranks
            assert snapshot.threshold == offline.threshold

    def test_to_sample_supports_rank_conditioning(self):
        data = make_data()
        sketch = StreamingBottomK(k=60, seed_assigner=SeedAssigner(salt=1))
        sketch.update_batch(list(data), list(data.values()))
        estimate = sketch.to_sample().rank_conditioning_total()
        assert estimate == pytest.approx(sum(data.values()), rel=0.5)

    def test_fewer_keys_than_k(self):
        sketch = StreamingBottomK(k=10, seed_assigner=SeedAssigner())
        sketch.extend([("a", 1.0), ("b", 2.0)])
        sample = sketch.to_sample()
        assert sample.keys == {"a", "b"}
        assert np.isinf(sample.threshold)
        assert np.isinf(sketch.threshold)

    def test_zero_values_ignored(self):
        sketch = StreamingBottomK(k=5, seed_assigner=SeedAssigner())
        sketch.update("a", 0.0)
        assert len(sketch) == 0
        assert sketch.n_updates == 1

    def test_additive_updates_accumulate(self):
        # k >= number of keys: no evictions, so additivity is exact
        assigner = SeedAssigner(salt=4)
        split = StreamingBottomK(k=40, seed_assigner=assigner)
        whole = StreamingBottomK(k=40, seed_assigner=assigner)
        data = make_data(30)
        for key, value in data.items():
            split.update(key, 0.25 * value)
            split.update(key, 0.75 * value)
            whole.update(key, value)
        assert split.candidates() == whole.candidates()
        assert split.candidate_ranks() == whole.candidate_ranks()

    def test_additive_update_of_retained_key_stays_exact(self):
        data = make_data(60)
        assigner = SeedAssigner(salt=6)
        sketch = StreamingBottomK(k=10, seed_assigner=assigner)
        sketch.update_batch(list(data), list(data.values()))
        key = next(iter(sketch.to_sample().keys))
        sketch.update(key, 5.0)
        data[key] += 5.0
        offline = bottom_k_sample(data, 10, seed_assigner=assigner)
        snapshot = sketch.to_sample()
        assert snapshot.entries == offline.entries
        assert snapshot.ranks == offline.ranks
        assert snapshot.threshold == offline.threshold

    def test_contains_and_len(self):
        data = make_data(50)
        sketch = StreamingBottomK(k=10, seed_assigner=SeedAssigner(salt=2))
        sketch.update_batch(list(data), list(data.values()))
        assert len(sketch) == 10
        sample = sketch.to_sample()
        for key in sample.keys:
            assert key in sketch
        # the threshold candidate is retained but not part of the sample
        assert len(sketch.candidates()) == 11

    def test_discard_counter_tracks_evictions(self):
        data = make_data(100)
        sketch = StreamingBottomK(k=5, seed_assigner=SeedAssigner())
        sketch.update_batch(list(data), list(data.values()))
        assert sketch.n_discarded_keys == 100 - 6
        assert sketch.n_updates == 100

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            StreamingBottomK(k=0)
        sketch = StreamingBottomK(k=3)
        with pytest.raises(InvalidParameterError):
            sketch.update("a", -1.0)
        with pytest.raises(InvalidParameterError):
            sketch.update_batch(["a", "b"], [1.0])

    def test_negative_integer_keys(self):
        data = {k: float(abs(k) % 7 + 1) for k in range(-40, 40)}
        assigner = SeedAssigner(salt=11)
        sketch = StreamingBottomK(k=12, seed_assigner=assigner)
        sketch.update_batch(list(data), list(data.values()))
        offline = bottom_k_sample(data, 12, seed_assigner=assigner)
        assert sketch.to_sample().entries == offline.entries

    def test_string_keys(self):
        data = {f"user-{i}": float(i % 9 + 1) for i in range(80)}
        assigner = SeedAssigner(salt=11)
        sketch = StreamingBottomK(k=12, seed_assigner=assigner)
        sketch.update_batch(list(data), list(data.values()))
        offline = bottom_k_sample(data, 12, seed_assigner=assigner)
        assert sketch.to_sample().entries == offline.entries


class TestStreamingPoisson:
    def test_uniform_matches_offline(self):
        data = make_data()
        assigner = SeedAssigner(salt=7)
        sketch = StreamingPoisson(0.35, instance="a", seed_assigner=assigner)
        sketch.update_batch(list(data), list(data.values()))
        offline = poisson_uniform_sample(
            data, 0.35, seed_assigner=assigner, instance="a"
        )
        snapshot = sketch.to_sample()
        assert dict(snapshot.entries) == dict(offline.entries)
        assert snapshot.probability == offline.probability
        assert dict(snapshot.inclusion_probabilities) == dict(
            offline.inclusion_probabilities
        )

    def test_pps_matches_offline(self):
        data = make_data()
        assigner = SeedAssigner(salt=7)
        sketch = StreamingPoisson(
            0.08, instance="a", rank_family=PpsRanks(), seed_assigner=assigner
        )
        for key, value in data.items():
            sketch.update(key, value)
        offline = poisson_pps_sample(
            data, threshold=0.08, seed_assigner=assigner, instance="a"
        )
        snapshot = sketch.to_sample()
        assert dict(snapshot.entries) == dict(offline.entries)
        assert snapshot.threshold == offline.threshold
        assert dict(snapshot.inclusion_probabilities) == dict(
            offline.inclusion_probabilities
        )

    def test_horvitz_thompson_total_from_snapshot(self):
        data = make_data(400)
        sketch = StreamingPoisson(
            0.2, rank_family=PpsRanks(), seed_assigner=SeedAssigner(salt=1)
        )
        sketch.update_batch(list(data), list(data.values()))
        estimate = sketch.to_sample().horvitz_thompson_total()
        assert estimate == pytest.approx(sum(data.values()), rel=0.25)

    def test_additive_updates_accumulate(self):
        assigner = SeedAssigner(salt=4)
        sketch = StreamingPoisson(
            0.5, rank_family=PpsRanks(), seed_assigner=assigner
        )
        sketch.update("a", 3.0)
        before = sketch.entries.get("a")
        sketch.update("a", 2.0)
        if before is not None:
            assert sketch.entries["a"] == 5.0
            rank = sketch.candidate_ranks()["a"]
            assert rank == pytest.approx(
                assigner.seed("a", instance=0) / 5.0
            )

    def test_oblivious_threshold_must_be_probability(self):
        with pytest.raises(InvalidParameterError):
            StreamingPoisson(1.5)
        # weighted families accept thresholds above one
        StreamingPoisson(1.5, rank_family=PpsRanks())

    def test_invalid_threshold(self):
        with pytest.raises(InvalidParameterError):
            StreamingPoisson(0.0)
        with pytest.raises(InvalidParameterError):
            StreamingPoisson(-1.0, rank_family=ExpRanks())

    def test_uniform_boundary_seed_is_included_like_offline(self):
        # offline oblivious sampling tests seed <= p; a key whose seed
        # exactly equals the threshold must be retained by the sketch too
        assigner = SeedAssigner(salt=6)
        boundary_seed = assigner.seed("edge", instance=0)
        sketch = StreamingPoisson(boundary_seed, seed_assigner=assigner)
        sketch.update("edge", 1.0)
        offline = poisson_uniform_sample(
            {"edge": 1.0}, boundary_seed, seed_assigner=assigner
        )
        assert "edge" in sketch
        assert dict(sketch.to_sample().entries) == dict(offline.entries)

    def test_uniform_ranks_ignore_values(self):
        assigner = SeedAssigner(salt=2)
        small = StreamingPoisson(0.5, seed_assigner=assigner)
        large = StreamingPoisson(0.5, seed_assigner=assigner)
        keys = [f"k{i}" for i in range(100)]
        small.update_batch(keys, np.full(100, 0.001))
        large.update_batch(keys, np.full(100, 1000.0))
        assert set(small.entries) == set(large.entries)
        assert isinstance(small.rank_family, UniformRanks)
