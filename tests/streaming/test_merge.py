"""Unit tests for the sketch merge algebra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.sampling.ranks import ExpRanks, PpsRanks
from repro.sampling.seeds import SeedAssigner
from repro.streaming.merge import merge_bottom_k, merge_poisson, merge_sketches
from repro.streaming.sketch import StreamingBottomK, StreamingPoisson


def make_data(n: int = 150, seed: int = 1) -> dict[int, float]:
    generator = np.random.default_rng(seed)
    keys = generator.choice(10**7, size=n, replace=False)
    values = generator.random(n) * 5.0 + 0.1
    return {int(k): float(v) for k, v in zip(keys, values)}


def bottom_k_of(data, assigner, k=12, instance=0):
    sketch = StreamingBottomK(k=k, instance=instance, seed_assigner=assigner)
    sketch.update_batch(list(data), list(data.values()))
    return sketch


def poisson_of(data, assigner, threshold=0.4, instance=0, family=None):
    sketch = StreamingPoisson(
        threshold, instance=instance, rank_family=family,
        seed_assigner=assigner,
    )
    sketch.update_batch(list(data), list(data.values()))
    return sketch


def assert_same_bottom_k(a: StreamingBottomK, b: StreamingBottomK) -> None:
    assert a.candidates() == b.candidates()
    assert a.candidate_ranks() == b.candidate_ranks()
    assert a.threshold == b.threshold


class TestMergeBottomK:
    def test_merge_of_key_partition_equals_single_pass(self):
        data = make_data()
        assigner = SeedAssigner(salt=5)
        items = list(data.items())
        parts = [dict(items[i::3]) for i in range(3)]
        merged = merge_bottom_k(
            *(bottom_k_of(part, assigner) for part in parts)
        )
        single = bottom_k_of(data, assigner)
        assert_same_bottom_k(merged, single)
        assert merged.n_updates == single.n_updates

    def test_merge_is_commutative(self):
        data = make_data()
        assigner = SeedAssigner(salt=2)
        items = list(data.items())
        a = bottom_k_of(dict(items[:75]), assigner)
        b = bottom_k_of(dict(items[75:]), assigner)
        assert_same_bottom_k(merge_bottom_k(a, b), merge_bottom_k(b, a))

    def test_merge_is_associative(self):
        data = make_data()
        assigner = SeedAssigner(salt=2)
        items = list(data.items())
        a = bottom_k_of(dict(items[:50]), assigner)
        b = bottom_k_of(dict(items[50:100]), assigner)
        c = bottom_k_of(dict(items[100:]), assigner)
        left = merge_bottom_k(merge_bottom_k(a, b), c)
        right = merge_bottom_k(a, merge_bottom_k(b, c))
        assert_same_bottom_k(left, right)

    def test_merge_leaves_inputs_untouched(self):
        data = make_data()
        assigner = SeedAssigner(salt=9)
        items = list(data.items())
        a = bottom_k_of(dict(items[:75]), assigner)
        before = (a.candidates(), a.threshold, a.n_updates)
        merge_bottom_k(a, bottom_k_of(dict(items[75:]), assigner))
        assert (a.candidates(), a.threshold, a.n_updates) == before

    def test_incompatible_sketches_rejected(self):
        a = StreamingBottomK(k=4, seed_assigner=SeedAssigner(salt=1))
        with pytest.raises(InvalidParameterError):
            merge_bottom_k(a, StreamingBottomK(
                k=5, seed_assigner=SeedAssigner(salt=1)))
        with pytest.raises(InvalidParameterError):
            merge_bottom_k(a, StreamingBottomK(
                k=4, seed_assigner=SeedAssigner(salt=2)))
        with pytest.raises(InvalidParameterError):
            merge_bottom_k(a, StreamingBottomK(
                k=4, instance=1, seed_assigner=SeedAssigner(salt=1)))
        with pytest.raises(InvalidParameterError):
            merge_bottom_k(a, StreamingBottomK(
                k=4, rank_family=PpsRanks(),
                seed_assigner=SeedAssigner(salt=1)))


class TestMergePoisson:
    def test_merge_of_key_partition_equals_single_pass(self):
        data = make_data()
        assigner = SeedAssigner(salt=5)
        items = list(data.items())
        for family in (None, PpsRanks(), ExpRanks()):
            threshold = 0.4 if family is None else 0.2
            parts = [
                poisson_of(dict(items[i::4]), assigner, threshold=threshold,
                           family=family)
                for i in range(4)
            ]
            merged = merge_poisson(*parts)
            single = poisson_of(data, assigner, threshold=threshold,
                                family=family)
            assert merged.entries == single.entries
            assert merged.candidate_ranks() == single.candidate_ranks()

    def test_merge_overlapping_keys_accumulates(self):
        assigner = SeedAssigner(salt=3)
        a = StreamingPoisson(0.9, seed_assigner=assigner)
        b = StreamingPoisson(0.9, seed_assigner=assigner)
        a.update("shared", 2.0)
        b.update("shared", 3.0)
        merged = merge_poisson(a, b)
        if "shared" in merged:
            assert merged.entries["shared"] == 5.0

    def test_threshold_mismatch_rejected(self):
        assigner = SeedAssigner()
        with pytest.raises(InvalidParameterError):
            merge_poisson(
                StreamingPoisson(0.4, seed_assigner=assigner),
                StreamingPoisson(0.5, seed_assigner=assigner),
            )


class TestMergeSketches:
    def test_dispatch(self):
        assigner = SeedAssigner(salt=1)
        data = make_data(40)
        bk = merge_sketches(
            [bottom_k_of(data, assigner), bottom_k_of({}, assigner)]
        )
        assert isinstance(bk, StreamingBottomK)
        ps = merge_sketches([poisson_of(data, assigner)])
        assert isinstance(ps, StreamingPoisson)

    def test_empty_and_mixed_inputs_rejected(self):
        with pytest.raises(InvalidParameterError):
            merge_sketches([])
        assigner = SeedAssigner()
        with pytest.raises(InvalidParameterError):
            merge_sketches([
                StreamingBottomK(k=3, seed_assigner=assigner),
                StreamingPoisson(0.5, seed_assigner=assigner),
            ])
        with pytest.raises(InvalidParameterError):
            merge_sketches([object()])
