"""Unit tests for the sketch query adapters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregates.dataset import MultiInstanceDataset
from repro.aggregates.distance import l1_distance_ht
from repro.aggregates.distinct import distinct_count_ht, distinct_count_l
from repro.aggregates.dominance import max_dominance_estimates
from repro.aggregates.sum_estimator import sum_aggregate_oblivious
from repro.core.max_oblivious import MaxObliviousL
from repro.core.or_estimators import OrObliviousL
from repro.exceptions import InvalidParameterError
from repro.sampling.ranks import PpsRanks
from repro.sampling.seeds import SeedAssigner
from repro.streaming.query import (
    dataset_view,
    distinct_count,
    l1_distance,
    max_dominance,
    rank_conditioning_total,
    sum_aggregate,
    vector_outcomes,
)
from repro.streaming.sketch import StreamingBottomK, StreamingPoisson


def two_instances(n: int = 300, seed: int = 0):
    generator = np.random.default_rng(seed)
    keys = [int(k) for k in generator.choice(10**6, size=n, replace=False)]
    day1 = {k: float(v) for k, v in
            zip(keys[: 2 * n // 3], generator.random(2 * n // 3) * 8 + 0.1)}
    day2 = {k: float(v) for k, v in
            zip(keys[n // 3:], generator.random(n - n // 3) * 8 + 0.1)}
    return day1, day2


def uniform_sketches(day1, day2, p1=0.5, p2=0.4, salt=17):
    assigner = SeedAssigner(salt=salt)
    s1 = StreamingPoisson(p1, instance="day1", seed_assigner=assigner)
    s2 = StreamingPoisson(p2, instance="day2", seed_assigner=assigner)
    s1.update_batch(list(day1), list(day1.values()))
    s2.update_batch(list(day2), list(day2.values()))
    return s1, s2, assigner


class TestVectorOutcomes:
    def test_outcomes_match_sampling_state(self):
        day1, day2 = two_instances()
        s1, s2, assigner = uniform_sketches(day1, day2)
        outcomes = vector_outcomes((s1, s2))
        assert set(outcomes) == set(s1.entries) | set(s2.entries)
        for key, outcome in outcomes.items():
            assert outcome.r == 2
            assert outcome.knows_seeds
            assert outcome.seeds[0] == assigner.seed(key, instance="day1")
            if 0 in outcome.sampled:
                # either retained with its value, or seed-selected and
                # thereby observed to be zero in day1
                assert outcome.values[0] == day1.get(key, 0.0)
                if key not in day1:
                    assert outcome.seeds[0] < 0.5

    def test_distinct_instances_required(self):
        day1, _ = two_instances()
        assigner = SeedAssigner()
        s1 = StreamingPoisson(0.5, instance="x", seed_assigner=assigner)
        with pytest.raises(InvalidParameterError):
            vector_outcomes((s1, s1))


class TestSumAggregate:
    def test_max_oblivious_matches_offline_pipeline(self):
        day1, day2 = two_instances()
        s1, s2, assigner = uniform_sketches(day1, day2)
        estimator = MaxObliviousL([0.5, 0.4])
        streaming = sum_aggregate((s1, s2), estimator, include_seeds=False)
        dataset = MultiInstanceDataset({"day1": day1, "day2": day2})
        offline = sum_aggregate_oblivious(
            dataset, ["day1", "day2"], [0.5, 0.4], estimator, assigner,
            true_function=max,
        )
        assert streaming == pytest.approx(offline.estimate)

    def test_or_estimator_runs_unchanged(self):
        # OR acts on the Boolean domain: sketch the membership indicators
        day1, day2 = two_instances()
        ones1 = {key: 1.0 for key in day1}
        ones2 = {key: 1.0 for key in day2}
        s1, s2, _ = uniform_sketches(ones1, ones2)
        estimate = sum_aggregate(
            (s1, s2), OrObliviousL((0.5, 0.4)), include_seeds=False
        )
        distinct = len(set(day1) | set(day2))
        assert estimate == pytest.approx(distinct, rel=0.35)

    def test_estimator_arity_checked(self):
        day1, day2 = two_instances(60)
        s1, s2, _ = uniform_sketches(day1, day2)
        with pytest.raises(InvalidParameterError):
            sum_aggregate((s1,), MaxObliviousL([0.5, 0.4]))


class TestDistinctCount:
    def test_matches_offline_estimators(self):
        day1, day2 = two_instances()
        s1, s2, assigner = uniform_sketches(day1, day2)
        seeds1 = {k: assigner.seed(k, instance="day1")
                  for k in set(day1) | set(day2)}
        seeds2 = {k: assigner.seed(k, instance="day2")
                  for k in set(day1) | set(day2)}
        offline_l = distinct_count_l(
            s1.entries, s2.entries, 0.5, 0.4, seeds1, seeds2
        )
        offline_ht = distinct_count_ht(
            s1.entries, s2.entries, 0.5, 0.4, seeds1, seeds2
        )
        assert distinct_count(s1, s2, "l").estimate == pytest.approx(
            offline_l.estimate
        )
        assert distinct_count(s1, s2, "ht").estimate == pytest.approx(
            offline_ht.estimate
        )
        assert distinct_count(s1, s2, "l").counts == offline_l.counts

    def test_requires_uniform_sketches(self):
        assigner = SeedAssigner()
        pps = StreamingPoisson(0.1, instance="a", rank_family=PpsRanks(),
                               seed_assigner=assigner)
        uni = StreamingPoisson(0.5, instance="b", seed_assigner=assigner)
        with pytest.raises(InvalidParameterError):
            distinct_count(pps, uni)

    def test_unknown_variant(self):
        day1, day2 = two_instances(60)
        s1, s2, _ = uniform_sketches(day1, day2)
        with pytest.raises(InvalidParameterError):
            distinct_count(s1, s2, "nope")


class TestL1Distance:
    def test_matches_offline_pipeline(self):
        day1, day2 = two_instances()
        s1, s2, assigner = uniform_sketches(day1, day2)
        dataset = MultiInstanceDataset({"day1": day1, "day2": day2})
        offline = l1_distance_ht(
            dataset, ["day1", "day2"], [0.5, 0.4], assigner
        )
        assert l1_distance(s1, s2) == pytest.approx(offline.estimate)


class TestMaxDominance:
    def test_matches_offline_pipeline(self):
        day1, day2 = two_instances()
        assigner = SeedAssigner(salt=23)
        tau_star = (12.0, 15.0)
        s1 = StreamingPoisson(1.0 / tau_star[0], instance="day1",
                              rank_family=PpsRanks(), seed_assigner=assigner)
        s2 = StreamingPoisson(1.0 / tau_star[1], instance="day2",
                              rank_family=PpsRanks(), seed_assigner=assigner)
        s1.update_batch(list(day1), list(day1.values()))
        s2.update_batch(list(day2), list(day2.values()))
        dataset = MultiInstanceDataset({"day1": day1, "day2": day2})
        offline = max_dominance_estimates(
            dataset, ["day1", "day2"], tau_star, assigner
        )
        streaming = max_dominance(s1, s2)
        assert streaming.ht == pytest.approx(offline.ht)
        assert streaming.l == pytest.approx(offline.l)

    def test_requires_pps_sketches(self):
        day1, day2 = two_instances(60)
        s1, s2, _ = uniform_sketches(day1, day2)
        with pytest.raises(InvalidParameterError):
            max_dominance(s1, s2)


class TestDatasetView:
    def test_view_exposes_retained_entries(self):
        day1, day2 = two_instances()
        s1, s2, _ = uniform_sketches(day1, day2)
        view = dataset_view((s1, s2))
        assert isinstance(view, MultiInstanceDataset)
        assert view.instance(s1.instance) == s1.entries
        assert view.distinct_count() == len(set(s1.entries) | set(s2.entries))

    def test_bottom_k_view_uses_sample_entries(self):
        day1, _ = two_instances(80)
        assigner = SeedAssigner(salt=2)
        sketch = StreamingBottomK(k=10, instance="day1",
                                  seed_assigner=assigner)
        sketch.update_batch(list(day1), list(day1.values()))
        view = dataset_view((sketch,))
        assert view.instance("day1") == sketch.to_sample().entries


class TestRankConditioning:
    def test_subset_sum_with_predicate(self):
        day1, _ = two_instances(200)
        sketch = StreamingBottomK(k=80, instance="day1",
                                  seed_assigner=SeedAssigner(salt=5))
        sketch.update_batch(list(day1), list(day1.values()))
        even = lambda key: key % 2 == 0  # noqa: E731
        estimate = rank_conditioning_total(sketch, even)
        truth = sum(v for k, v in day1.items() if even(k))
        assert estimate == pytest.approx(truth, rel=0.5)

    def test_requires_bottom_k(self):
        with pytest.raises(InvalidParameterError):
            rank_conditioning_total(
                StreamingPoisson(0.5, seed_assigner=SeedAssigner())
            )


class TestIndependenceRequirement:
    """Coordinated (shared-seed) sketches break the independent-sampling
    assumption of the Section 8 estimators and must be rejected."""

    def make_coordinated_pair(self):
        assigner = SeedAssigner(salt=1, coordinated=True)
        s1 = StreamingPoisson(0.5, instance="a", seed_assigner=assigner)
        s2 = StreamingPoisson(0.4, instance="b", seed_assigner=assigner)
        keys = [f"k{i}" for i in range(20)]
        s1.update_batch(keys, np.ones(20))
        s2.update_batch(keys, np.full(20, 2.0))
        return s1, s2

    def test_adapters_reject_coordinated_sketches(self):
        s1, s2 = self.make_coordinated_pair()
        with pytest.raises(InvalidParameterError, match="independent"):
            distinct_count(s1, s2)
        with pytest.raises(InvalidParameterError, match="independent"):
            l1_distance(s1, s2)
        with pytest.raises(InvalidParameterError, match="independent"):
            sum_aggregate((s1, s2), MaxObliviousL([0.5, 0.4]))
        with pytest.raises(InvalidParameterError, match="independent"):
            max_dominance(s1, s2)

    def test_coordination_agnostic_adapters_still_work(self):
        s1, s2 = self.make_coordinated_pair()
        view = dataset_view((s1, s2))
        assert isinstance(view, MultiInstanceDataset)
        assert vector_outcomes((s1, s2))
