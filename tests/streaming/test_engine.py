"""Unit tests for the sharded streaming engine."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.sampling.bottomk import bottom_k_sample
from repro.sampling.poisson import poisson_uniform_sample
from repro.sampling.ranks import PpsRanks
from repro.sampling.seeds import SeedAssigner
from repro.streaming.engine import StreamEngine
from repro.streaming.sketch import StreamingBottomK, StreamingPoisson


def make_columns(n: int = 500, seed: int = 0):
    generator = np.random.default_rng(seed)
    keys = generator.choice(10**7, size=n, replace=False)
    values = generator.random(n) * 10.0 + 0.05
    return keys, values


class TestStreamEngineBottomK:
    def test_sharded_ingest_matches_offline(self):
        keys, values = make_columns()
        assigner = SeedAssigner(salt=13)
        for n_shards in (1, 4, 7):
            engine = StreamEngine.bottom_k(
                k=25, seed_assigner=assigner, n_shards=n_shards
            )
            for start in range(0, len(keys), 64):
                engine.ingest("d", keys[start:start + 64],
                              values[start:start + 64])
            offline = bottom_k_sample(
                {int(k): float(v) for k, v in zip(keys, values)},
                25, seed_assigner=assigner, instance="d",
            )
            sample = engine.sample("d")
            assert sample.entries == offline.entries
            assert sample.ranks == offline.ranks
            assert sample.threshold == offline.threshold

    def test_executor_parallel_ingest_matches_serial(self):
        keys, values = make_columns()
        assigner = SeedAssigner(salt=1)
        serial = StreamEngine.bottom_k(k=20, seed_assigner=assigner,
                                       n_shards=4)
        serial.ingest("d", keys, values)
        with ThreadPoolExecutor(max_workers=4) as pool:
            parallel = StreamEngine.bottom_k(
                k=20, seed_assigner=assigner, n_shards=4, executor=pool
            )
            parallel.ingest("d", keys, values)
            assert parallel.sample("d").entries == serial.sample("d").entries

    def test_multiple_instances_are_independent_sketches(self):
        keys, values = make_columns(100)
        engine = StreamEngine.bottom_k(k=10, seed_assigner=SeedAssigner())
        engine.ingest("a", keys, values)
        engine.ingest("b", keys[:50], values[:50])
        assert set(engine.instance_labels) == {"a", "b"}
        assert engine.sample("a").instance == "a"
        assert len(engine.shard_sketches("a")) == 8
        assert engine.n_updates == 150

    def test_sketches_returns_all_instances(self):
        keys, values = make_columns(60)
        engine = StreamEngine.bottom_k(k=5, seed_assigner=SeedAssigner())
        engine.ingest(0, keys, values)
        engine.ingest(1, keys, values)
        sketches = engine.sketches()
        assert set(sketches) == {0, 1}
        assert all(isinstance(s, StreamingBottomK) for s in sketches.values())


class TestStreamEnginePoisson:
    def test_poisson_engine_matches_offline(self):
        keys, values = make_columns()
        assigner = SeedAssigner(salt=21)
        engine = StreamEngine.poisson(
            0.3, seed_assigner=assigner, n_shards=5
        )
        engine.ingest("d", keys, values)
        offline = poisson_uniform_sample(
            {int(k): float(v) for k, v in zip(keys, values)},
            0.3, seed_assigner=assigner, instance="d",
        )
        assert dict(engine.sample("d").entries) == dict(offline.entries)

    def test_pps_factory(self):
        engine = StreamEngine.poisson(0.1, rank_family=PpsRanks())
        engine.ingest(0, [1, 2, 3], [1.0, 2.0, 3.0])
        assert isinstance(engine.sketch(0), StreamingPoisson)
        assert engine.sketch(0).rank_family.name == "pps"


class TestStreamEngineIngestion:
    def test_ingest_updates_groups_by_instance(self):
        assigner = SeedAssigner(salt=2)
        keys, values = make_columns(90)
        instances = ["even" if i % 2 == 0 else "odd" for i in range(90)]
        engine = StreamEngine.bottom_k(k=8, seed_assigner=assigner)
        engine.ingest_updates(instances, keys, values)
        direct = StreamEngine.bottom_k(k=8, seed_assigner=assigner)
        direct.ingest("even", keys[::2], values[::2])
        direct.ingest("odd", keys[1::2], values[1::2])
        for label in ("even", "odd"):
            assert engine.sample(label).entries == direct.sample(label).entries

    def test_ingest_stream_batches(self):
        assigner = SeedAssigner(salt=3)
        keys, values = make_columns(120)
        stream = [("d", int(k), float(v)) for k, v in zip(keys, values)]
        engine = StreamEngine.bottom_k(k=9, seed_assigner=assigner)
        engine.ingest_stream(iter(stream), batch_size=17)
        direct = StreamEngine.bottom_k(k=9, seed_assigner=assigner)
        direct.ingest("d", keys, values)
        assert engine.sample("d").entries == direct.sample("d").entries
        assert engine.n_updates == 120

    def test_invalid_arguments(self):
        engine = StreamEngine.bottom_k(k=4)
        with pytest.raises(InvalidParameterError):
            engine.ingest(0, [1, 2], [1.0])
        with pytest.raises(InvalidParameterError):
            engine.ingest_updates([0], [1, 2], [1.0, 2.0])
        with pytest.raises(InvalidParameterError):
            engine.ingest_stream(iter([]), batch_size=0)
        with pytest.raises(InvalidParameterError):
            engine.sketch("never-seen")
        with pytest.raises(InvalidParameterError):
            StreamEngine.bottom_k(k=4, n_shards=0)
