"""Parity tests for the chunked ``update_many`` streaming fast path.

The bulk path must be indistinguishable from a sequence of scalar
``update`` calls — entries, ranks, seeds, threshold, heap invariants and
the discard counter — on every stream shape: distinct keys (the bulk
``argpartition`` path), duplicate-heavy streams and retained-key replays
(the per-row fallback), zero values, and chunk-boundary splits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.sampling.ranks import PpsRanks, UniformRanks
from repro.sampling.seeds import SeedAssigner
from repro.streaming.sketch import StreamingBottomK, StreamingPoisson


def sketch_state(sketch) -> dict:
    state = {
        "values": dict(sketch._values),
        "ranks": dict(sketch._ranks),
        "n_updates": sketch.n_updates,
        "n_discarded": sketch.n_discarded_keys,
        "threshold": sketch.threshold,
    }
    if isinstance(sketch, StreamingBottomK):
        state["seeds"] = dict(sketch._seeds)
        state["sample"] = sketch.to_sample().entries
    return state


def reference(make_sketch, keys, values):
    sketch = make_sketch()
    for key, value in zip(keys, values):
        sketch.update(key, value)
    return sketch


BOTTOMK_FACTORIES = [
    lambda salt: StreamingBottomK(k=5, seed_assigner=SeedAssigner(salt=salt)),
    lambda salt: StreamingBottomK(
        k=64, rank_family=PpsRanks(), seed_assigner=SeedAssigner(salt=salt)
    ),
]
POISSON_FACTORIES = [
    lambda salt: StreamingPoisson(0.25, seed_assigner=SeedAssigner(salt=salt)),
    lambda salt: StreamingPoisson(
        0.8, rank_family=PpsRanks(), seed_assigner=SeedAssigner(salt=salt)
    ),
]


@pytest.mark.parametrize("factory", BOTTOMK_FACTORIES + POISSON_FACTORIES)
@pytest.mark.parametrize("chunk_size", [3, 64, 10_000])
def test_distinct_keys_bulk_path(factory, chunk_size):
    rng = np.random.default_rng(7)
    keys = rng.permutation(np.arange(500, dtype=np.uint64)).tolist()
    values = np.round(rng.random(500) * 4, 3)
    ref = reference(lambda: factory(1), keys, values)
    fast = factory(1)
    fast.update_many(keys, values, chunk_size=chunk_size)
    assert sketch_state(fast) == sketch_state(ref)


@pytest.mark.parametrize("factory", BOTTOMK_FACTORIES + POISSON_FACTORIES)
@pytest.mark.parametrize("chunk_size", [5, 128])
def test_duplicate_heavy_stream_falls_back_exactly(factory, chunk_size):
    rng = np.random.default_rng(11)
    keys = rng.integers(0, 40, size=900).astype(np.uint64).tolist()
    values = np.round(rng.random(900) * 4, 3)
    values[rng.random(900) < 0.1] = 0.0
    ref = reference(lambda: factory(2), keys, values)
    fast = factory(2)
    fast.update_many(keys, values, chunk_size=chunk_size)
    assert sketch_state(fast) == sketch_state(ref)


@pytest.mark.parametrize("factory", BOTTOMK_FACTORIES + POISSON_FACTORIES)
def test_retained_key_replay_accumulates(factory):
    # Second call replays the same key universe: every chunk intersects the
    # retained set, so the fallback loop must accumulate, not reinsert.
    keys = np.arange(60, dtype=np.uint64).tolist()
    values = np.linspace(0.5, 3.0, 60)
    ref = reference(lambda: factory(3), keys + keys, np.tile(values, 2))
    fast = factory(3)
    fast.update_many(keys, values)
    fast.update_many(keys, values)
    assert sketch_state(fast) == sketch_state(ref)


def test_streaming_bottomk_discard_counter_matches_scalar():
    rng = np.random.default_rng(13)
    keys = rng.permutation(np.arange(2000, dtype=np.uint64)).tolist()
    values = rng.random(2000) + 0.01
    make = lambda: StreamingBottomK(k=8, seed_assigner=SeedAssigner(salt=5))
    ref = reference(make, keys, values)
    fast = make()
    fast.update_many(keys, values, chunk_size=256)
    assert fast.n_discarded_keys == ref.n_discarded_keys
    assert fast.n_discarded_keys > 0


def test_update_many_then_scalar_updates_compose():
    make = lambda: StreamingBottomK(k=4, seed_assigner=SeedAssigner(salt=9))
    keys = np.arange(50, dtype=np.uint64).tolist()
    values = np.linspace(1.0, 2.0, 50)
    ref = reference(make, keys + [3, 99], list(values) + [1.5, 0.7])
    fast = make()
    fast.update_many(keys, values)
    fast.update(3, 1.5)
    fast.update(99, 0.7)
    assert sketch_state(fast) == sketch_state(ref)


def test_update_many_validation():
    sketch = StreamingPoisson(0.5, seed_assigner=SeedAssigner(salt=1))
    with pytest.raises(InvalidParameterError):
        sketch.update_many([1, 2], [1.0])
    with pytest.raises(InvalidParameterError):
        sketch.update_many([1, 2], [1.0, -2.0])
    with pytest.raises(InvalidParameterError):
        sketch.update_many([1], [1.0], chunk_size=0)
    assert sketch.n_updates == 0


def test_update_many_validation_is_atomic_across_chunks():
    # A negative value in a *later* chunk must be rejected before any
    # earlier chunk is ingested.
    sketch = StreamingPoisson(0.9, seed_assigner=SeedAssigner(salt=1))
    keys = list(range(10))
    values = np.ones(10)
    values[7] = -1.0
    with pytest.raises(InvalidParameterError):
        sketch.update_many(keys, values, chunk_size=3)
    assert sketch.n_updates == 0 and len(sketch) == 0


def test_update_many_empty_column():
    sketch = StreamingBottomK(k=3, seed_assigner=SeedAssigner(salt=1))
    sketch.update_many([], [])
    assert len(sketch) == 0 and sketch.n_updates == 0


def test_uniform_ranks_poisson_bulk_matches_offline_inclusive_rule():
    # UniformRanks thresholds are inclusive (seed <= p); the bulk mask must
    # apply the same rule as the scalar path.
    assigner = SeedAssigner(salt=21)
    keys = np.arange(400, dtype=np.uint64).tolist()
    values = np.ones(400)
    make = lambda: StreamingPoisson(
        0.5, rank_family=UniformRanks(), seed_assigner=SeedAssigner(salt=21)
    )
    ref = reference(make, keys, values)
    fast = make()
    fast.update_many(keys, values, chunk_size=128)
    assert sketch_state(fast) == sketch_state(ref)
    seeds = assigner.seeds(keys, instance=0)
    assert set(fast._values) == {
        key for key, seed in zip(keys, seeds) if seed <= 0.5
    }
