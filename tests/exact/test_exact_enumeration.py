"""Tests for the columnar outcome-space enumeration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exact import (
    enumerate_outcome_batch,
    enumeration_masks,
    outcome_probabilities,
)
from repro.exceptions import InvalidParameterError
from repro.sampling.dispersed import ObliviousPoissonScheme


class TestEnumerationMasks:
    @pytest.mark.parametrize("r", [1, 2, 3, 5])
    def test_matches_scalar_iterator_order(self, r):
        scheme = ObliviousPoissonScheme((0.5,) * r)
        values = tuple(float(i + 1) for i in range(r))
        masks = enumeration_masks(r)
        scalar = [
            outcome.sampled
            for outcome, _ in scheme.iter_outcomes(values)
        ]
        assert len(masks) == 2 ** r == len(scalar)
        for row, sampled_set in zip(masks, scalar):
            assert frozenset(np.nonzero(row)[0].tolist()) == sampled_set

    def test_invalid_r(self):
        with pytest.raises(InvalidParameterError):
            enumeration_masks(0)
        with pytest.raises(InvalidParameterError):
            enumeration_masks(25)


class TestOutcomeProbabilities:
    @pytest.mark.parametrize("probabilities", [
        (0.5, 0.5), (0.2, 0.9), (0.3, 0.5, 0.8), (1.0, 0.4),
    ])
    def test_bitwise_equal_to_scalar_products(self, probabilities):
        scheme = ObliviousPoissonScheme(probabilities)
        values = tuple(1.0 for _ in probabilities)
        batch, probs = enumerate_outcome_batch(scheme, values)
        scalar = {
            outcome.sampled: probability
            for outcome, probability in scheme.iter_outcomes(values)
        }
        masks = enumeration_masks(len(probabilities))
        for row, probability in zip(masks, probs):
            sampled = frozenset(np.nonzero(row)[0].tolist())
            if sampled in scalar:
                assert probability == scalar[sampled]  # bit-identical
            else:
                # The scalar iterator skips zero-probability outcomes
                # (entries with p = 1 left unsampled); the batch keeps them
                # with probability exactly 0.
                assert probability == 0.0

    def test_probabilities_sum_to_one(self):
        scheme = ObliviousPoissonScheme((0.3, 0.7, 0.2))
        _, probs = enumerate_outcome_batch(scheme, (1.0, 2.0, 3.0))
        assert probs.sum() == pytest.approx(1.0)

    def test_per_row_probability_matrix(self):
        masks = enumeration_masks(2)
        matrix = np.array([[0.3, 0.7]] * 4)
        per_row = outcome_probabilities(masks, matrix)
        shared = outcome_probabilities(masks, np.array([0.3, 0.7]))
        np.testing.assert_array_equal(per_row, shared)


class TestEnumerateOutcomeBatch:
    def test_rows_reconstruct_scalar_outcomes(self):
        scheme = ObliviousPoissonScheme((0.4, 0.8))
        values = (3.0, 5.0)
        batch, _ = enumerate_outcome_batch(scheme, values)
        scalar = [o for o, _ in scheme.iter_outcomes(values)]
        assert batch.to_outcomes() == scalar

    def test_wrong_length_raises(self):
        scheme = ObliviousPoissonScheme((0.4, 0.8))
        with pytest.raises(InvalidParameterError):
            enumerate_outcome_batch(scheme, (1.0, 2.0, 3.0))
