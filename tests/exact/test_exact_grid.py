"""Tests for the grid sweeps of the exact-enumeration engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator_base import VectorEstimator
from repro.core.max_oblivious import (
    MaxObliviousHT,
    MaxObliviousL,
    MaxObliviousU,
    MaxObliviousUAsymmetric,
)
from repro.core.or_estimators import OrObliviousHT, OrObliviousL, OrObliviousU
from repro.core.variance import exact_moments
from repro.exact import exact_moments_grid, exact_moments_value_grid
from repro.exceptions import InvalidParameterError
from repro.sampling.dispersed import ObliviousPoissonScheme

ALL_FACTORIES = {
    "max_ht": MaxObliviousHT,
    "max_l": MaxObliviousL,
    "max_u": MaxObliviousU,
    "max_uas": MaxObliviousUAsymmetric,
    "or_ht": OrObliviousHT,
    "or_l": OrObliviousL,
    "or_u": OrObliviousU,
}


class TestValueGrid:
    @pytest.mark.parametrize("name", ["max_ht", "max_l", "max_u"])
    def test_bitwise_equal_to_per_point_scalar(self, name):
        probabilities = (0.5, 0.5)
        estimator = ALL_FACTORIES[name](probabilities)
        scheme = ObliviousPoissonScheme(probabilities)
        ratios = np.linspace(0.0, 1.0, 17)
        grid = np.column_stack([np.ones(17), ratios])
        means, variances = exact_moments_value_grid(estimator, scheme, grid)
        for index, ratio in enumerate(ratios):
            mean, variance = exact_moments(
                estimator, scheme, (1.0, float(ratio))
            )
            assert means[index] == mean
            assert variances[index] == variance

    def test_shape_validation(self):
        scheme = ObliviousPoissonScheme((0.5, 0.5))
        estimator = MaxObliviousL((0.5, 0.5))
        with pytest.raises(InvalidParameterError):
            exact_moments_value_grid(estimator, scheme, np.ones((3, 3)))


class TestProbabilityGrid:
    @pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
    @pytest.mark.parametrize("values", [(1.0, 1.0), (1.0, 0.0)])
    def test_bitwise_equal_to_per_point_scalar(self, name, values):
        factory = ALL_FACTORIES[name]
        grid = np.geomspace(0.05, 1.0, 11)
        means, variances = exact_moments_grid(factory, grid, values)
        for index, p in enumerate(grid):
            pair = (float(p), float(p))
            mean, variance = exact_moments(
                factory(pair), ObliviousPoissonScheme(pair), values
            )
            assert means[index] == mean
            assert variances[index] == variance

    def test_heterogeneous_probability_grid(self):
        grid = np.array([[0.2, 0.7], [0.5, 0.5], [0.9, 0.1]])
        means, variances = exact_moments_grid(
            MaxObliviousL, grid, (3.0, 1.0)
        )
        for index in range(len(grid)):
            pair = tuple(grid[index])
            mean, variance = exact_moments(
                MaxObliviousL(pair), ObliviousPoissonScheme(pair), (3.0, 1.0)
            )
            assert means[index] == mean
            assert variances[index] == variance

    def test_general_r_uniform_grid(self):
        r = 4
        grid = np.array([0.2, 0.6, 1.0])
        values = (1.0, 3.0, 2.0, 3.0)

        def factory(p):
            return MaxObliviousL(p)

        means, variances = exact_moments_grid(factory, grid, values)
        for index, p in enumerate(grid):
            vector = (float(p),) * r
            mean, variance = exact_moments(
                MaxObliviousL(vector), ObliviousPoissonScheme(vector), values
            )
            assert means[index] == pytest.approx(mean, rel=1e-12, abs=1e-12)
            assert variances[index] == pytest.approx(
                variance, rel=1e-12, abs=1e-12
            )

    def test_fallback_for_unregistered_estimator(self):
        class SampledCount(VectorEstimator):
            """Toy estimator with no grid kernel registered."""

            is_unbiased = False

            def __init__(self, probabilities):
                self.probabilities = tuple(probabilities)

            @property
            def r(self):
                return len(self.probabilities)

            def estimate(self, outcome):
                return float(len(outcome.sampled))

        grid = np.array([0.25, 0.75])
        means, variances = exact_moments_grid(
            SampledCount, grid, (1.0, 1.0)
        )
        for index, p in enumerate(grid):
            pair = (float(p), float(p))
            mean, variance = exact_moments(
                SampledCount(pair), ObliviousPoissonScheme(pair), (1.0, 1.0)
            )
            assert means[index] == mean
            assert variances[index] == variance
        # E[#sampled] = 2p for r = 2.
        np.testing.assert_allclose(means, 2.0 * grid)

    def test_invalid_probability_grid(self):
        with pytest.raises(InvalidParameterError):
            exact_moments_grid(MaxObliviousL, np.array([0.5, 0.0]), (1.0, 1.0))
        with pytest.raises(InvalidParameterError):
            exact_moments_grid(
                MaxObliviousL, np.ones((2, 3)), (1.0, 1.0)
            )

    def test_nan_probability_rejected(self):
        # Regression: NaN slipped through a min/max range check and
        # propagated silently; the scalar path raises, so must the grid.
        with pytest.raises(InvalidParameterError):
            exact_moments_grid(
                MaxObliviousL, np.array([0.5, float("nan")]), (1.0, 1.0)
            )

    def test_empty_grid(self):
        means, variances = exact_moments_grid(
            MaxObliviousL, np.zeros((0,)), (1.0, 1.0)
        )
        assert means.shape == variances.shape == (0,)
