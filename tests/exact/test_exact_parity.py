"""Golden scalar-parity suite for the vectorized exact-enumeration engine.

Every supported estimator family, across ``r`` and probability edge cases,
must reproduce the scalar reference :func:`repro.core.variance.
exact_moments` to 1e-12 (bit for bit in the ``r = 2`` figure settings) and
raise the same exceptions on invalid inputs.
"""

from __future__ import annotations

import pytest

from repro.core.max_oblivious import (
    MaxObliviousHT,
    MaxObliviousL,
    MaxObliviousU,
    MaxObliviousUAsymmetric,
)
from repro.core.or_estimators import (
    OrKnownSeedsL,
    OrObliviousHT,
    OrObliviousL,
    OrObliviousU,
)
from repro.core.variance import exact_moments
from repro.exact import exact_moments_vectorized
from repro.exceptions import InvalidOutcomeError
from repro.sampling.dispersed import ObliviousPoissonScheme

EDGE_PROBABILITIES = (1e-6, 0.05, 0.5, 0.9, 0.999999, 1.0)

R2_ESTIMATORS = {
    "max_ht": MaxObliviousHT,
    "max_l": MaxObliviousL,
    "max_u": MaxObliviousU,
    "max_uas": MaxObliviousUAsymmetric,
}
R2_OR_ESTIMATORS = {
    "or_ht": OrObliviousHT,
    "or_l": OrObliviousL,
    "or_u": OrObliviousU,
}


def both(estimator, scheme, values):
    scalar = exact_moments(estimator, scheme, values)
    vectorized = exact_moments_vectorized(estimator, scheme, values)
    return scalar, vectorized


class TestR2Parity:
    @pytest.mark.parametrize("name", sorted(R2_ESTIMATORS))
    @pytest.mark.parametrize("p", EDGE_PROBABILITIES)
    @pytest.mark.parametrize(
        "values", [(1.0, 0.4), (1.0, 1.0), (5.0, 0.0), (0.0, 0.0)]
    )
    def test_bitwise_max_family(self, name, p, values):
        estimator = R2_ESTIMATORS[name]((p, p))
        scheme = ObliviousPoissonScheme((p, p))
        scalar, vectorized = both(estimator, scheme, values)
        assert scalar == vectorized  # the r = 2 kernels match bit for bit

    @pytest.mark.parametrize("name", sorted(R2_OR_ESTIMATORS))
    @pytest.mark.parametrize("p", EDGE_PROBABILITIES)
    @pytest.mark.parametrize("values", [(1.0, 1.0), (1.0, 0.0), (0.0, 0.0)])
    def test_bitwise_or_family(self, name, p, values):
        estimator = R2_OR_ESTIMATORS[name]((p, p))
        scheme = ObliviousPoissonScheme((p, p))
        scalar, vectorized = both(estimator, scheme, values)
        assert scalar == vectorized

    @pytest.mark.parametrize("probabilities", [(0.2, 0.9), (0.7, 0.1)])
    def test_heterogeneous_probabilities(self, probabilities):
        scheme = ObliviousPoissonScheme(probabilities)
        for cls in R2_ESTIMATORS.values():
            estimator = cls(probabilities)
            scalar, vectorized = both(estimator, scheme, (2.0, 3.0))
            assert scalar == vectorized


class TestGeneralRParity:
    @pytest.mark.parametrize("r", [1, 2, 3, 8])
    @pytest.mark.parametrize("p", [1e-6, 0.3, 0.999999, 1.0])
    def test_uniform_max_l_and_ht(self, r, p):
        scheme = ObliviousPoissonScheme((p,) * r)
        values = tuple(float((i * 7) % 5) for i in range(r))
        for estimator in (MaxObliviousHT((p,) * r), MaxObliviousL((p,) * r)):
            scalar, vectorized = both(estimator, scheme, values)
            assert scalar[0] == pytest.approx(vectorized[0], abs=1e-12,
                                              rel=1e-12)
            assert scalar[1] == pytest.approx(vectorized[1], abs=1e-12,
                                              rel=1e-12)

    @pytest.mark.parametrize("r", [3, 8])
    def test_or_l_general_r(self, r):
        p = 0.4
        scheme = ObliviousPoissonScheme((p,) * r)
        values = tuple(float(i % 2) for i in range(r))
        scalar, vectorized = both(OrObliviousL((p,) * r), scheme, values)
        assert scalar[0] == pytest.approx(vectorized[0], rel=1e-12)
        assert scalar[1] == pytest.approx(vectorized[1], abs=1e-12,
                                          rel=1e-12)


class TestUnbiasednessAndClamp:
    def test_mean_equals_function_value(self):
        # exact enumeration certifies unbiasedness: E = max(v).
        scheme = ObliviousPoissonScheme((0.3, 0.6))
        for cls in (MaxObliviousHT, MaxObliviousL, MaxObliviousU):
            mean, _ = exact_moments_vectorized(
                cls((0.3, 0.6)), scheme, (2.0, 5.0)
            )
            assert mean == pytest.approx(5.0)

    def test_variance_clamped_at_zero_near_p_one(self):
        # Regression: second_moment - mean**2 is a tiny negative here by
        # catastrophic cancellation; both paths must clamp it to 0.0.
        p = 0.9999999999998703
        values = (255.9939, 260.0054)
        scheme = ObliviousPoissonScheme((p, p))
        for cls in (MaxObliviousL, MaxObliviousU, MaxObliviousUAsymmetric):
            estimator = cls((p, p))
            raw_mean = 0.0
            raw_second = 0.0
            for outcome, probability in scheme.iter_outcomes(values):
                estimate = estimator.estimate(outcome)
                raw_mean += probability * estimate
                raw_second += probability * estimate ** 2
            assert raw_second - raw_mean ** 2 < 0.0  # the cancellation bites
            scalar, vectorized = both(estimator, scheme, values)
            assert scalar[1] == 0.0
            assert vectorized[1] == 0.0

    def test_variance_zero_at_p_one(self):
        scheme = ObliviousPoissonScheme((1.0, 1.0))
        scalar, vectorized = both(
            MaxObliviousL((1.0, 1.0)), scheme, (4.0, 9.0)
        )
        assert scalar == vectorized == (9.0, 0.0)


class TestExceptionParity:
    def test_wrong_r_raises_same_exception(self):
        scheme = ObliviousPoissonScheme((0.5, 0.5, 0.5))
        estimator = MaxObliviousL((0.5, 0.5))
        with pytest.raises(InvalidOutcomeError):
            exact_moments(estimator, scheme, (1.0, 2.0, 3.0))
        with pytest.raises(InvalidOutcomeError):
            exact_moments_vectorized(estimator, scheme, (1.0, 2.0, 3.0))

    def test_non_binary_or_raises_same_exception(self):
        scheme = ObliviousPoissonScheme((0.5, 0.5))
        estimator = OrObliviousL((0.5, 0.5))
        with pytest.raises(InvalidOutcomeError):
            exact_moments(estimator, scheme, (2.0, 1.0))
        with pytest.raises(InvalidOutcomeError):
            exact_moments_vectorized(estimator, scheme, (2.0, 1.0))

    def test_seedless_enumeration_rejects_known_seed_estimators(self):
        scheme = ObliviousPoissonScheme((0.5, 0.5))
        estimator = OrKnownSeedsL((0.5, 0.5))
        with pytest.raises(InvalidOutcomeError):
            exact_moments(estimator, scheme, (1.0, 1.0))
        with pytest.raises(InvalidOutcomeError):
            exact_moments_vectorized(estimator, scheme, (1.0, 1.0))
