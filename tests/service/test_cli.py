"""End-to-end CLI drive: ingest -> snapshot -> merge -> query in a temp
directory, checked against in-process computation."""

from __future__ import annotations

import csv
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.sampling.seeds import SeedAssigner
from repro.service.cli import main
from repro.service.queries import Query
from repro.service.store import SketchStore

SALT = 7
THRESHOLD = 0.5


def make_rows(seed=0):
    generator = np.random.default_rng(seed)
    rows = []
    for instance in ("monday", "tuesday"):
        keys = generator.choice(4000, size=900, replace=False)
        values = generator.random(900) * 4.0 + 0.1
        rows += [
            (instance, f"user{key}", float(value))
            for key, value in zip(keys, values)
        ]
    return rows


def write_csv(path, rows, header=True):
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        if header:
            writer.writerow(["instance", "key", "value"])
        writer.writerows(rows)


def run_cli(capsys, *args) -> dict:
    assert main(list(args)) == 0
    return json.loads(capsys.readouterr().out)


def reference_store(rows) -> SketchStore:
    store = SketchStore()
    store.create(
        "traffic", "poisson", threshold=THRESHOLD,
        seed_assigner=SeedAssigner(salt=SALT),
    )
    store.ingest_rows("traffic", rows)
    return store


@pytest.fixture
def rows():
    return make_rows()


class TestCliEndToEnd:
    def test_ingest_query_matches_in_process(self, tmp_path, capsys, rows):
        write_csv(tmp_path / "updates.csv", rows)
        report = run_cli(
            capsys,
            "ingest", "--store", str(tmp_path / "store.bin"),
            "--name", "traffic", "--input", str(tmp_path / "updates.csv"),
            "--kind", "poisson", "--threshold", str(THRESHOLD),
            "--salt", str(SALT),
        )
        assert report["rows_ingested"] == len(rows)
        assert report["instances"] == ["monday", "tuesday"]

        result = run_cli(
            capsys,
            "query", "--store", str(tmp_path / "store.bin"),
            "--name", "traffic", "--kind", "distinct",
            "--instances", "monday", "tuesday",
        )
        expected = reference_store(rows).query(
            "traffic", Query.distinct("monday", "tuesday")
        )
        assert result["value"]["estimate"] == expected.value.estimate
        assert result["value"]["counts"] == dict(expected.value.counts)

        l1 = run_cli(
            capsys,
            "query", "--store", str(tmp_path / "store.bin"),
            "--name", "traffic", "--kind", "l1",
            "--instances", "monday", "tuesday",
        )
        direct = reference_store(rows).query(
            "traffic", Query.l1("monday", "tuesday")
        )
        assert l1["value"] == direct.value

    def test_threaded_ingest_matches_single_thread(
        self, tmp_path, capsys, rows
    ):
        write_csv(tmp_path / "updates.csv", rows)
        for threads, name in (("1", "serial.bin"), ("4", "threaded.bin")):
            run_cli(
                capsys,
                "ingest", "--store", str(tmp_path / name),
                "--name", "traffic",
                "--input", str(tmp_path / "updates.csv"),
                "--kind", "poisson", "--threshold", str(THRESHOLD),
                "--salt", str(SALT), "--threads", threads,
                "--batch-size", "256",
            )
        serial = SketchStore.restore(tmp_path / "serial.bin")
        threaded = SketchStore.restore(tmp_path / "threaded.bin")
        assert threaded.engine("traffic") == serial.engine("traffic")

    def test_split_ingest_then_merge_matches_full_ingest(
        self, tmp_path, capsys, rows
    ):
        half = len(rows) // 2
        write_csv(tmp_path / "full.csv", rows)
        write_csv(tmp_path / "a.csv", rows[:half], header=False)
        write_csv(tmp_path / "b.csv", rows[half:], header=False)
        for source, target in (
            ("full.csv", "full.bin"),
            ("a.csv", "a.bin"),
            ("b.csv", "b.bin"),
        ):
            run_cli(
                capsys,
                "ingest", "--store", str(tmp_path / target),
                "--name", "traffic", "--input", str(tmp_path / source),
                "--kind", "poisson", "--threshold", str(THRESHOLD),
                "--salt", str(SALT),
            )
        merged = run_cli(
            capsys,
            "merge", "--out", str(tmp_path / "merged.bin"),
            str(tmp_path / "a.bin"), str(tmp_path / "b.bin"),
        )
        assert "traffic" in merged["engines"]
        full = SketchStore.restore(tmp_path / "full.bin")
        fan_in = SketchStore.restore(tmp_path / "merged.bin")
        for label in ("monday", "tuesday"):
            assert fan_in.merged_sketch(
                "traffic", label
            ) == full.merged_sketch("traffic", label)

    def test_snapshot_summarises_engines(self, tmp_path, capsys, rows):
        write_csv(tmp_path / "updates.csv", rows)
        run_cli(
            capsys,
            "ingest", "--store", str(tmp_path / "store.bin"),
            "--name", "traffic", "--input", str(tmp_path / "updates.csv"),
            "--kind", "poisson", "--threshold", str(THRESHOLD),
            "--salt", str(SALT),
        )
        report = run_cli(
            capsys,
            "snapshot", "--store", str(tmp_path / "store.bin"),
            "--out", str(tmp_path / "copy.bin"),
        )
        summary = report["engines"]["traffic"]
        assert summary["kind"] == "poisson"
        assert summary["n_updates"] == len(rows)
        assert set(summary["instances"]) == {"monday", "tuesday"}
        copy = SketchStore.restore(tmp_path / "copy.bin")
        original = SketchStore.restore(tmp_path / "store.bin")
        assert copy.engine("traffic") == original.engine("traffic")

    def test_jsonl_input_and_int_keys(self, tmp_path, capsys):
        path = tmp_path / "updates.jsonl"
        with path.open("w") as handle:
            for key in range(50):
                handle.write(json.dumps(
                    {"instance": "d", "key": key, "value": 1.5}
                ) + "\n")
        report = run_cli(
            capsys,
            "ingest", "--store", str(tmp_path / "store.bin"),
            "--name", "bk", "--input", str(path),
            "--kind", "bottom_k", "--k", "8", "--salt", "1", "--int-keys",
        )
        assert report["rows_ingested"] == 50
        store = SketchStore.restore(tmp_path / "store.bin")
        direct = SketchStore()
        direct.create(
            "bk", "bottom_k", k=8, seed_assigner=SeedAssigner(salt=1),
        )
        direct.ingest("bk", "d", list(range(50)), [1.5] * 50)
        assert store.engine("bk") == direct.engine("bk")

    def test_query_confidence_flag(self, tmp_path, capsys, rows):
        write_csv(tmp_path / "updates.csv", rows)
        run_cli(
            capsys,
            "ingest", "--store", str(tmp_path / "store.bin"),
            "--name", "traffic", "--input", str(tmp_path / "updates.csv"),
            "--kind", "poisson", "--threshold", str(THRESHOLD),
            "--salt", str(SALT),
        )
        result = run_cli(
            capsys,
            "query", "--store", str(tmp_path / "store.bin"),
            "--name", "traffic", "--kind", "sum",
            "--instances", "monday", "--confidence",
        )
        confidence = result["confidence"]
        assert confidence["variance"] > 0.0
        assert confidence["ci90"]["lower"] <= result["value"]
        assert confidence["ci90"]["upper"] >= result["value"]
        # without the flag the payload stays lean
        plain = run_cli(
            capsys,
            "query", "--store", str(tmp_path / "store.bin"),
            "--name", "traffic", "--kind", "sum",
            "--instances", "monday",
        )
        assert "confidence" not in plain
        # refusal surfaces as the standard CLI error exit
        code = main([
            "query", "--store", str(tmp_path / "store.bin"),
            "--name", "traffic", "--kind", "l1",
            "--instances", "monday", "tuesday", "--confidence",
        ])
        assert code == 2
        assert "no variance estimator" in capsys.readouterr().err

    def test_missing_input_reports_error(self, tmp_path, capsys):
        code = main([
            "ingest", "--store", str(tmp_path / "s.bin"),
            "--name", "t", "--input", str(tmp_path / "absent.csv"),
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_query_unknown_name_reports_error(self, tmp_path, capsys, rows):
        write_csv(tmp_path / "updates.csv", rows)
        run_cli(
            capsys,
            "ingest", "--store", str(tmp_path / "store.bin"),
            "--name", "traffic", "--input", str(tmp_path / "updates.csv"),
            "--kind", "poisson", "--threshold", str(THRESHOLD),
        )
        code = main([
            "query", "--store", str(tmp_path / "store.bin"),
            "--name", "nope", "--kind", "sum", "--instances", "monday",
        ])
        assert code == 2
        assert "unknown store" in capsys.readouterr().err

    def test_module_entry_point(self, tmp_path):
        write_csv(tmp_path / "updates.csv", make_rows())
        import repro

        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro.service",
                "ingest", "--store", str(tmp_path / "store.bin"),
                "--name", "traffic",
                "--input", str(tmp_path / "updates.csv"),
                "--kind", "poisson", "--threshold", str(THRESHOLD),
            ],
            capture_output=True, text=True, env=env,
        )
        assert completed.returncode == 0, completed.stderr
        assert json.loads(completed.stdout)["command"] == "ingest"


class TestConvertAndBinaryIngest:
    def test_convert_then_replay_matches_csv_ingest(
        self, tmp_path, capsys, rows
    ):
        write_csv(tmp_path / "updates.csv", rows)
        report = run_cli(
            capsys,
            "convert", "--input", str(tmp_path / "updates.csv"),
            "--out", str(tmp_path / "updates.rbat"),
            "--batch-size", "500",
        )
        assert report["rows"] == len(rows)
        assert report["batches"] >= 2
        assert report["bytes"] == (tmp_path / "updates.rbat").stat().st_size

        for source in ("updates.csv", "updates.rbat"):
            run_cli(
                capsys,
                "ingest", "--store", str(tmp_path / f"{source}.store"),
                "--name", "traffic", "--input", str(tmp_path / source),
                "--kind", "poisson", "--threshold", str(THRESHOLD),
                "--salt", str(SALT),
            )
        from_csv = SketchStore.restore(tmp_path / "updates.csv.store")
        from_binary = SketchStore.restore(tmp_path / "updates.rbat.store")
        assert from_binary.engine("traffic") == from_csv.engine("traffic")

    def test_convert_int_keys_round_trip(self, tmp_path, capsys):
        write_csv(
            tmp_path / "u.csv",
            [("d", str(key), 1.0 + key) for key in range(40)],
            header=False,
        )
        run_cli(
            capsys,
            "convert", "--input", str(tmp_path / "u.csv"),
            "--out", str(tmp_path / "u.rbat"), "--int-keys",
        )
        from repro.server.wire import decode_batches

        (batch,) = decode_batches((tmp_path / "u.rbat").read_bytes())
        assert isinstance(batch.keys, np.ndarray)
        assert list(batch.keys) == list(range(40))

    def test_convert_refuses_binary_input(self, tmp_path, capsys, rows):
        write_csv(tmp_path / "u.csv", rows[:10], header=False)
        run_cli(
            capsys,
            "convert", "--input", str(tmp_path / "u.csv"),
            "--out", str(tmp_path / "u.rbat"),
        )
        with pytest.raises(SystemExit, match="binary"):
            main([
                "convert", "--input", str(tmp_path / "u.rbat"),
                "--out", str(tmp_path / "again.rbat"),
            ])

    def test_corrupt_binary_input_reports_error(self, tmp_path, capsys):
        (tmp_path / "bad.rbat").write_bytes(b"RBATgarbage")
        code = main([
            "ingest", "--store", str(tmp_path / "s.bin"),
            "--name", "t", "--input", str(tmp_path / "bad.rbat"),
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestMalformedUpdateStreams:
    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf"])
    def test_csv_non_finite_values_rejected(self, tmp_path, bad):
        write_csv(
            tmp_path / "u.csv",
            [("d", "a", "1.0"), ("d", "b", bad)],
            header=False,
        )
        with pytest.raises(SystemExit, match="finite") as excinfo:
            main([
                "ingest", "--store", str(tmp_path / "s.bin"),
                "--name", "t", "--input", str(tmp_path / "u.csv"),
            ])
        assert "u.csv:2" in str(excinfo.value)
        assert not (tmp_path / "s.bin").exists()

    def test_jsonl_non_finite_values_rejected(self, tmp_path):
        path = tmp_path / "u.jsonl"
        path.write_text(
            json.dumps({"instance": "d", "key": "a", "value": 1.0})
            + "\n"
            + '{"instance": "d", "key": "b", "value": NaN}\n'
        )
        with pytest.raises(SystemExit, match="finite") as excinfo:
            main([
                "ingest", "--store", str(tmp_path / "s.bin"),
                "--name", "t", "--input", str(path),
            ])
        assert "u.jsonl:2" in str(excinfo.value)

    def test_header_after_leading_blank_line_is_skipped(
        self, tmp_path, capsys
    ):
        """Regression: a leading blank line used to demote the header
        to a data row and fail the whole ingest."""
        (tmp_path / "u.csv").write_text(
            "\ninstance,key,value\nd,a,1.0\nd,b,2.0\n"
        )
        report = run_cli(
            capsys,
            "ingest", "--store", str(tmp_path / "s.bin"),
            "--name", "t", "--input", str(tmp_path / "u.csv"),
            "--kind", "bottom_k", "--k", "8",
        )
        assert report["rows_ingested"] == 2


class TestServeSpecs:
    """--create engine-spec parsing of the `serve` subcommand."""

    def test_parse_engine_spec(self):
        from repro.service.cli import _parse_engine_spec

        fields = _parse_engine_spec(
            "name=traffic,kind=poisson,threshold=0.5,salt=7,"
            "ranks=uniform,coordinated=1,shards=4"
        )
        assert fields == {
            "name": "traffic", "kind": "poisson", "threshold": "0.5",
            "salt": "7", "ranks": "uniform", "coordinated": "1",
            "shards": "4",
        }

    def test_parse_engine_spec_rejects_bad_input(self):
        from repro.service.cli import _parse_engine_spec

        with pytest.raises(SystemExit, match="key=value"):
            _parse_engine_spec("name=x,bogus_key=1")
        with pytest.raises(SystemExit, match="key=value"):
            _parse_engine_spec("no-equals-here")
        with pytest.raises(SystemExit, match="name="):
            _parse_engine_spec("kind=poisson,threshold=0.5")

    def test_create_from_spec_builds_matching_engines(self):
        from repro.service.cli import _create_from_spec, _parse_engine_spec

        store = SketchStore()
        _create_from_spec(store, _parse_engine_spec(
            "name=t,kind=poisson,threshold=0.5,salt=7"
        ))
        reference = SketchStore()
        reference.create(
            "t", "poisson", threshold=0.5,
            seed_assigner=SeedAssigner(salt=7), n_shards=8,
        )
        assert store.engine("t") == reference.engine("t")

        _create_from_spec(store, _parse_engine_spec(
            "name=b,kind=bottom_k,k=32,ranks=pps,shards=2"
        ))
        config = store.engine("b").sketch_config
        assert config["kind"] == "bottom_k" and config["k"] == 32
        assert store.engine("b").n_shards == 2

    def test_create_from_spec_requires_poisson_threshold(self):
        from repro.exceptions import InvalidParameterError
        from repro.service.cli import _create_from_spec

        with pytest.raises(InvalidParameterError, match="threshold"):
            _create_from_spec(SketchStore(), {"name": "t", "kind": "poisson"})
        with pytest.raises(InvalidParameterError, match="unknown sketch kind"):
            _create_from_spec(SketchStore(), {"name": "t", "kind": "nope"})


class TestRecoverCommand:
    """``python -m repro.service recover --store --wal-dir``."""

    @staticmethod
    def build_crashed_state(tmp_path):
        """A WAL with an engine and three logged batches, no snapshot —
        as if the process died before its first snapshot."""
        from repro.wal import WriteAheadLog

        store = SketchStore()
        wal = WriteAheadLog(tmp_path / "wal", fsync="off")
        store.attach_wal(wal)
        store.create(
            "traffic", "poisson", threshold=THRESHOLD,
            seed_assigner=SeedAssigner(salt=SALT),
        )
        for i in range(3):
            store.ingest(
                "traffic", "d", [f"k{i}-{j}" for j in range(4)], [1.0] * 4
            )
        wal.close()
        return store

    def test_recover_replays_the_tail_and_persists(self, tmp_path, capsys):
        from repro.service import codec

        crashed = self.build_crashed_state(tmp_path)
        store_path = tmp_path / "store.bin"
        report = run_cli(
            capsys,
            "recover",
            "--store", str(store_path),
            "--wal-dir", str(tmp_path / "wal"),
        )
        assert report["command"] == "recover"
        assert report["engines"] == ["traffic"]
        assert report["replayed_records"] == 4
        assert report["replayed_rows"] == 12
        assert report["skipped_records"] == 0
        assert report["last_lsn"] == 4
        assert report["torn_tail"] is None
        assert report["replay_seconds"] > 0
        recovered = SketchStore.restore(store_path)
        assert codec.to_bytes(recovered.engine("traffic")) == codec.to_bytes(
            crashed.engine("traffic")
        )
        assert recovered.version("traffic") == 3

    def test_recover_is_idempotent(self, tmp_path, capsys):
        self.build_crashed_state(tmp_path)
        store_path = tmp_path / "store.bin"
        args = (
            "recover",
            "--store", str(store_path),
            "--wal-dir", str(tmp_path / "wal"),
        )
        run_cli(capsys, *args)
        first = store_path.read_bytes()
        second = run_cli(capsys, *args)
        # the first run snapshotted and checkpointed: nothing replays
        assert second["replayed_records"] == 0
        assert store_path.read_bytes() == first

    def test_recover_without_history_creates_an_empty_store(
        self, tmp_path, capsys
    ):
        store_path = tmp_path / "store.bin"
        report = run_cli(
            capsys,
            "recover",
            "--store", str(store_path),
            "--wal-dir", str(tmp_path / "wal"),
        )
        assert report["engines"] == []
        assert report["replayed_records"] == 0
        assert store_path.exists()

    def test_recover_refuses_corrupt_history(self, tmp_path, capsys):
        self.build_crashed_state(tmp_path)
        (segment,) = list((tmp_path / "wal").glob("*.wal"))
        data = bytearray(segment.read_bytes())
        data[40] ^= 0x10  # inside the first record: mid-log corruption
        segment.write_bytes(bytes(data))
        store_path = tmp_path / "store.bin"
        assert main(
            [
                "recover",
                "--store", str(store_path),
                "--wal-dir", str(tmp_path / "wal"),
            ]
        ) == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "offset" in captured.err
        # the corrupt log wrote nothing: no partial store appears
        assert not store_path.exists()

    def test_recover_requires_the_wal_dir_flag(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["recover", "--store", str(tmp_path / "s.bin")])
