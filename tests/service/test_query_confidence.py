"""Per-query estimate quality (``cv`` / ``ci90``).

The payloads are pinned against the paper's variance estimators computed
by hand on the same merged sketches the planner queried, the refusal
policy is checked for every query shape without an applicable estimator,
and the cache tests assert the quality payload rides the version-keyed
result cache with its value.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.aggregates.distinct import (
    distinct_ht_variance,
    distinct_l_variance,
)
from repro.core.max_oblivious import MaxObliviousL
from repro.exceptions import ConfidenceUnavailableError
from repro.sampling.ranks import PpsRanks
from repro.sampling.seeds import SeedAssigner
from repro.service.confidence import CONFIDENCE_LEVEL, query_confidence
from repro.service.queries import Query
from repro.service.store import SketchStore


def make_columns(n=2000, seed=13):
    generator = np.random.default_rng(seed)
    return (
        generator.choice(10**6, size=n, replace=False),
        generator.random(n) * 5.0 + 0.01,
    )


@pytest.fixture
def oblivious_store():
    store = SketchStore()
    store.create(
        "traffic", "poisson", threshold=0.5,
        seed_assigner=SeedAssigner(salt=11), n_shards=4,
    )
    keys, values = make_columns()
    store.ingest("traffic", "mon", keys[:1400], values[:1400])
    store.ingest("traffic", "tue", keys[700:], values[700:])
    return store


@pytest.fixture
def bottom_k_store():
    store = SketchStore()
    store.create(
        "bk", "bottom_k", k=64, seed_assigner=SeedAssigner(salt=2),
    )
    keys, values = make_columns(1200, seed=9)
    store.ingest("bk", "d", keys, values)
    return store


def confident(store, name, query):
    """Run ``query`` with the quality request switched on."""
    from dataclasses import replace

    return store.query(name, replace(query, confidence=True))


class TestDistinctConfidence:
    def test_ht_variant_uses_exact_ht_variance(self, oblivious_store):
        result = confident(
            oblivious_store,
            "traffic",
            Query.distinct("mon", "tue", variant="ht"),
        )
        sketches = [
            oblivious_store.merged_sketch("traffic", label)
            for label in ("mon", "tue")
        ]
        p1, p2 = sketches[0].threshold, sketches[1].threshold
        expected = distinct_ht_variance(result.value.estimate, p1, p2)
        confidence = result.confidence
        assert confidence["variance"] == pytest.approx(expected)
        assert confidence["cv"] == pytest.approx(
            math.sqrt(expected) / result.value.estimate
        )
        assert confidence["ci90"]["confidence"] == CONFIDENCE_LEVEL

    def test_l_variant_uses_plugin_jaccard(self, oblivious_store):
        result = confident(
            oblivious_store, "traffic", Query.distinct("mon", "tue")
        )
        sketches = [
            oblivious_store.merged_sketch("traffic", label)
            for label in ("mon", "tue")
        ]
        p1, p2 = sketches[0].threshold, sketches[1].threshold
        estimate = result.value.estimate
        intersection = result.value.counts["F11"] / (p1 * p2)
        jaccard = min(1.0, max(0.0, intersection / estimate))
        expected = distinct_l_variance(estimate, jaccard, p1, p2)
        assert result.confidence["variance"] == pytest.approx(expected)
        # the L estimator dominates HT: its variance is never larger
        assert expected <= distinct_ht_variance(estimate, p1, p2)

    def test_interval_brackets_the_estimate(self, oblivious_store):
        result = confident(
            oblivious_store, "traffic", Query.distinct("mon", "tue")
        )
        interval = result.confidence["ci90"]
        assert interval["lower"] <= result.value.estimate <= interval["upper"]
        assert interval["lower"] >= 0.0


class TestSumConfidence:
    def test_bottom_k_plugin_variance_and_cv_bound(self, bottom_k_store):
        result = confident(bottom_k_store, "bk", Query.sum("d"))
        sample = bottom_k_store.sample("bk", "d")
        expected = sum(
            value * value * (1.0 - p) / (p * p)
            for value, p in (
                (
                    value,
                    sample.conditional_inclusion_probability(key),
                )
                for key, value in sample.entries.items()
            )
        )
        confidence = result.confidence
        assert confidence["variance"] == pytest.approx(expected)
        assert confidence["cv_bound"] == pytest.approx(
            1.0 / math.sqrt(sample.k - 2)
        )
        # the realized cv should respect the paper's bound in spirit;
        # it is an estimate, so allow slack rather than asserting <=
        assert confidence["cv"] < 3.0 * confidence["cv_bound"]

    def test_poisson_plugin_variance(self, oblivious_store):
        result = confident(oblivious_store, "traffic", Query.sum("mon"))
        sample = oblivious_store.sample("traffic", "mon")
        probabilities = sample.inclusion_probabilities
        expected = sum(
            value * value * (1.0 - probabilities[key])
            / (probabilities[key] ** 2)
            for key, value in sample.entries.items()
        )
        confidence = result.confidence
        assert confidence["variance"] == pytest.approx(expected)
        assert "cv_bound" not in confidence  # bottom-k only
        assert confidence["ci90"]["upper"] >= result.value

    def test_zero_estimate_has_no_cv(self, oblivious_store):
        query = Query.sum("mon", predicate=lambda key: False)
        result = confident(oblivious_store, "traffic", query)
        assert result.value == 0.0
        assert result.confidence["cv"] is None
        assert result.confidence["variance"] == 0.0


class TestRefusals:
    @pytest.fixture
    def pps_store(self):
        store = SketchStore()
        store.create(
            "flows", "poisson", threshold=10.0, rank_family=PpsRanks(),
            seed_assigner=SeedAssigner(salt=4), n_shards=2,
        )
        keys, values = make_columns(800, seed=5)
        store.ingest("flows", "mon", keys[:600], values[:600] / 100.0)
        store.ingest("flows", "tue", keys[300:], values[300:] / 100.0)
        return store

    def test_dominance_refused(self, pps_store):
        query = Query.dominance("mon", "tue")
        assert pps_store.query("flows", query)  # fine without confidence
        with pytest.raises(ConfidenceUnavailableError, match="dominance"):
            confident(pps_store, "flows", query)

    def test_l1_refused(self, oblivious_store):
        with pytest.raises(ConfidenceUnavailableError, match="l1"):
            confident(oblivious_store, "traffic", Query.l1("mon", "tue"))

    def test_custom_refused(self, oblivious_store):
        query = Query.custom("mon", fn=lambda sketches: 42.0)
        with pytest.raises(
            ConfidenceUnavailableError, match="no variance estimator"
        ):
            confident(oblivious_store, "traffic", query)

    def test_estimator_weighted_sum_refused(self, oblivious_store):
        query = Query.sum("mon", "tue", estimator=MaxObliviousL((0.5, 0.5)))
        with pytest.raises(
            ConfidenceUnavailableError, match="multi-instance"
        ):
            confident(oblivious_store, "traffic", query)

    def test_refusal_is_a_value_error(self, oblivious_store):
        # the server maps ValueError subclasses to HTTP 400
        with pytest.raises(ValueError):
            confident(oblivious_store, "traffic", Query.l1("mon", "tue"))


class TestCacheIntegration:
    def test_confidence_rides_the_cache_entry(self, oblivious_store):
        query = Query.distinct("mon", "tue")
        first = confident(oblivious_store, "traffic", query)
        assert first.from_cache is False
        second = confident(oblivious_store, "traffic", query)
        assert second.from_cache is True
        assert second.confidence == first.confidence
        assert second.confidence is not None

    def test_confidence_flag_is_part_of_the_cache_key(self, oblivious_store):
        query = Query.distinct("mon", "tue")
        plain = oblivious_store.query("traffic", query)
        assert plain.confidence is None
        enriched = confident(oblivious_store, "traffic", query)
        # the plain entry did not satisfy the confident request
        assert enriched.from_cache is False
        assert enriched.confidence is not None
        # and the confident entry does not leak into plain requests
        again = oblivious_store.query("traffic", query)
        assert again.from_cache is True
        assert again.confidence is None


class TestDirectPayload:
    def test_payload_shape(self, oblivious_store):
        query = Query("sum", ("mon",), confidence=True)
        _, sketches = oblivious_store.snapshot_view(
            "traffic", query.instances
        )
        value = oblivious_store.query("traffic", query).value
        payload = query_confidence(sketches, query, value)
        assert set(payload) == {"cv", "variance", "ci90"}
        assert set(payload["ci90"]) == {
            "lower", "upper", "confidence", "method",
        }
        assert payload["ci90"]["method"] == "normal"
