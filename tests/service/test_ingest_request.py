"""The :class:`IngestRequest` funnel and its deprecated shims.

Every write path into :class:`SketchStore` now flows through one
``submit(IngestRequest)`` entry point; the old ``ingest`` /
``ingest_rows`` / ``ingest_batches`` / ``replay_batch`` methods are
thin shims over it and must stay behaviourally identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.seeds import SeedAssigner
from repro.service import codec
from repro.service.store import IngestRequest, SketchStore


def build_store(kind="bottom_k", **kwargs):
    store = SketchStore()
    defaults = {
        "seed_assigner": SeedAssigner(salt=5, coordinated=True),
        "n_shards": 4,
    }
    defaults.update(kwargs)
    if kind == "bottom_k":
        defaults.setdefault("k", 48)
    else:
        defaults.setdefault("threshold", 0.4)
    store.create("traffic", kind, **defaults)
    return store


def make_columns(n=400, seed=0):
    generator = np.random.default_rng(seed)
    keys = generator.choice(10**8, size=n, replace=False)
    values = generator.random(n) * 10.0 + 0.01
    return keys, values


class TestIngestRequestValidation:
    def test_defaults(self):
        request = IngestRequest(engine="traffic")
        assert request.batches == ()
        assert request.source == "api"
        assert request.version is None
        assert not request.wal_bypass
        assert request.coalesce

    def test_engine_must_be_nonempty_string(self):
        with pytest.raises(ValueError, match="engine"):
            IngestRequest(engine="")
        with pytest.raises(ValueError, match="engine"):
            IngestRequest(engine=None)  # type: ignore[arg-type]

    def test_source_must_be_nonempty_string(self):
        with pytest.raises(ValueError, match="source"):
            IngestRequest(engine="traffic", source="")

    def test_batches_normalized_to_triples(self):
        keys, values = make_columns(8)
        request = IngestRequest(
            engine="traffic", batches=[("mon", keys, values)]
        )
        assert isinstance(request.batches, tuple)
        ((instance, got_keys, got_values),) = request.batches
        assert instance == "mon"
        assert got_keys is keys and got_values is values

    def test_malformed_batches_rejected(self):
        with pytest.raises(ValueError, match="batch"):
            IngestRequest(engine="traffic", batches=[("mon", [1, 2])])

    def test_forced_version_requires_exactly_one_batch(self):
        keys, values = make_columns(4)
        batch = ("mon", keys, values)
        IngestRequest(engine="traffic", batches=[batch], version=3)
        with pytest.raises(ValueError, match="version"):
            IngestRequest(
                engine="traffic", batches=[batch, batch], version=3
            )
        with pytest.raises(ValueError, match="version"):
            IngestRequest(engine="traffic", batches=(), version=3)

    def test_frozen(self):
        request = IngestRequest(engine="traffic")
        with pytest.raises(AttributeError):
            request.engine = "other"  # type: ignore[misc]


class TestSubmit:
    def test_submit_multi_batch_bumps_version_per_batch(self):
        store = build_store()
        keys, values = make_columns(300)
        request = IngestRequest(
            engine="traffic",
            batches=[
                ("mon", keys[:150], values[:150]),
                ("tue", keys[150:], values[150:]),
            ],
            coalesce=False,
        )
        version = store.submit(request)
        assert version == store.version("traffic") == 2

    def test_submit_coalesces_same_instance_batches(self):
        keys, values = make_columns(300)
        split = build_store()
        split.submit(
            IngestRequest(
                engine="traffic",
                batches=[
                    ("mon", keys[:100], values[:100]),
                    ("mon", keys[100:], values[100:]),
                ],
                coalesce=True,
            )
        )
        # one coalesced application: a single version bump
        assert split.version("traffic") == 1
        whole = build_store()
        whole.ingest("traffic", "mon", keys, values)
        assert codec.to_bytes(split.engine("traffic")) == codec.to_bytes(
            whole.engine("traffic")
        )

    def test_empty_submit_returns_current_version(self):
        store = build_store()
        assert store.submit(IngestRequest(engine="traffic")) == 0

    def test_submit_rejects_non_request(self):
        store = build_store()
        with pytest.raises(ValueError, match="IngestRequest"):
            store.submit({"engine": "traffic"})  # type: ignore[arg-type]

    def test_version_forced_submit_applies_once(self):
        keys, values = make_columns(120)
        store = build_store()
        replay = IngestRequest(
            engine="traffic",
            batches=[("mon", keys, values)],
            version=1,
            source="replay",
        )
        assert store.submit(replay) == 1
        before = codec.to_bytes(store.engine("traffic"))
        # an already-applied version is the caller's skip-check to make;
        # the store refuses rather than double-counting
        with pytest.raises(ValueError, match="already at"):
            store.submit(replay)
        assert codec.to_bytes(store.engine("traffic")) == before


class TestDeprecatedShims:
    def test_shims_match_submit_bit_exactly(self):
        keys, values = make_columns(400)
        rows = [("mon", int(key), float(value)) for key, value in
                zip(keys[:50], values[:50])]

        via_shims = build_store()
        via_shims.ingest("traffic", "mon", keys[:200], values[:200])
        via_shims.ingest_batches(
            "traffic", [("tue", keys[200:], values[200:])]
        )
        via_shims.ingest_rows("traffic", rows)

        via_submit = build_store()
        via_submit.submit(
            IngestRequest(
                engine="traffic",
                batches=[("mon", keys[:200], values[:200])],
                coalesce=False,
            )
        )
        via_submit.submit(
            IngestRequest(
                engine="traffic",
                batches=[("tue", keys[200:], values[200:])],
                source="batches",
            )
        )
        via_submit.submit(
            IngestRequest(
                engine="traffic",
                batches=[
                    (instance, [key], [value])
                    for instance, key, value in rows
                ],
                source="rows",
            )
        )
        assert codec.to_bytes(via_shims.engine("traffic")) == codec.to_bytes(
            via_submit.engine("traffic")
        )
        assert via_shims.version("traffic") == via_submit.version("traffic")

    def test_replay_batch_shim_forces_version(self):
        keys, values = make_columns(60)
        store = build_store()
        store.replay_batch("traffic", "mon", keys, values, 1)
        assert store.version("traffic") == 1
        before = codec.to_bytes(store.engine("traffic"))
        with pytest.raises(ValueError, match="already at"):
            store.replay_batch("traffic", "mon", keys, values, 1)
        assert codec.to_bytes(store.engine("traffic")) == before

    def test_shims_are_marked_deprecated(self):
        for name in ("ingest", "ingest_rows", "ingest_batches",
                     "replay_batch"):
            assert "deprecated" in getattr(SketchStore, name).__doc__
