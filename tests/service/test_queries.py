"""Query planner: routing parity with the streaming adapters and the
version-keyed result cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.max_oblivious import MaxObliviousL
from repro.exceptions import InvalidParameterError, UnknownStoreError
from repro.sampling.ranks import PpsRanks
from repro.sampling.seeds import SeedAssigner
from repro.service.queries import Query, QueryPlanner
from repro.service.store import SketchStore
from repro.streaming import query as streaming_query


def make_columns(n=2500, seed=3):
    generator = np.random.default_rng(seed)
    return (
        generator.choice(10**6, size=n, replace=False),
        generator.random(n) * 5.0 + 0.01,
    )


@pytest.fixture
def oblivious_store():
    store = SketchStore()
    store.create(
        "traffic", "poisson", threshold=0.5,
        seed_assigner=SeedAssigner(salt=11), n_shards=4,
    )
    keys, values = make_columns()
    store.ingest("traffic", "mon", keys[:1800], values[:1800])
    store.ingest("traffic", "tue", keys[900:], values[900:])
    return store


@pytest.fixture
def pps_store():
    store = SketchStore()
    store.create(
        "flows", "poisson", threshold=10.0, rank_family=PpsRanks(),
        seed_assigner=SeedAssigner(salt=4), n_shards=2,
    )
    keys, values = make_columns(800, seed=5)
    store.ingest("flows", "mon", keys[:600], values[:600] / 100.0)
    store.ingest("flows", "tue", keys[300:], values[300:] / 100.0)
    return store


class TestRouting:
    def test_distinct_matches_streaming_adapter(self, oblivious_store):
        result = oblivious_store.query(
            "traffic", Query.distinct("mon", "tue")
        )
        sketches = [
            oblivious_store.merged_sketch("traffic", label)
            for label in ("mon", "tue")
        ]
        direct = streaming_query.distinct_count(*sketches, variant="l")
        assert result.value == direct
        ht = oblivious_store.query(
            "traffic", Query.distinct("mon", "tue", variant="ht")
        )
        assert ht.value == streaming_query.distinct_count(
            *sketches, variant="ht"
        )

    def test_l1_matches_streaming_adapter(self, oblivious_store):
        result = oblivious_store.query("traffic", Query.l1("mon", "tue"))
        sketches = [
            oblivious_store.merged_sketch("traffic", label)
            for label in ("mon", "tue")
        ]
        assert result.value == streaming_query.l1_distance(*sketches)

    def test_sum_with_estimator_matches_sum_aggregate(self, oblivious_store):
        estimator = MaxObliviousL((0.5, 0.5))
        result = oblivious_store.query(
            "traffic", Query.sum("mon", "tue", estimator=estimator)
        )
        sketches = [
            oblivious_store.merged_sketch("traffic", label)
            for label in ("mon", "tue")
        ]
        assert result.value == streaming_query.sum_aggregate(
            sketches, estimator
        )

    def test_single_instance_sum_poisson_is_horvitz_thompson(
        self, oblivious_store
    ):
        result = oblivious_store.query("traffic", Query.sum("mon"))
        sample = oblivious_store.sample("traffic", "mon")
        assert result.value == sample.horvitz_thompson_total()

    def test_single_instance_sum_bottom_k_is_rank_conditioning(self):
        store = SketchStore()
        store.create(
            "bk", "bottom_k", k=64, seed_assigner=SeedAssigner(salt=2),
        )
        keys, values = make_columns(1200, seed=9)
        store.ingest("bk", "d", keys, values)
        result = store.query("bk", Query.sum("d"))
        assert result.value == store.sample(
            "bk", "d"
        ).rank_conditioning_total()

    def test_dominance_matches_streaming_adapter(self, pps_store):
        result = pps_store.query("flows", Query.dominance("mon", "tue"))
        sketches = [
            pps_store.merged_sketch("flows", label)
            for label in ("mon", "tue")
        ]
        assert result.value == streaming_query.max_dominance(*sketches)

    def test_custom_query_runs_fn(self, oblivious_store):
        query = Query.custom(
            "mon", fn=lambda sketches: len(sketches[0].entries)
        )
        result = oblivious_store.query("traffic", query)
        assert result.value == len(
            oblivious_store.merged_sketch("traffic", "mon").entries
        )

    def test_predicate_restricts_aggregate(self, oblivious_store):
        even = Query.distinct(
            "mon", "tue", predicate=lambda key: key % 2 == 0
        )
        full = oblivious_store.query(
            "traffic", Query.distinct("mon", "tue")
        )
        restricted = oblivious_store.query("traffic", even)
        assert restricted.value.estimate < full.value.estimate

    def test_invalid_queries(self, oblivious_store):
        with pytest.raises(InvalidParameterError, match="kind"):
            Query("nonsense", ("mon",))
        with pytest.raises(InvalidParameterError, match="two instances"):
            oblivious_store.query("traffic", Query("distinct", ("mon",)))
        with pytest.raises(InvalidParameterError, match="estimator"):
            oblivious_store.query("traffic", Query.sum("mon", "tue"))
        with pytest.raises(InvalidParameterError, match="fn"):
            oblivious_store.query("traffic", Query("custom", ("mon",)))
        with pytest.raises(UnknownStoreError):
            oblivious_store.query("nope", Query.sum("mon"))


class TestCache:
    def test_second_run_is_served_from_cache(self, oblivious_store):
        query = Query.distinct("mon", "tue")
        first = oblivious_store.query("traffic", query)
        second = oblivious_store.query("traffic", query)
        assert not first.from_cache
        assert second.from_cache
        assert second.value is first.value
        assert second.version == first.version
        # an equal (not identical) query also hits
        third = oblivious_store.query("traffic", Query.distinct("mon", "tue"))
        assert third.from_cache

    def test_ingest_invalidates_cache(self, oblivious_store):
        query = Query.distinct("mon", "tue")
        first = oblivious_store.query("traffic", query)
        oblivious_store.ingest("traffic", "mon", [123456789], [1.0])
        after = oblivious_store.query("traffic", query)
        assert not after.from_cache
        assert after.version == first.version + 1

    def test_predicate_queries_cache_by_identity(self, oblivious_store):
        query = Query.distinct("mon", "tue", predicate=lambda key: True)
        first = oblivious_store.query("traffic", query)
        second = oblivious_store.query("traffic", query)
        assert not first.from_cache and second.from_cache

    def test_distinct_custom_callables_never_collide(self, oblivious_store):
        """Regression: the cache used to key on ``Query`` equality alone,
        so two *distinct* custom callables that compare equal (a user
        ``__eq__`` coarser than the callable's behaviour, equal bound
        methods, ...) shared one cache entry at the same store version.
        Parameters must key by identity."""

        class CutoffQuery:
            def __init__(self, cutoff):
                self.cutoff = cutoff

            def __call__(self, sketches):
                return self.cutoff

            def __eq__(self, other):  # deliberately coarser than behaviour
                return isinstance(other, CutoffQuery)

            def __hash__(self):
                return hash(CutoffQuery)

        low, high = CutoffQuery(1.0), CutoffQuery(2.0)
        query_low = Query.custom("mon", fn=low)
        query_high = Query.custom("mon", fn=high)
        assert query_low == query_high  # the collision precondition
        first = oblivious_store.query("traffic", query_low)
        second = oblivious_store.query("traffic", query_high)
        assert not second.from_cache
        assert (first.value, second.value) == (1.0, 2.0)
        # the same callable object still hits
        assert oblivious_store.query("traffic", query_low).from_cache
        assert (
            oblivious_store.query("traffic", Query.custom("mon", fn=high))
            .value
            == 2.0
        )

    def test_cache_is_bounded_lru(self, oblivious_store):
        planner = QueryPlanner(oblivious_store, max_cache_entries=2)
        queries = [
            Query.sum("mon"),
            Query.sum("tue"),
            Query.distinct("mon", "tue"),
        ]
        for query in queries:
            planner.run("traffic", query)
        assert len(planner._cache) == 2
        # the oldest entry was evicted, the newest two still hit
        assert planner.run("traffic", queries[2]).from_cache
        assert not planner.run("traffic", queries[0]).from_cache

    def test_resize_shrinks_lru(self, oblivious_store):
        planner = QueryPlanner(oblivious_store)
        queries = [
            Query.sum("mon"),
            Query.sum("tue"),
            Query.distinct("mon", "tue"),
        ]
        for query in queries:
            planner.run("traffic", query)
        planner.resize(1)
        assert len(planner._cache) == 1
        # the newest entry survives the shrink
        assert planner.run("traffic", queries[2]).from_cache
        assert not planner.run("traffic", queries[0]).from_cache
        with pytest.raises(InvalidParameterError, match="positive"):
            planner.resize(0)

    def test_execute_bypasses_cache(self, oblivious_store):
        planner = QueryPlanner(oblivious_store)
        query = Query.sum("mon")
        cached = planner.run("traffic", query)
        assert planner.execute("traffic", query) == cached.value
        assert planner.hits == 0 and planner.misses == 1

    def test_float_protocol(self, oblivious_store):
        result = oblivious_store.query("traffic", Query.sum("mon"))
        assert float(result) == float(result.value)
