"""SketchStore: concurrent ingest parity, versioning, persistence,
fan-in."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.exceptions import (
    InvalidParameterError,
    SketchCodecError,
    UnknownStoreError,
)
from repro.sampling.ranks import PpsRanks
from repro.sampling.seeds import SeedAssigner
from repro.service.store import SketchStore
from repro.streaming.engine import StreamEngine


def make_batches(n_keys=6000, n_batches=12, seed=0, instances=("d",)):
    """Per-instance update batches over *distinct* keys (the
    pre-aggregated model in which sketches are order-insensitive)."""
    generator = np.random.default_rng(seed)
    batches = []
    for index, instance in enumerate(instances):
        keys = generator.choice(10**8, size=n_keys, replace=False)
        values = generator.random(n_keys) * 10.0 + 0.01
        for start in range(0, n_keys, n_keys // n_batches):
            stop = start + n_keys // n_batches
            batches.append((instance, keys[start:stop], values[start:stop]))
    return batches


def build_store(kind="bottom_k", **kwargs):
    store = SketchStore()
    defaults = {
        "seed_assigner": SeedAssigner(salt=5, coordinated=True),
        "n_shards": 4,
    }
    defaults.update(kwargs)
    if kind == "bottom_k":
        defaults.setdefault("k", 48)
    else:
        defaults.setdefault("threshold", 0.4)
    store.create("traffic", kind, **defaults)
    return store


class TestConcurrentIngest:
    @pytest.mark.parametrize("kind", ["bottom_k", "poisson"])
    def test_four_thread_ingest_matches_serial(self, kind):
        batches = make_batches(instances=("mon", "tue"))

        serial = build_store(kind)
        for instance, keys, values in batches:
            serial.ingest("traffic", instance, keys, values)

        concurrent = build_store(kind)
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(
                pool.map(
                    lambda batch: concurrent.ingest("traffic", *batch),
                    batches,
                )
            )

        assert concurrent.version("traffic") == serial.version("traffic")
        assert concurrent.engine("traffic") == serial.engine("traffic")
        for instance in ("mon", "tue"):
            merged = concurrent.merged_sketch("traffic", instance)
            assert merged == serial.merged_sketch("traffic", instance)
            assert (
                concurrent.sample("traffic", instance).entries
                == serial.sample("traffic", instance).entries
            )

    def test_concurrent_ingest_with_queries_interleaved(self):
        batches = make_batches(n_keys=3000, instances=("mon",))
        store = build_store("poisson")
        with ThreadPoolExecutor(max_workers=5) as pool:
            ingest_futures = [
                pool.submit(store.ingest, "traffic", *batch)
                for batch in batches
            ]
            read_futures = [
                pool.submit(store.merged_sketch, "traffic", "mon")
                for _ in range(8)
            ]
            for future in ingest_futures + read_futures:
                future.result()
        # every quiescent read is a consistent prefix; the final state
        # matches serial ingest
        serial = build_store("poisson")
        for batch in batches:
            serial.ingest("traffic", *batch)
        assert store.engine("traffic") == serial.engine("traffic")


class TestRegistryAndVersions:
    def test_versions_are_monotone_per_ingest(self):
        store = build_store()
        assert store.version("traffic") == 0
        for expected in (1, 2, 3):
            version = store.ingest(
                "traffic", "d", [expected], [float(expected)]
            )
            assert version == expected == store.version("traffic")

    def test_unknown_name_raises_typed_error(self):
        store = SketchStore()
        with pytest.raises(UnknownStoreError):
            store.engine("nope")
        with pytest.raises(UnknownStoreError):
            store.ingest("nope", "d", [1], [1.0])
        assert issubclass(UnknownStoreError, KeyError)

    def test_duplicate_and_invalid_creation(self):
        store = build_store()
        with pytest.raises(InvalidParameterError, match="already exists"):
            store.create("traffic", "bottom_k", k=4)
        with pytest.raises(InvalidParameterError, match="requires"):
            store.create("x", "bottom_k")
        with pytest.raises(InvalidParameterError, match="requires"):
            store.create("x", "poisson")
        with pytest.raises(InvalidParameterError, match="kind"):
            store.create("x", "unknown")
        with pytest.raises(InvalidParameterError, match="poisson"):
            store.create("x", "bottom_k", k=3, threshold=0.5)

    def test_failed_ingest_changes_nothing(self):
        store = build_store()
        store.ingest("traffic", "d", [1, 2], [1.0, 2.0])
        before = store.engine("traffic").state_dict()
        bad_values = np.ones(50)
        bad_values[-1] = -1.0  # would otherwise fail mid-apply
        with pytest.raises(InvalidParameterError, match="nonnegative"):
            store.ingest("traffic", "d", list(range(100, 150)), bad_values)
        # atomic rejection: no partial shard updates, no version bump
        assert store.version("traffic") == 1
        assert store.engine("traffic").state_dict() == before

    def test_ingest_rows_groups_by_instance(self):
        store = build_store(kind="poisson")
        rows = [("mon", 1, 2.0), ("tue", 2, 3.0), ("mon", 3, 4.0)]
        store.ingest_rows("traffic", rows)
        direct = build_store(kind="poisson")
        direct.ingest("traffic", "mon", [1, 3], [2.0, 4.0])
        direct.ingest("traffic", "tue", [2], [3.0])
        assert store.engine("traffic") == direct.engine("traffic")


class TestPersistence:
    def test_snapshot_restore_is_state_identical(self, tmp_path):
        store = build_store()
        store.create(
            "pps",
            "poisson",
            threshold=0.2,
            rank_family=PpsRanks(),
            seed_assigner=SeedAssigner(salt=1),
            n_shards=2,
        )
        for instance, keys, values in make_batches(
            n_keys=2000, instances=("mon", "tue")
        ):
            store.ingest("traffic", instance, keys, values)
            store.ingest("pps", instance, keys, values)
        path = store.snapshot(tmp_path / "store.bin")

        restored = SketchStore.restore(path)
        assert restored.names() == store.names()
        for name in store.names():
            assert restored.version(name) == store.version(name)
            assert restored.engine(name) == store.engine(name)
        assert restored.describe() == store.describe()

    def test_restored_store_continues_ingesting_identically(self, tmp_path):
        batches = make_batches(n_keys=2000, instances=("mon",))
        store = build_store()
        for batch in batches[:6]:
            store.ingest("traffic", *batch)
        restored = SketchStore.restore(
            store.snapshot(tmp_path / "mid.bin")
        )
        for batch in batches[6:]:
            store.ingest("traffic", *batch)
            restored.ingest("traffic", *batch)
        assert restored.engine("traffic") == store.engine("traffic")
        assert (
            restored.engine("traffic").state_dict()
            == store.engine("traffic").state_dict()
        )


class TestFanIn:
    def test_merge_snapshot_equals_single_store_ingest(self, tmp_path):
        batches = make_batches(instances=("mon", "tue"))
        reference = build_store("poisson")
        for batch in batches:
            reference.ingest("traffic", *batch)

        half = len(batches) // 2
        peers = []
        for index, part in enumerate((batches[:half], batches[half:])):
            peer = build_store("poisson")
            for batch in part:
                peer.ingest("traffic", *batch)
            peers.append(peer.snapshot(tmp_path / f"peer{index}.bin"))

        merged = SketchStore.restore(peers[0])
        merged.merge_snapshot(peers[1])
        assert merged.engine("traffic") == reference.engine("traffic")
        # fan-in bumps the version past both peers
        assert merged.version("traffic") > max(
            SketchStore.restore(path).version("traffic") for path in peers
        )

    def test_merge_adopts_names_missing_locally(self, tmp_path):
        local = build_store()
        peer = SketchStore()
        peer.create(
            "other", "poisson", threshold=0.5,
            seed_assigner=SeedAssigner(salt=2),
        )
        peer.ingest("other", "d", [1, 2], [1.0, 2.0])
        local.merge_snapshot(peer.snapshot(tmp_path / "peer.bin"))
        assert set(local.names()) == {"traffic", "other"}
        assert local.engine("other") == peer.engine("other")

    def test_merge_rejects_mismatched_configs(self, tmp_path):
        local = build_store(n_shards=4)
        peer = SketchStore()
        peer.create(
            "traffic", "bottom_k", k=48,
            seed_assigner=SeedAssigner(salt=5, coordinated=True),
            n_shards=2,
        )
        path = peer.snapshot(tmp_path / "peer.bin")
        with pytest.raises(InvalidParameterError, match="shards"):
            local.merge_snapshot(path)

        other_k = SketchStore()
        other_k.create(
            "traffic", "bottom_k", k=7,
            seed_assigner=SeedAssigner(salt=5, coordinated=True),
            n_shards=4,
        )
        path = other_k.snapshot(tmp_path / "otherk.bin")
        with pytest.raises(InvalidParameterError, match="configuration"):
            local.merge_snapshot(path)

    def test_merge_leaves_peer_untouched(self, tmp_path):
        local = build_store("poisson")
        local.ingest("traffic", "d", [1], [1.0])
        peer = build_store("poisson")
        peer.ingest("traffic", "d", [2], [2.0])
        before = peer.engine("traffic").state_dict()
        local.merge_store(peer)
        assert peer.engine("traffic").state_dict() == before
        local.ingest("traffic", "d", [3], [3.0])
        assert peer.engine("traffic").state_dict() == before


class TestRegisterCustomEngine:
    def test_custom_engine_is_usable_but_not_serializable(self, tmp_path):
        from repro.exceptions import SketchCodecError
        from repro.streaming.sketch import StreamingBottomK

        store = SketchStore()
        engine = StreamEngine(
            lambda instance: StreamingBottomK(
                k=3, instance=instance, seed_assigner=SeedAssigner(salt=1)
            ),
            n_shards=2,
        )
        store.register("custom", engine)
        store.ingest("custom", "d", [1, 2, 3, 4], [1.0, 2.0, 3.0, 4.0])
        assert len(store.sample("custom", "d")) == 3
        with pytest.raises(SketchCodecError):
            store.snapshot(tmp_path / "nope.bin")


class TestSnapshotMarked:
    def test_marks_report_exactly_the_written_state(self, tmp_path):
        store = SketchStore()
        store.create(
            "t", "poisson", threshold=0.5,
            seed_assigner=SeedAssigner(salt=7),
        )
        store.ingest("t", "mon", ["a", "b"], [1.0, 2.0])
        path, marks = store.snapshot_marked(tmp_path / "s.bin")
        assert marks == {
            "t": (store.version("t"), store.engine("t").change_tick)
        }
        assert SketchStore.restore(path).engine("t") == store.engine("t")
        # further ingest moves the live state past the recorded marks
        store.ingest("t", "mon", ["c"], [1.0])
        assert marks["t"] != (
            store.version("t"), store.engine("t").change_tick
        )


class TestCorruptSnapshot:
    """Restoring a damaged snapshot file must raise
    :class:`SketchCodecError` with file and offset context — never a
    bare ``struct.error`` / ``ValueError`` / NumPy exception."""

    @staticmethod
    def write_snapshot(tmp_path):
        store = build_store("poisson", threshold=0.05)
        for instance, keys, values in make_batches(
            n_keys=600, n_batches=3
        ):
            store.ingest("traffic", instance, keys, values)
        path = tmp_path / "store.bin"
        store.snapshot(path)
        return path

    def test_truncated_snapshot_names_the_file(self, tmp_path):
        path = self.write_snapshot(tmp_path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(SketchCodecError) as err:
            SketchStore.restore(path)
        message = str(err.value)
        assert str(path) in message
        assert "corrupt store snapshot" in message

    def test_bad_magic_names_the_file(self, tmp_path):
        path = self.write_snapshot(tmp_path)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SketchCodecError, match="corrupt store snapshot"):
            SketchStore.restore(path)

    def test_bit_flips_never_escape_as_stray_exceptions(self, tmp_path):
        """Flip one bit at a spread of offsets.  Two outcomes are
        acceptable — a clean restore (the flip landed in a value byte;
        the snapshot format carries no checksum) or a SketchCodecError
        with context — but never a stray decoder exception."""
        path = self.write_snapshot(tmp_path)
        pristine = path.read_bytes()
        step = max(1, len(pristine) // 64)
        for offset in range(0, len(pristine), step):
            data = bytearray(pristine)
            data[offset] ^= 1 << (offset % 8)
            path.write_bytes(bytes(data))
            try:
                SketchStore.restore(path)
            except SketchCodecError as exc:
                assert str(path) in str(exc), f"offset {offset}: {exc}"
        path.write_bytes(pristine)
        SketchStore.restore(path)  # the pristine bytes still round-trip
