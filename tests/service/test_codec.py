"""Property-based round-trip suite for the binary sketch codec.

The contract under test is *state-exactness*: for random streams over
both sketch families and all three rank families,
``from_bytes(to_bytes(s))`` must reproduce the sketch — snapshots, full
``state_dict`` (entry order included), and bit-identical behaviour on
subsequent updates — and serialization must commute with the merge
algebra: ``restore(merge(a, b)) == merge(restore(a), restore(b))``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError, SketchCodecError
from repro.sampling.ranks import (
    ExpRanks,
    PpsRanks,
    UniformRanks,
)
from repro.sampling.seeds import SeedAssigner
from repro.service.codec import (
    FORMAT_VERSION,
    MAGIC,
    from_bytes,
    store_from_bytes,
    store_to_bytes,
    to_bytes,
)
from repro.streaming.engine import StreamEngine
from repro.streaming.merge import merge_sketches
from repro.streaming.sketch import StreamingBottomK, StreamingPoisson

keys = st.one_of(
    st.integers(min_value=-(10**12), max_value=10**12),
    st.text(max_size=6),
    st.binary(max_size=4),
    st.tuples(st.integers(min_value=0, max_value=99), st.text(max_size=3)),
)
streams = st.lists(
    st.tuples(keys, st.floats(min_value=0.0, max_value=1000.0)),
    max_size=60,
)
weighted_families = st.sampled_from([ExpRanks(), PpsRanks()])
all_families = st.sampled_from([ExpRanks(), PpsRanks(), UniformRanks()])
salts = st.integers(min_value=0, max_value=10_000)


def feed(sketch, stream) -> None:
    for key, value in stream:
        sketch.update(key, value)


def assert_roundtrip_exact(sketch, extra_stream) -> None:
    """Restored sketch: equal state, equal snapshot, bit-identical
    continuation."""
    restored = from_bytes(to_bytes(sketch))
    assert restored == sketch
    assert restored.state_dict() == sketch.state_dict()
    assert restored.to_sample() == sketch.to_sample()
    feed(sketch, extra_stream)
    feed(restored, extra_stream)
    assert restored.state_dict() == sketch.state_dict()
    assert restored.to_sample() == sketch.to_sample()
    assert list(restored._values) == list(sketch._values)


class TestSketchRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        stream=streams,
        extra=streams,
        k=st.integers(min_value=1, max_value=12),
        salt=salts,
        family=all_families,
        coordinated=st.booleans(),
    )
    def test_bottom_k_roundtrip_is_state_exact(
        self, stream, extra, k, salt, family, coordinated
    ):
        sketch = StreamingBottomK(
            k=k,
            instance="day0",
            rank_family=family,
            seed_assigner=SeedAssigner(salt=salt, coordinated=coordinated),
        )
        feed(sketch, stream)
        assert_roundtrip_exact(sketch, extra)

    @settings(max_examples=60, deadline=None)
    @given(
        stream=streams,
        extra=streams,
        threshold=st.floats(min_value=0.05, max_value=1.0),
        salt=salts,
        family=all_families,
    )
    def test_poisson_roundtrip_is_state_exact(
        self, stream, extra, threshold, salt, family
    ):
        sketch = StreamingPoisson(
            threshold=threshold,
            instance=("poisson", 1),
            rank_family=family,
            seed_assigner=SeedAssigner(salt=salt),
        )
        feed(sketch, stream)
        assert_roundtrip_exact(sketch, extra)

    @settings(max_examples=40, deadline=None)
    @given(
        stream_a=streams,
        stream_b=streams,
        k=st.integers(min_value=1, max_value=10),
        salt=salts,
        family=weighted_families,
    )
    def test_merge_commutes_with_restore_bottom_k(
        self, stream_a, stream_b, k, salt, family
    ):
        assigner = SeedAssigner(salt=salt)

        def build(stream):
            sketch = StreamingBottomK(
                k=k, instance="d", rank_family=family, seed_assigner=assigner
            )
            feed(sketch, stream)
            return sketch

        part_a, part_b = build(stream_a), build(stream_b)
        merged_then_restored = from_bytes(
            to_bytes(merge_sketches([part_a, part_b]))
        )
        restored_then_merged = merge_sketches(
            [from_bytes(to_bytes(part_a)), from_bytes(to_bytes(part_b))]
        )
        assert merged_then_restored == restored_then_merged

    @settings(max_examples=40, deadline=None)
    @given(
        stream_a=streams,
        stream_b=streams,
        threshold=st.floats(min_value=0.05, max_value=1.0),
        salt=salts,
        family=all_families,
    )
    def test_merge_commutes_with_restore_poisson(
        self, stream_a, stream_b, threshold, salt, family
    ):
        assigner = SeedAssigner(salt=salt)

        def build(stream):
            sketch = StreamingPoisson(
                threshold=threshold,
                instance="d",
                rank_family=family,
                seed_assigner=assigner,
            )
            feed(sketch, stream)
            return sketch

        part_a, part_b = build(stream_a), build(stream_b)
        merged_then_restored = from_bytes(
            to_bytes(merge_sketches([part_a, part_b]))
        )
        restored_then_merged = merge_sketches(
            [from_bytes(to_bytes(part_a)), from_bytes(to_bytes(part_b))]
        )
        assert merged_then_restored == restored_then_merged


class TestEngineRoundTrip:
    def make_columns(self, n=600, seed=0):
        generator = np.random.default_rng(seed)
        return (
            generator.choice(10**7, size=n, replace=False),
            generator.random(n) * 10.0 + 0.01,
        )

    def test_bottom_k_engine_roundtrip_and_continuation(self):
        keys_column, values = self.make_columns()
        engine = StreamEngine.bottom_k(
            k=20, seed_assigner=SeedAssigner(salt=3), n_shards=4
        )
        engine.ingest("mon", keys_column[:400], values[:400])
        engine.ingest("tue", keys_column[200:], values[200:])
        restored = from_bytes(to_bytes(engine))
        assert restored == engine
        assert restored.sample("mon") == engine.sample("mon")
        engine.ingest("mon", keys_column[400:], values[400:])
        restored.ingest("mon", keys_column[400:], values[400:])
        assert restored == engine
        assert restored.state_dict() == engine.state_dict()

    def test_poisson_engine_roundtrip(self):
        keys_column, values = self.make_columns(seed=1)
        engine = StreamEngine.poisson(
            0.4,
            seed_assigner=SeedAssigner(salt=9, coordinated=True),
            n_shards=3,
        )
        engine.ingest("a", keys_column, values)
        restored = from_bytes(to_bytes(engine))
        assert restored == engine
        assert dict(restored.sample("a").entries) == dict(
            engine.sample("a").entries
        )

    def test_empty_engine_roundtrip(self):
        engine = StreamEngine.poisson(0.5, n_shards=2)
        assert from_bytes(to_bytes(engine)) == engine

    def test_from_state_rejects_shard_config_mismatch(self):
        engine = StreamEngine.bottom_k(
            k=4, seed_assigner=SeedAssigner(salt=1), n_shards=2
        )
        engine.ingest("d", [1, 2, 3], [1.0, 2.0, 3.0])
        state = engine.state_dict()
        doctored = dict(state, k=9)  # header disagrees with shard bodies
        with pytest.raises(InvalidParameterError, match="configuration"):
            StreamEngine.from_state(doctored)

        poisson = StreamEngine.poisson(
            0.5, seed_assigner=SeedAssigner(salt=1), n_shards=2
        )
        poisson.ingest("d", [1, 2, 3], [1.0, 2.0, 3.0])
        mixed = dict(poisson.state_dict())
        mixed["instances"] = state["instances"]  # bottom-k shards inside
        with pytest.raises(InvalidParameterError, match="shard"):
            StreamEngine.from_state(mixed)

    def test_custom_factory_engine_is_rejected(self):
        engine = StreamEngine(
            lambda instance: StreamingBottomK(k=3, instance=instance)
        )
        with pytest.raises(SketchCodecError):
            to_bytes(engine)


class TestStoreBlob:
    def test_store_blob_roundtrip(self):
        engine = StreamEngine.bottom_k(k=5, seed_assigner=SeedAssigner(salt=1))
        engine.ingest("d", [1, 2, 3], [1.0, 2.0, 3.0])
        items = store_from_bytes(
            store_to_bytes([("traffic", 11, to_bytes(engine))])
        )
        assert items == [("traffic", 11, engine)]

    def test_sketch_blob_is_not_a_store(self):
        sketch = StreamingBottomK(k=2, seed_assigner=SeedAssigner())
        with pytest.raises(SketchCodecError, match="store"):
            store_from_bytes(to_bytes(sketch))


class TestCodecErrors:
    def make_blob(self):
        sketch = StreamingBottomK(k=4, seed_assigner=SeedAssigner(salt=2))
        sketch.update_many(list(range(50)), np.arange(50, dtype=float) + 1)
        return to_bytes(sketch)

    def test_bad_magic(self):
        blob = self.make_blob()
        with pytest.raises(SketchCodecError, match="magic"):
            from_bytes(b"XXXX" + blob[4:])

    def test_future_version(self):
        blob = bytearray(self.make_blob())
        blob[4:6] = (FORMAT_VERSION + 1).to_bytes(2, "little")
        with pytest.raises(SketchCodecError, match="version"):
            from_bytes(bytes(blob))

    def test_truncated_buffer(self):
        blob = self.make_blob()
        for cut in (3, len(blob) // 2, len(blob) - 1):
            with pytest.raises(SketchCodecError):
                from_bytes(blob[:cut])

    def test_trailing_garbage(self):
        with pytest.raises(SketchCodecError, match="trailing"):
            from_bytes(self.make_blob() + b"\x00")

    def test_store_blob_rejected_by_from_bytes(self):
        blob = store_to_bytes([])
        with pytest.raises(SketchCodecError, match="SketchStore.restore"):
            from_bytes(blob)

    def test_custom_rank_family_is_rejected(self):
        class HalfRanks(UniformRanks):
            pass

        sketch = StreamingPoisson(0.5, rank_family=HalfRanks())
        with pytest.raises(SketchCodecError, match="rank famil"):
            to_bytes(sketch)

    def test_unsupported_key_type_is_rejected(self):
        sketch = StreamingBottomK(k=2, seed_assigner=SeedAssigner())
        sketch.update(frozenset({1}), 1.0)
        with pytest.raises(SketchCodecError, match="frozenset"):
            to_bytes(sketch)

    def test_non_sketch_object_is_rejected(self):
        with pytest.raises(SketchCodecError, match="cannot encode"):
            to_bytes(object())

    def test_magic_constant_is_stable(self):
        # the on-disk format is a compatibility surface; catching an
        # accidental change here beats debugging unreadable snapshots
        assert MAGIC == b"RSVC"
        assert FORMAT_VERSION == 1
        assert self.make_blob()[:4] == MAGIC
