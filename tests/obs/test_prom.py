"""Tests of the Prometheus text exposition renderers."""

from __future__ import annotations

import re

from repro.obs import LatencyHistogram, prom


def parse_samples(text: str) -> dict[str, float]:
    """``{sample-with-labels: value}`` for every non-comment line."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        samples[key] = float(value.replace("+Inf", "inf"))
    return samples


class TestSampleLine:
    def test_no_labels(self):
        assert prom.sample_line("up", None, 1) == "up 1"

    def test_labels_sorted(self):
        line = prom.sample_line("m", {"b": "2", "a": "1"}, 3)
        assert line == 'm{a="1",b="2"} 3'

    def test_label_escaping(self):
        line = prom.sample_line("m", {"route": 'a"b\\c\nd'}, 1)
        assert line == 'm{route="a\\"b\\\\c\\nd"} 1'

    def test_value_formats(self):
        assert prom.sample_line("m", None, 2.0) == "m 2"
        assert prom.sample_line("m", None, 2.5) == "m 2.5"
        assert prom.sample_line("m", None, float("inf")) == "m +Inf"


class TestFamilies:
    def test_counter_has_help_and_type(self):
        block = prom.counter(
            "repro_requests_total",
            "Requests by route.",
            [({"route": "GET /query"}, 3)],
        )
        lines = block.splitlines()
        assert lines[0] == "# HELP repro_requests_total Requests by route."
        assert lines[1] == "# TYPE repro_requests_total counter"
        assert lines[2] == 'repro_requests_total{route="GET /query"} 3'

    def test_gauge(self):
        block = prom.gauge("repro_up", "Up.", [(None, 1)])
        assert "# TYPE repro_up gauge" in block
        assert block.endswith("repro_up 1")

    def test_histogram_buckets_cumulative_and_complete(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.002, 0.004, 50.0, 1e5):
            hist.observe(value)
        block = prom.histogram(
            "repro_request_duration_seconds",
            "Request latency.",
            {"GET /query": hist},
        )
        samples = parse_samples(block)
        buckets = [
            (key, value)
            for key, value in samples.items()
            if key.startswith("repro_request_duration_seconds_bucket")
        ]
        # cumulative and monotone, ending at +Inf == count
        values = [value for _, value in buckets]
        assert values == sorted(values)
        assert 'le="+Inf"' in buckets[-1][0]
        assert values[-1] == 5
        count_key = 'repro_request_duration_seconds_count{route="GET /query"}'
        sum_key = 'repro_request_duration_seconds_sum{route="GET /query"}'
        assert samples[count_key] == 5
        assert samples[sum_key] > 50.0
        # every bucket carries both the series label and le
        for key, _ in buckets:
            assert 'route="GET /query"' in key
            assert re.search(r'le="[^"]+"', key)

    def test_render_joins_with_trailing_newline(self):
        body = prom.render(
            [prom.gauge("a", "x", [(None, 1)]), "", prom.gauge("b", "y", [(None, 2)])]
        )
        assert body.endswith("\n")
        assert "# TYPE a gauge" in body
        assert "# TYPE b gauge" in body
        assert "\n\n\n" not in body

    def test_render_empty(self):
        assert prom.render([]) == ""

    def test_help_text_escaping_keeps_exposition_line_framed(self):
        # Text format 0.0.4: HELP escapes backslash and newline (only).
        hostile = 'line one\nline two \\ "quoted" trailer'
        block = prom.counter("repro_evil_total", hostile, [(None, 1)])
        lines = block.splitlines()
        assert lines[0] == (
            "# HELP repro_evil_total "
            'line one\\nline two \\\\ "quoted" trailer'
        )
        assert lines[1] == "# TYPE repro_evil_total counter"
        assert lines[2] == "repro_evil_total 1"
        # every physical line still starts with a comment marker or the
        # metric name -- a raw newline in HELP would break this framing
        for line in lines:
            assert line.startswith("#") or line.startswith("repro_evil_total")
        assert parse_samples(block) == {"repro_evil_total": 1.0}

    def test_gauge_help_escaping_matches_counter(self):
        block = prom.gauge("g", "a\\b\nc", [(None, 2)])
        assert block.splitlines()[0] == "# HELP g a\\\\b\\nc"
