"""Tests of request-ID propagation, nested spans, and the trace ring."""

from __future__ import annotations

import contextvars
import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import InvalidParameterError
from repro.obs import (
    TraceRecorder,
    current_request_id,
    current_span_name,
    new_request_id,
    request_context,
    span,
)


class TestRequestContext:
    def test_new_request_ids_are_distinct_hex(self):
        first, second = new_request_id(), new_request_id()
        assert first != second
        assert len(first) == 16
        int(first, 16)  # parses as hex

    def test_binds_and_restores(self):
        assert current_request_id() is None
        with request_context("abc123") as bound:
            assert bound == "abc123"
            assert current_request_id() == "abc123"
        assert current_request_id() is None

    def test_generates_when_missing(self):
        with request_context() as bound:
            assert current_request_id() == bound
            assert len(bound) == 16

    def test_nested_contexts_unwind(self):
        with request_context("outer"):
            with request_context("inner"):
                assert current_request_id() == "inner"
            assert current_request_id() == "outer"

    def test_copy_context_carries_id_to_executor(self):
        # the server propagates request IDs onto worker threads with
        # contextvars.copy_context(); assert that mechanism works
        with request_context("threaded"):
            context = contextvars.copy_context()
            with ThreadPoolExecutor(max_workers=1) as pool:
                seen = pool.submit(context.run, current_request_id).result()
        assert seen == "threaded"


class TestSpan:
    def test_records_name_duration_and_trace_id(self):
        recorder = TraceRecorder(capacity=16)
        with request_context("req-1"):
            with span("store.ingest", recorder=recorder, rows=10):
                pass
        (record,) = recorder.recent()
        assert record.name == "store.ingest"
        assert record.trace_id == "req-1"
        assert record.parent is None
        assert record.duration_seconds >= 0.0
        assert record.attrs == {"rows": 10}

    def test_nesting_sets_parent(self):
        recorder = TraceRecorder(capacity=16)
        with span("http.request", recorder=recorder):
            assert current_span_name() == "http.request"
            with span("planner.query", recorder=recorder):
                assert current_span_name() == "planner.query"
        assert current_span_name() is None
        inner, outer = recorder.recent()
        assert inner.name == "planner.query"
        assert inner.parent == "http.request"
        assert outer.parent is None

    def test_mutable_attrs_annotated_mid_flight(self):
        recorder = TraceRecorder(capacity=16)
        with span("planner.query", recorder=recorder) as attrs:
            attrs["cache"] = "hit"
        (record,) = recorder.recent()
        assert record.attrs["cache"] == "hit"

    def test_error_spans_still_recorded(self):
        recorder = TraceRecorder(capacity=16)
        with pytest.raises(ValueError):
            with span("store.ingest", recorder=recorder):
                raise ValueError("boom")
        (record,) = recorder.recent()
        assert record.attrs["error"] == "ValueError"
        # the span name unwound despite the exception
        assert current_span_name() is None


class TestTraceRecorder:
    def test_ring_is_bounded(self):
        recorder = TraceRecorder(capacity=4)
        for index in range(10):
            with span(f"s{index}", recorder=recorder):
                pass
        assert len(recorder) == 4
        assert recorder.n_recorded == 10
        assert [r.name for r in recorder.recent()] == ["s6", "s7", "s8", "s9"]

    def test_recent_filters_by_name_and_bounds(self):
        recorder = TraceRecorder(capacity=16)
        for name in ("a", "b", "a", "b", "a"):
            with span(name, recorder=recorder):
                pass
        assert len(recorder.recent(name="a")) == 3
        assert len(recorder.recent(n=2, name="a")) == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(InvalidParameterError):
            TraceRecorder(capacity=0)
        with pytest.raises(InvalidParameterError):
            TraceRecorder().configure(capacity=-1)

    def test_configure_rebounds_keeping_newest(self):
        recorder = TraceRecorder(capacity=8)
        for index in range(8):
            with span(f"s{index}", recorder=recorder):
                pass
        recorder.configure(capacity=2)
        assert [r.name for r in recorder.recent()] == ["s6", "s7"]

    def test_export_jsonl(self, tmp_path):
        recorder = TraceRecorder(capacity=16)
        with request_context("exported"):
            with span("a", recorder=recorder, rows=3):
                pass
        path = tmp_path / "spans.jsonl"
        assert recorder.export_jsonl(path) == 1
        (line,) = path.read_text().splitlines()
        payload = json.loads(line)
        assert payload["name"] == "a"
        assert payload["trace_id"] == "exported"
        assert payload["attrs"] == {"rows": 3}

    def test_live_jsonl_export(self, tmp_path):
        path = tmp_path / "live.jsonl"
        recorder = TraceRecorder(capacity=16, jsonl_path=path)
        try:
            with span("a", recorder=recorder):
                pass
            with span("b", recorder=recorder):
                pass
            lines = path.read_text().splitlines()
            assert [json.loads(line)["name"] for line in lines] == ["a", "b"]
            # jsonl_path="" stops the export
            recorder.configure(jsonl_path="")
            with span("c", recorder=recorder):
                pass
            assert len(path.read_text().splitlines()) == 2
        finally:
            recorder.close()

    def test_clear(self):
        recorder = TraceRecorder(capacity=4)
        with span("a", recorder=recorder):
            pass
        recorder.clear()
        assert len(recorder) == 0

    def test_export_jsonl_is_safe_against_concurrent_recording(self, tmp_path):
        # Regression: export used to iterate the ring outside the recorder
        # lock, so a concurrent record() could rotate the deque mid-export.
        recorder = TraceRecorder(capacity=64)
        for index in range(64):
            with span(f"seed{index}", recorder=recorder, idx=index):
                pass

        stop = False

        def churn(worker: int) -> None:
            index = 0
            while not stop:
                with span(f"w{worker}", recorder=recorder, idx=index):
                    pass
                index += 1

        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = [pool.submit(churn, worker) for worker in range(3)]
            try:
                for round_ in range(20):
                    path = tmp_path / f"spans{round_}.jsonl"
                    exported = recorder.export_jsonl(path)
                    lines = path.read_text().splitlines()
                    assert len(lines) == exported
                    for line in lines:
                        payload = json.loads(line)  # every line is valid JSON
                        assert "name" in payload
            finally:
                stop = True
            for future in futures:
                future.result()
