"""Tests of the mergeable log-bucket latency histogram.

The merge algebra (associativity, commutativity, identity) is
property-tested with hypothesis — mirroring how the repository
property-tests the coordinated-sketch merge — and the quantile
estimates are checked to land within one bucket of numpy's exact
percentiles.  A thread-pool hammer asserts observation conservation
under concurrent recording.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.obs import LatencyHistogram

durations = st.floats(
    min_value=0.0, max_value=120.0, allow_nan=False, allow_infinity=False
)
duration_lists = st.lists(durations, max_size=60)


def make_hist(values) -> LatencyHistogram:
    hist = LatencyHistogram()
    for value in values:
        hist.observe(value)
    return hist


class TestLayout:
    def test_bounds_are_geometric_and_cover_range(self):
        hist = LatencyHistogram()
        bounds = hist.bucket_bounds
        assert bounds[0] == pytest.approx(1e-4)
        assert bounds[-1] >= 60.0
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(math.sqrt(2.0)) for r in ratios)
        # one count slot per finite bound plus the overflow bucket
        assert len(hist.bucket_counts()) == len(bounds) + 1

    def test_invalid_layouts_rejected(self):
        with pytest.raises(InvalidParameterError):
            LatencyHistogram(lowest=0.0)
        with pytest.raises(InvalidParameterError):
            LatencyHistogram(lowest=2.0, highest=1.0)
        with pytest.raises(InvalidParameterError):
            LatencyHistogram(growth=1.0)


class TestObserve:
    def test_counts_and_sum(self):
        hist = make_hist([0.001, 0.002, 0.004])
        assert hist.count == 3
        assert hist.sum_seconds == pytest.approx(0.007)
        assert sum(hist.bucket_counts()) == 3

    def test_negative_clamps_to_zero(self):
        hist = make_hist([-1.0])
        assert hist.count == 1
        assert hist.sum_seconds == 0.0
        assert hist.bucket_counts()[0] == 1

    def test_overflow_bucket(self):
        hist = make_hist([1e6])
        assert hist.bucket_counts()[-1] == 1
        assert hist.bucket_index(1e6) == len(hist.bucket_bounds)

    def test_cumulative_ends_at_total(self):
        hist = make_hist([0.001, 0.01, 99.0])
        pairs = hist.cumulative()
        assert pairs[-1][0] == math.inf
        assert pairs[-1][1] == hist.count == 3
        cums = [c for _, c in pairs]
        assert cums == sorted(cums)


class TestQuantiles:
    def test_empty_histogram_is_nan(self):
        hist = LatencyHistogram()
        assert math.isnan(hist.quantile(0.5))
        assert hist.to_dict()["p99_seconds"] == 0.0

    def test_out_of_range_q_rejected(self):
        with pytest.raises(InvalidParameterError):
            LatencyHistogram().quantile(1.5)

    def test_single_observation(self):
        hist = make_hist([0.25])
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) == pytest.approx(0.25)

    @settings(max_examples=80, deadline=None)
    @given(values=st.lists(durations, min_size=1, max_size=80))
    def test_within_one_bucket_of_exact_percentile(self, values):
        hist = make_hist(values)
        for q in (0.5, 0.95, 0.99):
            # the histogram is rank-based — it answers with the bucket
            # of the smallest observation whose CDF reaches q — which is
            # numpy's inverted_cdf order statistic, not linear
            # interpolation between observations
            exact = float(
                np.percentile(
                    np.asarray(values), q * 100, method="inverted_cdf"
                )
            )
            estimate = hist.quantile(q)
            assert abs(hist.bucket_index(estimate) - hist.bucket_index(exact)) <= 1

    def test_empty_histogram_every_q_is_nan(self):
        hist = LatencyHistogram()
        for q in (0.0, 0.5, 1.0):
            assert math.isnan(hist.quantile(q))

    def test_extreme_quantiles_pin_to_observed_extremes(self):
        values = [0.003, 0.04, 0.5, 7.0]
        hist = make_hist(values)
        for q, expected in ((0.0, min(values)), (1.0, max(values))):
            # inverted_cdf's order statistic at the extremes IS the
            # observed min/max, which the histogram tracks exactly
            exact = float(
                np.percentile(np.asarray(values), q * 100, method="inverted_cdf")
            )
            assert exact == expected
            assert hist.quantile(q) == pytest.approx(expected)

    def test_overflow_observations_clamp_to_observed_max(self):
        # 300s lands in the +Inf bucket; the quantile must answer with
        # the observed maximum, never the infinite bucket bound
        hist = make_hist([0.01, 300.0])
        assert hist.quantile(1.0) == pytest.approx(300.0)
        assert math.isfinite(hist.quantile(0.99))
        all_overflow = make_hist([100.0, 200.0, 300.0])
        for q in (0.0, 0.5, 0.99, 1.0):
            assert math.isfinite(all_overflow.quantile(q))
        assert all_overflow.quantile(0.0) == pytest.approx(100.0)
        assert all_overflow.quantile(1.0) == pytest.approx(300.0)

    def test_quantiles_named_and_monotone(self):
        hist = make_hist([i / 1000.0 for i in range(1, 200)])
        named = hist.quantiles()
        assert set(named) == {"p50", "p95", "p99"}
        assert named["p50"] <= named["p95"] <= named["p99"]


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(a=duration_lists, b=duration_lists)
    def test_commutative(self, a, b):
        left = make_hist(a).merge_from(make_hist(b))
        right = make_hist(b).merge_from(make_hist(a))
        assert left == right
        assert left.sum_seconds == pytest.approx(right.sum_seconds, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(a=duration_lists, b=duration_lists, c=duration_lists)
    def test_associative(self, a, b, c):
        ha, hb, hc = make_hist(a), make_hist(b), make_hist(c)
        left = ha.copy().merge_from(hb.copy().merge_from(hc.copy()))
        right = ha.copy().merge_from(hb.copy()).merge_from(hc.copy())
        assert left == right
        assert left.sum_seconds == pytest.approx(right.sum_seconds, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(a=duration_lists)
    def test_empty_is_identity(self, a):
        hist = make_hist(a)
        merged = hist.copy().merge_from(LatencyHistogram())
        assert merged == hist
        assert merged.sum_seconds == pytest.approx(hist.sum_seconds, abs=1e-9)

    def test_merge_matches_pooled_observations(self):
        a = [0.001, 0.5, 3.0]
        b = [0.0002, 0.02, 70.0]
        merged = make_hist(a).merge_from(make_hist(b))
        pooled = make_hist(a + b)
        assert merged == pooled
        assert merged.quantile(0.5) == pytest.approx(pooled.quantile(0.5))

    def test_layout_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            LatencyHistogram().merge_from(LatencyHistogram(lowest=1e-3))
        with pytest.raises(InvalidParameterError):
            LatencyHistogram().merge_from("not a histogram")

    def test_copy_is_independent(self):
        hist = make_hist([0.01])
        clone = hist.copy()
        clone.observe(0.02)
        assert hist.count == 1
        assert clone.count == 2


class TestConcurrency:
    def test_concurrent_observe_conserves_counts(self):
        hist = LatencyHistogram()
        per_thread, n_threads = 500, 8
        values = [((i % 50) + 1) / 1000.0 for i in range(per_thread)]

        def hammer():
            for value in values:
                hist.observe(value)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            for future in [pool.submit(hammer) for _ in range(n_threads)]:
                future.result()

        total = per_thread * n_threads
        assert hist.count == total
        assert sum(hist.bucket_counts()) == total
        assert hist.sum_seconds == pytest.approx(sum(values) * n_threads, rel=1e-9)

    def test_concurrent_merge_conserves_counts(self):
        target = LatencyHistogram()
        source = make_hist([0.001] * 100)

        def merge():
            target.merge_from(source)

        with ThreadPoolExecutor(max_workers=4) as pool:
            for future in [pool.submit(merge) for _ in range(4)]:
                future.result()

        assert target.count == 400
        assert sum(target.bucket_counts()) == 400
