"""Health rule engine: thresholds, hysteresis, probe failures."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.obs import HealthMonitor, HealthRule


def rule_with_value(values, **kwargs):
    """A rule whose probe pops successive values from ``values``."""
    queue = list(values)
    return HealthRule(
        kwargs.pop("name", "r"),
        lambda: queue.pop(0),
        **kwargs,
    )


class TestHealthRule:
    def test_thresholds_are_inclusive(self):
        rule = HealthRule("r", lambda: None, warn=1.0, fail=2.0)
        assert rule.raw_status(0.99) == "healthy"
        assert rule.raw_status(1.0) == "degraded"
        assert rule.raw_status(1.99) == "degraded"
        assert rule.raw_status(2.0) == "unhealthy"

    def test_none_means_no_data_means_healthy(self):
        rule = HealthRule("r", lambda: None, warn=0.0, fail=0.0)
        assert rule.raw_status(None) == "healthy"

    def test_informational_rules_never_degrade(self):
        rule = HealthRule("r", lambda: 1e9)
        assert rule.raw_status(1e9) == "healthy"

    def test_validation(self):
        with pytest.raises(InvalidParameterError, match="non-empty"):
            HealthRule("", lambda: None)
        with pytest.raises(InvalidParameterError, match="callable"):
            HealthRule("r", probe=None)  # type: ignore[arg-type]
        with pytest.raises(InvalidParameterError, match="hysteresis"):
            HealthRule("r", lambda: None, hysteresis=0)
        with pytest.raises(InvalidParameterError, match="fail"):
            HealthRule("r", lambda: None, warn=2.0, fail=1.0)


class TestHealthMonitor:
    def test_worst_rule_wins_and_reasons_sort_worst_first(self):
        monitor = HealthMonitor(
            (
                HealthRule("ok", lambda: 0.0, warn=1.0),
                HealthRule("warned", lambda: 5.0, warn=1.0, fail=10.0),
                HealthRule("failed", lambda: 50.0, warn=1.0, fail=10.0),
            )
        )
        report = monitor.evaluate()
        assert report.status == "unhealthy"
        assert report.severity == 2
        assert [reason["rule"] for reason in report.reasons] == [
            "failed",
            "warned",
        ]
        assert report.rules["ok"]["status"] == "healthy"
        payload = report.to_json()
        assert payload["status"] == "unhealthy"
        assert payload["rules"]["warned"]["value"] == 5.0

    def test_worsening_is_immediate(self):
        monitor = HealthMonitor(
            (rule_with_value([0.0, 9.0], warn=1.0, fail=5.0, hysteresis=3),)
        )
        assert monitor.evaluate().status == "healthy"
        assert monitor.evaluate().status == "unhealthy"

    def test_recovery_needs_hysteresis_consecutive_evaluations(self):
        monitor = HealthMonitor(
            (
                rule_with_value(
                    [9.0, 0.0, 0.0, 0.0], warn=1.0, fail=5.0, hysteresis=2
                ),
            )
        )
        assert monitor.evaluate().status == "unhealthy"
        # first better evaluation: still reported unhealthy
        assert monitor.evaluate().status == "unhealthy"
        # second consecutive better evaluation: recovered
        assert monitor.evaluate().status == "healthy"
        assert monitor.evaluate().status == "healthy"

    def test_relapse_resets_the_recovery_streak(self):
        monitor = HealthMonitor(
            (
                rule_with_value(
                    [9.0, 0.0, 9.0, 0.0, 0.0],
                    warn=1.0,
                    fail=5.0,
                    hysteresis=2,
                ),
            )
        )
        assert monitor.evaluate().status == "unhealthy"
        assert monitor.evaluate().status == "unhealthy"  # streak 1
        assert monitor.evaluate().status == "unhealthy"  # relapse, streak 0
        assert monitor.evaluate().status == "unhealthy"  # streak 1
        assert monitor.evaluate().status == "healthy"  # streak 2 -> recover

    def test_partial_recovery_respects_hysteresis_too(self):
        monitor = HealthMonitor(
            (
                rule_with_value(
                    [9.0, 2.0, 2.0], warn=1.0, fail=5.0, hysteresis=2
                ),
            )
        )
        assert monitor.evaluate().status == "unhealthy"
        assert monitor.evaluate().status == "unhealthy"
        # recovers to degraded (the probe still exceeds warn)
        assert monitor.evaluate().status == "degraded"

    def test_raising_probe_reports_unhealthy_with_error(self):
        def probe():
            raise RuntimeError("boom")

        monitor = HealthMonitor((HealthRule("broken", probe, warn=1.0),))
        report = monitor.evaluate()
        assert report.status == "unhealthy"
        detail = report.rules["broken"]
        assert detail["error"] == "RuntimeError: boom"
        assert detail["value"] is None

    def test_no_data_is_healthy(self):
        monitor = HealthMonitor(
            (HealthRule("idle", lambda: None, warn=0.0, fail=0.0),)
        )
        assert monitor.evaluate().status == "healthy"

    def test_duplicate_rule_names_rejected(self):
        monitor = HealthMonitor((HealthRule("r", lambda: None),))
        with pytest.raises(InvalidParameterError, match="duplicate"):
            monitor.add_rule(HealthRule("r", lambda: None))
        assert monitor.rule_names() == ["r"]

    def test_description_rides_the_detail(self):
        monitor = HealthMonitor(
            (HealthRule("r", lambda: 1.0, description="what it means"),)
        )
        report = monitor.evaluate()
        assert report.rules["r"]["description"] == "what it means"
