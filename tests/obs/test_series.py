"""Metrics time series: ring bounds, rate derivation, merge algebra."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import InvalidParameterError
from repro.obs import MetricPoint, MetricSeries, SeriesCollector


class TestMetricSeries:
    def test_records_and_reads_in_order(self):
        series = MetricSeries("m", "gauge")
        for i in range(5):
            series.record(float(i), monotonic=float(i), wall=100.0 + i)
        points = series.points()
        assert [point.value for point in points] == [0, 1, 2, 3, 4]
        assert [point.wall for point in points] == [100, 101, 102, 103, 104]
        assert series.last() == MetricPoint(4.0, 104.0, 4.0)
        assert len(series) == 5

    def test_capacity_bounds_the_ring(self):
        series = MetricSeries("m", "gauge", capacity=3)
        for i in range(10):
            series.record(float(i), monotonic=float(i))
        assert [point.value for point in series.points()] == [7, 8, 9]
        assert series.capacity == 3

    def test_window_filters_by_monotonic_time(self):
        series = MetricSeries("m", "gauge")
        for i in range(10):
            series.record(float(i), monotonic=float(i))
        recent = series.points(window=3.0, now=9.0)
        assert [point.value for point in recent] == [6, 7, 8, 9]
        assert series.points(window=0.0, now=9.0) == [
            MetricPoint(9.0, recent[-1].wall, 9.0)
        ]
        with pytest.raises(InvalidParameterError):
            series.points(window=-1.0)

    def test_rejects_unknown_kind_and_bad_capacity(self):
        with pytest.raises(InvalidParameterError):
            MetricSeries("m", "summary")
        with pytest.raises(InvalidParameterError):
            MetricSeries("m", "gauge", capacity=0)

    def test_counter_rates_between_consecutive_points(self):
        series = MetricSeries("m", "counter")
        series.record(0.0, monotonic=0.0)
        series.record(10.0, monotonic=2.0)
        series.record(10.0, monotonic=4.0)
        series.record(16.0, monotonic=7.0)
        rates = series.rates()
        assert [point.value for point in rates] == [5.0, 0.0, 2.0]
        # rates carry the timestamp of the interval's *end* point
        assert [point.monotonic for point in rates] == [2.0, 4.0, 7.0]

    def test_counter_reset_clamps_to_zero_rate(self):
        series = MetricSeries("m", "counter")
        series.record(100.0, monotonic=0.0)
        series.record(3.0, monotonic=1.0)  # process restart
        series.record(6.0, monotonic=2.0)
        assert [point.value for point in series.rates()] == [0.0, 3.0]

    def test_zero_elapsed_intervals_are_skipped(self):
        series = MetricSeries("m", "counter")
        series.record(1.0, monotonic=5.0)
        series.record(2.0, monotonic=5.0)
        series.record(4.0, monotonic=6.0)
        assert [point.value for point in series.rates()] == [2.0]

    def test_rates_rejected_for_gauges(self):
        series = MetricSeries("m", "gauge")
        with pytest.raises(InvalidParameterError, match="counter"):
            series.rates()

    def test_merge_interleaves_by_timestamp_and_rebounds(self):
        ours = MetricSeries("m", "gauge", capacity=4)
        theirs = MetricSeries("m", "gauge", capacity=4)
        for i in (0, 2, 4):
            ours.record(float(i), monotonic=float(i))
        for i in (1, 3, 5):
            theirs.record(float(i), monotonic=float(i))
        ours.merge_from(theirs)
        # six points sorted by time, re-bounded to the newest four
        assert [point.value for point in ours.points()] == [2, 3, 4, 5]

    def test_merge_rejects_kind_mismatch(self):
        counter = MetricSeries("m", "counter")
        gauge = MetricSeries("m", "gauge")
        with pytest.raises(InvalidParameterError, match="cannot merge"):
            counter.merge_from(gauge)

    def test_to_dict_shape(self):
        series = MetricSeries("m", "counter")
        series.record(0.0, monotonic=0.0, wall=100.0)
        series.record(4.0, monotonic=2.0, wall=102.0)
        payload = series.to_dict()
        assert payload["metric"] == "m"
        assert payload["kind"] == "counter"
        assert payload["points"] == [[100.0, 0.0], [102.0, 4.0]]
        assert payload["rates"] == [[102.0, 2.0]]
        gauge = MetricSeries("g", "gauge")
        gauge.record(1.0)
        assert "rates" not in gauge.to_dict()


class TestSeriesCollector:
    def test_collect_shares_one_timestamp_across_metrics(self):
        collector = SeriesCollector(interval=0.5)
        collector.collect(
            {"a_total": ("counter", 1.0), "b": ("gauge", 2.0)},
            monotonic=10.0,
            wall=1000.0,
        )
        collector.collect(
            {"a_total": ("counter", 3.0), "b": ("gauge", 1.0)},
            monotonic=11.0,
            wall=1001.0,
        )
        assert collector.names() == ["a_total", "b"]
        assert collector.n_samples == 2
        a = collector.series("a_total")
        assert [point.monotonic for point in a.points()] == [10.0, 11.0]
        assert [point.value for point in a.rates()] == [2.0]

    def test_unknown_metric_lists_known_names(self):
        collector = SeriesCollector()
        collector.collect({"known": ("gauge", 1.0)})
        with pytest.raises(InvalidParameterError, match="known"):
            collector.series("missing")

    def test_kind_mismatch_rejected(self):
        collector = SeriesCollector()
        collector.collect({"m": ("gauge", 1.0)})
        with pytest.raises(InvalidParameterError, match="gauge"):
            collector.series("m", "counter")

    def test_history_payload_carries_interval(self):
        collector = SeriesCollector(interval=0.25)
        collector.collect({"m": ("counter", 5.0)}, monotonic=1.0, wall=50.0)
        payload = collector.history("m")
        assert payload["interval_seconds"] == 0.25
        assert payload["points"] == [[50.0, 5.0]]

    def test_merge_from_folds_every_series(self):
        ours = SeriesCollector()
        theirs = SeriesCollector()
        ours.collect({"m": ("gauge", 1.0)}, monotonic=1.0)
        theirs.collect(
            {"m": ("gauge", 2.0), "n": ("counter", 7.0)}, monotonic=2.0
        )
        ours.merge_from(theirs)
        assert ours.names() == ["m", "n"]
        assert [point.value for point in ours.series("m").points()] == [1, 2]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            SeriesCollector(interval=0.0)
        with pytest.raises(InvalidParameterError):
            SeriesCollector(capacity=0)

    def test_concurrent_collect_is_safe(self):
        collector = SeriesCollector(capacity=4096)

        def worker(offset: int) -> None:
            for i in range(200):
                collector.collect(
                    {"m": ("counter", float(offset + i))},
                    monotonic=float(offset + i),
                )

        threads = [
            threading.Thread(target=worker, args=(offset,))
            for offset in (0, 1000, 2000)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(collector.series("m")) == 600
        assert collector.n_samples == 600
