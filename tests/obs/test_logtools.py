"""Tests of the JSON log formatter and the slow-request log."""

from __future__ import annotations

import io
import json
import logging

from repro.obs import (
    JsonLogFormatter,
    SlowRequestLog,
    configure_json_logging,
    request_context,
)


def make_json_logger(name: str):
    stream = io.StringIO()
    logger = configure_json_logging(logger_name=name, stream=stream)
    return logger, stream


def parse_lines(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestJsonLogFormatter:
    def test_lines_parse_with_stable_keys(self):
        logger, stream = make_json_logger("repro.test.fmt")
        logger.info("hello %s", "world")
        (payload,) = parse_lines(stream)
        assert payload["message"] == "hello world"
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro.test.fmt"
        assert payload["ts"].endswith("Z")

    def test_request_id_correlation(self):
        logger, stream = make_json_logger("repro.test.rid")
        with request_context("rid-42"):
            logger.info("inside")
        logger.info("outside")
        inside, outside = parse_lines(stream)
        assert inside["request_id"] == "rid-42"
        assert "request_id" not in outside

    def test_extra_fields_become_top_level_keys(self):
        logger, stream = make_json_logger("repro.test.extra")
        logger.info("x", extra={"route": "GET /query", "rows": 5})
        (payload,) = parse_lines(stream)
        assert payload["route"] == "GET /query"
        assert payload["rows"] == 5

    def test_extra_request_id_overrides_context(self):
        logger, stream = make_json_logger("repro.test.override")
        with request_context("ambient"):
            logger.info("x", extra={"request_id": "explicit"})
        (payload,) = parse_lines(stream)
        assert payload["request_id"] == "explicit"

    def test_exception_rendered(self):
        logger, stream = make_json_logger("repro.test.exc")
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            logger.exception("failed")
        (payload,) = parse_lines(stream)
        assert "RuntimeError: boom" in payload["exception"]

    def test_unjsonable_extra_falls_back_to_repr(self):
        logger, stream = make_json_logger("repro.test.repr")
        logger.info("x", extra={"obj": object()})
        (payload,) = parse_lines(stream)
        assert payload["obj"].startswith("<object object")

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        logger = configure_json_logging(logger_name="repro.test.idem", stream=stream)
        configure_json_logging(logger_name="repro.test.idem", stream=stream)
        json_handlers = [
            h
            for h in logger.handlers
            if isinstance(h.formatter, JsonLogFormatter)
        ]
        assert len(json_handlers) == 1
        logger.info("once")
        assert len(parse_lines(stream)) == 1


class TestSlowRequestLog:
    def make(self, threshold_ms: float):
        logger, stream = make_json_logger("repro.test.slow")
        logger.setLevel(logging.WARNING)
        return SlowRequestLog(threshold_ms, logger=logger), stream

    def test_logs_beyond_threshold(self):
        slow, stream = self.make(100.0)
        assert slow.observe("GET /query", 0.250, status=200) is True
        (payload,) = parse_lines(stream)
        assert payload["route"] == "GET /query"
        assert payload["duration_ms"] == 250.0
        assert payload["status"] == 200
        assert slow.n_slow == 1

    def test_fast_requests_not_logged(self):
        slow, stream = self.make(100.0)
        assert slow.observe("GET /query", 0.010) is False
        assert stream.getvalue() == ""
        assert slow.n_seen == 1
        assert slow.n_slow == 0

    def test_zero_threshold_disables(self):
        slow, stream = self.make(0.0)
        assert not slow.enabled
        assert slow.observe("GET /query", 10.0) is False
        assert stream.getvalue() == ""

    def test_request_id_from_argument_and_context(self):
        slow, stream = self.make(1.0)
        slow.observe("a", 1.0, request_id="explicit")
        with request_context("ambient"):
            slow.observe("b", 1.0)
        first, second = parse_lines(stream)
        assert first["request_id"] == "explicit"
        assert second["request_id"] == "ambient"
