"""Internal argument validation helpers shared across the package."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import InvalidParameterError


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` is a probability in ``(0, 1]`` and return it.

    Inclusion probabilities of zero are rejected: an entry that can never be
    sampled makes every unbiased nonnegative estimator of an increasing
    function undefined.
    """
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise InvalidParameterError(
            f"{name} must be in (0, 1], got {value!r}"
        )
    return value


def check_probability_vector(
    values: Sequence[float], name: str = "probabilities"
) -> tuple[float, ...]:
    """Validate a vector of inclusion probabilities."""
    if len(values) == 0:
        raise InvalidParameterError(f"{name} must not be empty")
    return tuple(
        check_probability(v, name=f"{name}[{i}]") for i, v in enumerate(values)
    )


def check_positive(value: float, name: str = "value") -> float:
    """Validate that ``value`` is strictly positive and return it."""
    value = float(value)
    if not value > 0.0:
        raise InvalidParameterError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(value: float, name: str = "value") -> float:
    """Validate that ``value`` is nonnegative and return it."""
    value = float(value)
    if value < 0.0:
        raise InvalidParameterError(f"{name} must be >= 0, got {value!r}")
    return value


def check_positive_vector(
    values: Sequence[float], name: str = "values"
) -> tuple[float, ...]:
    """Validate a vector of strictly positive numbers."""
    if len(values) == 0:
        raise InvalidParameterError(f"{name} must not be empty")
    return tuple(
        check_positive(v, name=f"{name}[{i}]") for i, v in enumerate(values)
    )


def check_nonnegative_vector(
    values: Sequence[float], name: str = "values"
) -> tuple[float, ...]:
    """Validate a vector of nonnegative numbers."""
    return tuple(
        check_nonnegative(v, name=f"{name}[{i}]")
        for i, v in enumerate(values)
    )


def check_unit_interval(value: float, name: str = "value") -> float:
    """Validate that ``value`` lies in ``[0, 1]`` and return it."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise InvalidParameterError(
            f"{name} must be in [0, 1], got {value!r}"
        )
    return value


def check_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator, an integer seed, or ``None`` (fresh
    entropy).  Keeping the coercion in one place makes every stochastic
    entry point of the package accept the same spectrum of inputs.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
