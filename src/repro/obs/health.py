"""Declarative fleet-health rules with hysteresis.

A :class:`HealthRule` binds a *probe* — any zero-argument callable
returning the rule's current **badness** (a float where higher is
worse, or ``None`` for "no data yet") — to ``warn`` / ``fail``
thresholds.  A :class:`HealthMonitor` evaluates its rules into an
overall ``healthy`` / ``degraded`` / ``unhealthy`` verdict with
machine-readable reasons, suitable for ``GET /healthz?verbose=1``, the
``/statusz`` page, and a ``repro_health_status`` Prometheus family.

Semantics:

* probe ``>= fail`` is ``unhealthy``, probe ``>= warn`` is
  ``degraded``, below both (or ``None``) is ``healthy``;
* a rule with ``warn=None`` and ``fail=None`` is *informational*: its
  value is reported but can never degrade the verdict;
* **hysteresis** dampens flapping asymmetrically: a rule *worsens
  immediately* but only *recovers* after ``hysteresis`` consecutive
  evaluations at the better level — an operator paged for ``degraded``
  should not watch it flip back on the very next scrape;
* a probe that raises reports ``unhealthy`` with the exception as the
  reason — a broken probe is itself a health problem, not a pass.

The module is standard-library only and knows nothing about WAL lag or
latency targets; the serving layer supplies the probes.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.exceptions import InvalidParameterError

__all__ = ["HealthMonitor", "HealthReport", "HealthRule", "STATUSES"]

#: verdicts, best to worst; list index doubles as the numeric severity
#: exported as the ``repro_health_status`` gauge value
STATUSES = ("healthy", "degraded", "unhealthy")

_SEVERITY = {status: index for index, status in enumerate(STATUSES)}


@dataclass(frozen=True)
class HealthRule:
    """One declarative health rule.

    Parameters
    ----------
    name:
        Machine-readable rule identifier (the ``reason`` key).
    probe:
        Zero-argument callable returning the current badness (higher is
        worse) or ``None`` when there is no data to judge.
    warn / fail:
        Badness thresholds (inclusive) for ``degraded`` /
        ``unhealthy``; ``None`` disables that level.  Both ``None``
        makes the rule informational.
    hysteresis:
        Consecutive evaluations at a better level required before the
        reported status improves (worsening is always immediate).
    description:
        Human-readable one-liner for ``/statusz``.
    """

    name: str
    probe: Callable[[], float | None]
    warn: float | None = None
    fail: float | None = None
    hysteresis: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidParameterError("rule name must be non-empty")
        if not callable(self.probe):
            raise InvalidParameterError(
                f"rule {self.name!r}: probe must be callable"
            )
        if int(self.hysteresis) < 1:
            raise InvalidParameterError(
                f"rule {self.name!r}: hysteresis must be >= 1, got "
                f"{self.hysteresis}"
            )
        if (
            self.warn is not None
            and self.fail is not None
            and float(self.fail) < float(self.warn)
        ):
            raise InvalidParameterError(
                f"rule {self.name!r}: fail ({self.fail}) must be >= "
                f"warn ({self.warn})"
            )

    def raw_status(self, value: float | None) -> str:
        """The threshold verdict of one probe value, before hysteresis."""
        if value is None:
            return "healthy"
        if self.fail is not None and value >= float(self.fail):
            return "unhealthy"
        if self.warn is not None and value >= float(self.warn):
            return "degraded"
        return "healthy"


class _RuleState:
    """Mutable hysteresis state of one rule."""

    __slots__ = ("reported", "streak")

    def __init__(self) -> None:
        self.reported = "healthy"
        self.streak = 0

    def update(self, raw: str, hysteresis: int) -> str:
        if _SEVERITY[raw] >= _SEVERITY[self.reported]:
            # same or worse: report immediately, recovery starts over
            self.reported = raw
            self.streak = 0
            return self.reported
        self.streak += 1
        if self.streak >= hysteresis:
            self.reported = raw
            self.streak = 0
        return self.reported


@dataclass(frozen=True)
class HealthReport:
    """One evaluation of every rule."""

    status: str
    reasons: tuple[dict, ...]
    rules: dict[str, dict]

    @property
    def severity(self) -> int:
        """Numeric verdict (0 healthy / 1 degraded / 2 unhealthy)."""
        return _SEVERITY[self.status]

    def to_json(self) -> dict:
        return {
            "status": self.status,
            "severity": self.severity,
            "reasons": [dict(reason) for reason in self.reasons],
            "rules": {name: dict(rule) for name, rule in self.rules.items()},
        }


class HealthMonitor:
    """Evaluates a set of :class:`HealthRule` into one verdict."""

    def __init__(self, rules: Iterable[HealthRule] = ()) -> None:
        # hysteresis state mutates on evaluation, and evaluations come
        # from both the event loop (/healthz) and executor threads
        # (the Prometheus render), so the monitor serializes itself
        self._lock = threading.Lock()
        self._rules: dict[str, HealthRule] = {}
        self._states: dict[str, _RuleState] = {}
        for rule in rules:
            self.add_rule(rule)

    def add_rule(self, rule: HealthRule) -> None:
        if not isinstance(rule, HealthRule):
            raise InvalidParameterError(
                f"expected a HealthRule, got {type(rule).__name__}"
            )
        with self._lock:
            if rule.name in self._rules:
                raise InvalidParameterError(
                    f"duplicate health rule {rule.name!r}"
                )
            self._rules[rule.name] = rule
            self._states[rule.name] = _RuleState()

    def rule_names(self) -> list[str]:
        return list(self._rules)

    def evaluate(self) -> HealthReport:
        """Probe every rule and fold the results into one verdict.

        The overall status is the worst reported rule status; every
        rule at ``degraded`` or worse contributes a machine-readable
        reason, worst first.
        """
        rules: dict[str, dict] = {}
        reasons: list[dict] = []
        worst = "healthy"
        with self._lock:
            pending = list(self._rules.items())
        for name, rule in pending:
            try:
                value = rule.probe()
                if value is not None:
                    value = float(value)
                error = None
            except Exception as exc:  # noqa: BLE001 - probes are config
                value = None
                error = f"{type(exc).__name__}: {exc}"
            raw = "unhealthy" if error is not None else rule.raw_status(value)
            with self._lock:
                reported = self._states[name].update(
                    raw, int(rule.hysteresis)
                )
            detail: dict = {
                "status": reported,
                "value": value,
                "warn": rule.warn,
                "fail": rule.fail,
            }
            if rule.description:
                detail["description"] = rule.description
            if error is not None:
                detail["error"] = error
            rules[name] = detail
            if _SEVERITY[reported] > _SEVERITY["healthy"]:
                reasons.append({"rule": name, **detail})
            if _SEVERITY[reported] > _SEVERITY[worst]:
                worst = reported
        reasons.sort(key=lambda reason: -_SEVERITY[reason["status"]])
        return HealthReport(
            status=worst, reasons=tuple(reasons), rules=rules
        )
