"""Request IDs and nested spans for the serving stack.

A *trace* is one request's journey through the layers: the HTTP
front-end assigns (or adopts) a request ID, stores it in a
:class:`contextvars.ContextVar`, and every layer underneath — ingest
decoding, store ingest, the query planner — wraps its work in
:func:`span`, which records ``(trace_id, span name, parent, start,
duration, attrs)`` into a bounded in-memory ring buffer.  Because
context variables flow through ``await`` and (when propagated with
``contextvars.copy_context``) across executor threads, the spans of one
request correlate by trace ID no matter which thread ran them.

The ring buffer (:class:`TraceRecorder`) is deliberately small and
lossy: it answers "what did the last N requests spend their time on"
without unbounded memory.  For offline analysis, finished spans can
additionally be appended to a JSONL file (``jsonl_path``) or dumped
with :meth:`TraceRecorder.export_jsonl`.
"""

from __future__ import annotations

import json
import random
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator

from repro.exceptions import InvalidParameterError

__all__ = [
    "SpanRecord",
    "TraceRecorder",
    "current_request_id",
    "current_span_name",
    "default_recorder",
    "new_request_id",
    "request_context",
    "set_default_recorder",
    "span",
]

_REQUEST_ID: ContextVar[str | None] = ContextVar("repro_request_id", default=None)
_SPAN_NAME: ContextVar[str | None] = ContextVar("repro_span_name", default=None)


# seeded once from the OS entropy pool; correlation IDs need collision
# resistance, not unpredictability, and ``uuid.uuid4`` costs a urandom
# syscall per call — measurable on the serving hot path
_ID_RNG = random.Random(uuid.uuid4().int)
_ID_LOCK = threading.Lock()


def new_request_id() -> str:
    """A fresh 16-hex-char request ID."""
    with _ID_LOCK:
        return f"{_ID_RNG.getrandbits(64):016x}"


def current_request_id() -> str | None:
    """The request ID of the current context, if one is set."""
    return _REQUEST_ID.get()


def current_span_name() -> str | None:
    """The name of the innermost open span in this context, if any."""
    return _SPAN_NAME.get()


@contextmanager
def request_context(request_id: str | None = None) -> Iterator[str]:
    """Bind a request ID to the current context for the ``with`` body.

    Yields the bound ID (freshly generated when ``request_id`` is
    ``None``) and restores the previous binding on exit, so nested
    contexts — e.g. a server handling a request while replaying another
    — unwind correctly.
    """
    bound = request_id if request_id else new_request_id()
    token = _REQUEST_ID.set(bound)
    try:
        yield bound
    finally:
        _REQUEST_ID.reset(token)


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    trace_id: str | None
    name: str
    parent: str | None
    started_at: float
    duration_seconds: float
    attrs: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        payload = {
            "trace_id": self.trace_id,
            "name": self.name,
            "parent": self.parent,
            "started_at": self.started_at,
            "duration_seconds": self.duration_seconds,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        return payload


class TraceRecorder:
    """Bounded, thread-safe ring buffer of finished spans."""

    def __init__(
        self, capacity: int = 2048, jsonl_path: str | Path | None = None
    ) -> None:
        if capacity <= 0:
            raise InvalidParameterError(f"capacity must be positive, got {capacity}")
        self._lock = threading.Lock()
        self._buffer: deque[SpanRecord] = deque(maxlen=int(capacity))
        self._jsonl_path: Path | None = None
        self._jsonl_file: IO[str] | None = None
        self.n_recorded = 0
        if jsonl_path is not None:
            self.configure(jsonl_path=jsonl_path)

    @property
    def capacity(self) -> int:
        return self._buffer.maxlen or 0

    def configure(
        self,
        capacity: int | None = None,
        jsonl_path: str | Path | None = None,
    ) -> None:
        """Re-bound the ring and/or (re)target the live JSONL export.

        ``jsonl_path=None`` leaves the current export target untouched;
        pass ``jsonl_path=""`` to stop exporting.
        """
        with self._lock:
            if capacity is not None:
                if capacity <= 0:
                    raise InvalidParameterError(
                        f"capacity must be positive, got {capacity}"
                    )
                if capacity != self._buffer.maxlen:
                    self._buffer = deque(self._buffer, maxlen=int(capacity))
            if jsonl_path is not None:
                if self._jsonl_file is not None:
                    self._jsonl_file.close()
                    self._jsonl_file = None
                self._jsonl_path = Path(jsonl_path) if jsonl_path else None

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            self._buffer.append(record)
            self.n_recorded += 1
            if self._jsonl_path is not None:
                if self._jsonl_file is None:
                    self._jsonl_file = self._jsonl_path.open("a")
                json.dump(record.to_json(), self._jsonl_file, sort_keys=True)
                self._jsonl_file.write("\n")
                self._jsonl_file.flush()

    def recent(self, n: int | None = None, name: str | None = None) -> list[SpanRecord]:
        """The most recent spans, newest last, optionally filtered by
        span name; ``n`` bounds the result length."""
        with self._lock:
            records = list(self._buffer)
        if name is not None:
            records = [record for record in records if record.name == name]
        if n is not None:
            records = records[-int(n):]
        return records

    def export_jsonl(self, path: str | Path) -> int:
        """Write the buffered spans to ``path`` as JSON lines.

        The payloads are materialised under the recorder lock — one
        consistent snapshot of the ring *and* of every record's attrs
        dict (``to_json`` copies it), so a concurrent :meth:`record`
        or an in-flight span mutating its attrs cannot corrupt the
        export mid-write.  File I/O happens outside the lock.

        Returns the number of records written.
        """
        with self._lock:
            payloads = [record.to_json() for record in self._buffer]
        with Path(path).open("w") as handle:
            for payload in payloads:
                json.dump(payload, handle, sort_keys=True)
                handle.write("\n")
        return len(payloads)

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()

    def close(self) -> None:
        """Close the live JSONL export file, if one is open."""
        with self._lock:
            if self._jsonl_file is not None:
                self._jsonl_file.close()
                self._jsonl_file = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)


_default_recorder = TraceRecorder()


def default_recorder() -> TraceRecorder:
    """The process-wide recorder :func:`span` writes to by default."""
    return _default_recorder


def set_default_recorder(recorder: TraceRecorder) -> TraceRecorder:
    """Replace the process-wide recorder; returns the previous one."""
    global _default_recorder
    if not isinstance(recorder, TraceRecorder):
        raise InvalidParameterError(
            f"expected a TraceRecorder, got {type(recorder).__name__}"
        )
    previous, _default_recorder = _default_recorder, recorder
    return previous


@contextmanager
def span(name: str, recorder: TraceRecorder | None = None, **attrs) -> Iterator[dict]:
    """Record the wall time of the ``with`` body as a named span.

    The span nests under the innermost open span of the current context
    (its ``parent``) and carries the current request ID as its trace
    ID.  The yielded dict is the span's mutable ``attrs`` — handlers
    can annotate mid-flight (e.g. ``attrs["cache"] = "hit"``).  Spans
    are recorded even when the body raises, with ``attrs["error"]`` set
    to the exception type name.
    """
    target = recorder if recorder is not None else _default_recorder
    parent = _SPAN_NAME.get()
    token = _SPAN_NAME.set(name)
    started_wall = time.time()
    started = time.perf_counter()
    try:
        yield attrs
    except BaseException as error:
        attrs.setdefault("error", type(error).__name__)
        raise
    finally:
        _SPAN_NAME.reset(token)
        target.record(
            SpanRecord(
                trace_id=_REQUEST_ID.get(),
                name=name,
                parent=parent,
                started_at=started_wall,
                duration_seconds=time.perf_counter() - started,
                attrs=attrs,
            )
        )
