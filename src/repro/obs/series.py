"""Fixed-capacity in-process metrics time series.

A scrape (``GET /metrics``) is a snapshot; trends — is follower lag
growing, did the p99 jump after the last deploy — normally need an
external TSDB.  This module keeps a bounded window of history inside
the process instead: a :class:`SeriesCollector` samples a flat
``name -> (kind, value)`` mapping on a fixed interval into per-metric
:class:`MetricSeries` ring buffers, so ``GET /metrics/history`` can
answer trend questions with zero external infrastructure.

Design points:

* **Monotonic timestamps.**  Every point carries both a monotonic
  timestamp (windowing, rate derivation — immune to wall-clock steps)
  and a wall timestamp (display).
* **Counter -> rate derivation.**  Counters are stored as their raw
  cumulative values; :meth:`MetricSeries.rates` derives per-second
  rates between consecutive points on read, clamping negative deltas
  (a counter reset) to zero.
* **Merge-safe snapshots.**  :meth:`MetricSeries.merge_from`
  interleaves two rings by timestamp and re-bounds, so per-worker
  series fold into fleet-wide ones the same way the latency histograms
  and the sketches themselves merge.
* **Fixed capacity.**  Each series holds at most ``capacity`` points;
  retention is ``capacity * interval`` seconds and memory is bounded
  no matter how long the process lives.

The module is standard-library only and imports nothing from the
serving layers, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Mapping
from typing import NamedTuple

from repro.exceptions import InvalidParameterError

__all__ = ["MetricPoint", "MetricSeries", "SeriesCollector"]

SERIES_KINDS = ("counter", "gauge")


class MetricPoint(NamedTuple):
    """One sampled value of one metric."""

    monotonic: float
    wall: float
    value: float


class MetricSeries:
    """A bounded ring of :class:`MetricPoint` samples of one metric."""

    def __init__(self, name: str, kind: str, capacity: int = 512) -> None:
        if kind not in SERIES_KINDS:
            raise InvalidParameterError(
                f"series kind must be one of {SERIES_KINDS}, got {kind!r}"
            )
        if int(capacity) <= 0:
            raise InvalidParameterError(
                f"capacity must be positive, got {capacity}"
            )
        self.name = name
        self.kind = kind
        self._lock = threading.Lock()
        self._points: deque[MetricPoint] = deque(maxlen=int(capacity))

    @property
    def capacity(self) -> int:
        return self._points.maxlen or 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)

    def record(
        self,
        value: float,
        monotonic: float | None = None,
        wall: float | None = None,
    ) -> None:
        """Append one sample (timestamps default to "now")."""
        point = MetricPoint(
            monotonic=time.monotonic() if monotonic is None else float(monotonic),
            wall=time.time() if wall is None else float(wall),
            value=float(value),
        )
        with self._lock:
            self._points.append(point)

    def points(
        self, window: float | None = None, now: float | None = None
    ) -> list[MetricPoint]:
        """Samples, oldest first; ``window`` keeps only the last
        ``window`` seconds (by monotonic timestamp, against ``now``)."""
        with self._lock:
            points = list(self._points)
        if window is None:
            return points
        if window < 0:
            raise InvalidParameterError(f"window must be >= 0, got {window}")
        cutoff = (time.monotonic() if now is None else float(now)) - float(window)
        return [point for point in points if point.monotonic >= cutoff]

    def last(self) -> MetricPoint | None:
        with self._lock:
            return self._points[-1] if self._points else None

    def rates(
        self, window: float | None = None, now: float | None = None
    ) -> list[MetricPoint]:
        """Per-second rates between consecutive counter samples.

        Each returned point carries the rate over the interval *ending*
        at its timestamp; a negative delta (counter reset) clamps to
        zero rather than reporting a huge negative rate.  Gauge series
        are rejected — their derivative is not a rate.
        """
        if self.kind != "counter":
            raise InvalidParameterError(
                f"rates are derived for counters; {self.name!r} is a "
                f"{self.kind}"
            )
        points = self.points(window=window, now=now)
        rates: list[MetricPoint] = []
        for previous, current in zip(points, points[1:]):
            elapsed = current.monotonic - previous.monotonic
            if elapsed <= 0.0:
                continue
            delta = max(0.0, current.value - previous.value)
            rates.append(
                MetricPoint(current.monotonic, current.wall, delta / elapsed)
            )
        return rates

    def merge_from(self, other: "MetricSeries") -> None:
        """Fold another series' points in, interleaved by timestamp.

        Merging is how per-worker snapshots become fleet views; the
        ring stays bounded, keeping the newest points overall.  Kind
        mismatches are rejected — a counter merged into a gauge would
        corrupt rate derivation downstream.
        """
        if other.kind != self.kind:
            raise InvalidParameterError(
                f"cannot merge {other.kind} series {other.name!r} into "
                f"{self.kind} series {self.name!r}"
            )
        theirs = other.points()
        with self._lock:
            merged = sorted(
                list(self._points) + theirs, key=lambda point: point.monotonic
            )
            self._points = deque(merged, maxlen=self._points.maxlen)

    def to_dict(self, window: float | None = None) -> dict:
        """JSON-encodable snapshot (the ``/metrics/history`` payload)."""
        points = self.points(window=window)
        payload: dict = {
            "metric": self.name,
            "kind": self.kind,
            "capacity": self.capacity,
            "points": [[point.wall, point.value] for point in points],
        }
        if self.kind == "counter":
            payload["rates"] = [
                [point.wall, point.value]
                for point in self.rates(window=window)
            ]
        return payload


class SeriesCollector:
    """Samples a flat metrics mapping into per-metric ring buffers.

    The caller (the server's background ticker) calls :meth:`collect`
    with a ``name -> (kind, value)`` mapping every ``interval``
    seconds; every metric in the mapping gets one point with a shared
    timestamp, so cross-metric comparisons line up.  Unknown metrics
    create their series lazily; a metric that disappears from the
    mapping simply stops growing.
    """

    def __init__(self, interval: float = 1.0, capacity: int = 512) -> None:
        if float(interval) <= 0:
            raise InvalidParameterError(
                f"interval must be positive, got {interval}"
            )
        if int(capacity) <= 0:
            raise InvalidParameterError(
                f"capacity must be positive, got {capacity}"
            )
        self.interval = float(interval)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._series: dict[str, MetricSeries] = {}
        self.n_samples = 0

    def collect(
        self,
        sample: Mapping[str, tuple[str, float]],
        monotonic: float | None = None,
        wall: float | None = None,
    ) -> None:
        """Record one ``name -> (kind, value)`` sample at one timestamp."""
        stamp_monotonic = (
            time.monotonic() if monotonic is None else float(monotonic)
        )
        stamp_wall = time.time() if wall is None else float(wall)
        for name, (kind, value) in sample.items():
            series = self.series(name, kind)
            series.record(value, monotonic=stamp_monotonic, wall=stamp_wall)
        with self._lock:
            self.n_samples += 1

    def series(self, name: str, kind: str | None = None) -> MetricSeries:
        """The series of ``name``, created on first use when ``kind``
        is given; raises for unknown metrics otherwise."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                if kind is None:
                    raise InvalidParameterError(
                        f"unknown metric {name!r}; known: "
                        f"{sorted(self._series)}"
                    )
                series = MetricSeries(name, kind, capacity=self.capacity)
                self._series[name] = series
            elif kind is not None and series.kind != kind:
                raise InvalidParameterError(
                    f"metric {name!r} is a {series.kind}, not a {kind}"
                )
        return series

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def history(self, metric: str, window: float | None = None) -> dict:
        """The ``/metrics/history`` payload of one metric."""
        payload = self.series(metric).to_dict(window=window)
        payload["interval_seconds"] = self.interval
        return payload

    def merge_from(self, other: "SeriesCollector") -> None:
        """Fold every series of ``other`` in (fleet-level roll-up)."""
        with other._lock:
            theirs = dict(other._series)
        for name, series in theirs.items():
            self.series(name, series.kind).merge_from(series)
