"""Prometheus text exposition (format version 0.0.4).

Small, dependency-free renderers for the three shapes the serving stack
exports: counters, gauges, and :class:`~repro.obs.hist.LatencyHistogram`
series.  Each helper returns the ``# HELP`` / ``# TYPE`` header plus its
samples as text lines; :func:`render` joins metric blocks into one
scrape body.  Label values are escaped per the exposition format
(backslash, double-quote and newline).

The assembly of the serving stack's concrete metric families lives with
the metric state (:meth:`repro.server.metrics.ServerMetrics.
prometheus`); this module knows only the wire format.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

from repro.obs.hist import LatencyHistogram

__all__ = [
    "CONTENT_TYPE",
    "counter",
    "gauge",
    "histogram",
    "render",
]

#: the scrape response Content-Type Prometheus expects
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: one metric family: (name, type, help, sample lines)
_Samples = Iterable[tuple[Mapping[str, object], float]]


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _escape_help(text: str) -> str:
    # the 0.0.4 text format escapes backslash and line feed in HELP —
    # not double quotes, unlike label values; an unescaped newline
    # would truncate the comment and feed the rest to the sample
    # parser, corrupting the whole scrape
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def sample_line(name: str, labels: Mapping[str, object] | None, value: float) -> str:
    """One exposition sample, e.g. ``name{route="GET /query"} 3``."""
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(labels[key])}"' for key in sorted(labels)
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _family(name: str, kind: str, help_text: str, lines: list[str]) -> str:
    header = [
        f"# HELP {name} {_escape_help(help_text)}",
        f"# TYPE {name} {kind}",
    ]
    return "\n".join(header + lines)


def counter(name: str, help_text: str, samples: _Samples) -> str:
    """A counter family from ``(labels, value)`` samples."""
    lines = [sample_line(name, labels, value) for labels, value in samples]
    return _family(name, "counter", help_text, lines)


def gauge(name: str, help_text: str, samples: _Samples) -> str:
    """A gauge family from ``(labels, value)`` samples."""
    lines = [sample_line(name, labels, value) for labels, value in samples]
    return _family(name, "gauge", help_text, lines)


def histogram(
    name: str,
    help_text: str,
    series: Mapping[str, LatencyHistogram],
    label: str = "route",
) -> str:
    """A histogram family with one ``label``-labelled series per key.

    Renders the cumulative ``_bucket`` samples (``le`` upper bounds,
    ending in ``+Inf``), ``_sum`` and ``_count`` for every series — the
    exposition shape Prometheus turns into ``histogram_quantile()``
    queries.
    """
    lines: list[str] = []
    for key in series:
        hist = series[key]
        base = {label: key}
        for bound, cumulative_count in hist.cumulative():
            lines.append(
                sample_line(
                    f"{name}_bucket",
                    {**base, "le": _format_value(bound)},
                    cumulative_count,
                )
            )
        lines.append(sample_line(f"{name}_sum", base, hist.sum_seconds))
        lines.append(sample_line(f"{name}_count", base, hist.count))
    return _family(name, "histogram", help_text, lines)


def render(families: Iterable[str]) -> str:
    """Join metric families into one scrape body (trailing newline)."""
    body = "\n".join(block for block in families if block)
    return body + "\n" if body else ""
