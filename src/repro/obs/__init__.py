"""Observability primitives for the serving stack.

Dependency-free (standard library only) building blocks that every
serving layer shares:

* :mod:`repro.obs.hist` — :class:`LatencyHistogram`: lock-cheap,
  fixed-log-bucket latency histograms whose merge is associative and
  commutative (mirroring the repository's sketch-merge algebra) and
  whose p50/p95/p99 reads stay within one bucket of the exact
  percentile;
* :mod:`repro.obs.trace` — contextvar-based request IDs and nested
  :func:`span` timing into a bounded :class:`TraceRecorder` ring
  buffer, with optional JSONL export;
* :mod:`repro.obs.logtools` — structured JSON logging correlated by
  request ID, and the :class:`SlowRequestLog` tail-latency tattler;
* :mod:`repro.obs.prom` — Prometheus text exposition (0.0.4) for
  counters, gauges and histogram series;
* :mod:`repro.obs.series` — :class:`MetricSeries` /
  :class:`SeriesCollector`: bounded in-process metrics time series
  (monotonic timestamps, counter→rate derivation, merge-safe
  snapshots) behind ``GET /metrics/history``;
* :mod:`repro.obs.health` — :class:`HealthRule` / :class:`HealthMonitor`:
  declarative health rules with asymmetric hysteresis folding into one
  ``healthy`` / ``degraded`` / ``unhealthy`` verdict.

The package deliberately imports nothing from the serving layers, so
``repro.service`` and ``repro.server`` can instrument themselves with
it without cycles.
"""

from repro.obs.health import HealthMonitor, HealthReport, HealthRule
from repro.obs.hist import LatencyHistogram
from repro.obs.logtools import (
    JsonLogFormatter,
    SlowRequestLog,
    configure_json_logging,
)
from repro.obs.series import MetricPoint, MetricSeries, SeriesCollector
from repro.obs.trace import (
    SpanRecord,
    TraceRecorder,
    current_request_id,
    current_span_name,
    default_recorder,
    new_request_id,
    request_context,
    set_default_recorder,
    span,
)

__all__ = [
    "HealthMonitor",
    "HealthReport",
    "HealthRule",
    "JsonLogFormatter",
    "LatencyHistogram",
    "MetricPoint",
    "MetricSeries",
    "SeriesCollector",
    "SlowRequestLog",
    "SpanRecord",
    "TraceRecorder",
    "configure_json_logging",
    "current_request_id",
    "current_span_name",
    "default_recorder",
    "new_request_id",
    "request_context",
    "set_default_recorder",
    "span",
]
