"""Mergeable fixed-log-bucket latency histograms.

:class:`LatencyHistogram` records durations into geometrically spaced
buckets so that tail quantiles (p50/p95/p99) can be read back with
bounded relative error and *without* retaining the observations.  The
design mirrors the repository's sketch algebra:

* **lock-cheap** — one ``threading.Lock`` guards a handful of integer
  increments per observation; the bucket search runs outside the lock;
* **mergeable** — two histograms over the same bucket layout merge by
  elementwise count addition, which is associative and commutative
  (property-tested in ``tests/obs/test_hist.py``), so per-worker or
  per-shard histograms fold into fleet-wide ones exactly like the
  coordinated sketches they instrument;
* **quantile-queryable** — :meth:`quantile` interpolates inside the
  bucket containing the requested rank, clamped to the observed
  min/max, so the answer is always within one bucket of the exact
  percentile of the underlying observations.

The bucket layout is fixed at construction: upper bounds grow
geometrically from ``lowest`` to at least ``highest`` by ``growth``,
with a final overflow bucket for everything larger.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left

from repro.exceptions import InvalidParameterError

__all__ = ["LatencyHistogram"]

#: default layout: 100 microseconds .. 60 seconds, sqrt(2) growth
#: (two buckets per doubling, ~40 buckets total)
DEFAULT_LOWEST = 1e-4
DEFAULT_HIGHEST = 60.0
DEFAULT_GROWTH = math.sqrt(2.0)


def _bucket_bounds(lowest: float, highest: float, growth: float) -> tuple[float, ...]:
    if not (lowest > 0.0 and highest > lowest):
        raise InvalidParameterError(
            f"need 0 < lowest < highest, got {lowest} and {highest}"
        )
    if growth <= 1.0:
        raise InvalidParameterError(f"growth must exceed 1, got {growth}")
    bounds = [lowest]
    while bounds[-1] < highest:
        bounds.append(bounds[-1] * growth)
    return tuple(bounds)


class LatencyHistogram:
    """Fixed-layout log-bucket histogram of durations in seconds.

    Examples
    --------
    >>> hist = LatencyHistogram()
    >>> for ms in (1, 2, 3, 40):
    ...     hist.observe(ms / 1000.0)
    >>> hist.count
    4
    >>> 0.002 <= hist.quantile(0.5) <= 0.004
    True
    """

    __slots__ = ("_bounds", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(
        self,
        lowest: float = DEFAULT_LOWEST,
        highest: float = DEFAULT_HIGHEST,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        self._bounds = _bucket_bounds(lowest, highest, growth)
        # one count per finite upper bound, plus the overflow bucket
        self._counts = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe(self, seconds: float) -> None:
        """Record one duration (negative durations clamp to zero)."""
        seconds = float(seconds)
        if seconds < 0.0:
            seconds = 0.0
        index = bisect_left(self._bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += seconds
            if seconds < self._min:
                self._min = seconds
            if seconds > self._max:
                self._max = seconds

    # ------------------------------------------------------------------
    # Merge algebra
    # ------------------------------------------------------------------
    def merge_from(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram (elementwise count add).

        Both histograms must share the bucket layout.  The operation is
        associative and commutative, so per-worker histograms reduce in
        any order to the same fleet-wide histogram.  Returns ``self``.
        """
        if not isinstance(other, LatencyHistogram):
            raise InvalidParameterError(
                f"can only merge LatencyHistogram, got {type(other).__name__}"
            )
        if other._bounds != self._bounds:
            raise InvalidParameterError(
                "cannot merge histograms with different bucket layouts"
            )
        counts, count, total, low, high = other._state()
        with self._lock:
            for index, value in enumerate(counts):
                self._counts[index] += value
            self._count += count
            self._sum += total
            if low < self._min:
                self._min = low
            if high > self._max:
                self._max = high
        return self

    def copy(self) -> "LatencyHistogram":
        """An independent histogram with the same layout and contents."""
        clone = LatencyHistogram.__new__(LatencyHistogram)
        clone._bounds = self._bounds
        counts, count, total, low, high = self._state()
        clone._counts = counts
        clone._count = count
        clone._sum = total
        clone._min = low
        clone._max = high
        clone._lock = threading.Lock()
        return clone

    def __eq__(self, other: object) -> bool:
        """Layout and count equality.

        The duration *sum* is deliberately excluded: float addition is
        not associative at the last ulp, and equality is what the merge
        algebra property tests assert (sums are compared with a
        tolerance there).
        """
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (
            self._bounds == other._bounds
            and self._state()[:2] == other._state()[:2]
        )

    __hash__ = None  # type: ignore[assignment]

    def _state(self) -> tuple[list[int], int, float, float, float]:
        with self._lock:
            return (
                list(self._counts),
                self._count,
                self._sum,
                self._min,
                self._max,
            )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total number of recorded observations."""
        return self._count

    @property
    def sum_seconds(self) -> float:
        """Sum of all recorded durations."""
        return self._sum

    @property
    def bucket_bounds(self) -> tuple[float, ...]:
        """Finite bucket upper bounds (the overflow bucket is implicit)."""
        return self._bounds

    def bucket_counts(self) -> list[int]:
        """Per-bucket counts; the last entry is the overflow bucket."""
        return self._state()[0]

    def bucket_index(self, seconds: float) -> int:
        """The bucket an observation of ``seconds`` would land in."""
        return bisect_left(self._bounds, max(0.0, float(seconds)))

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style.

        The final pair carries ``math.inf`` as its bound and equals the
        total observation count.
        """
        counts, count, _, _, _ = self._state()
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, value in zip(self._bounds, counts):
            running += value
            pairs.append((bound, running))
        pairs.append((math.inf, count))
        return pairs

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]) of the observations.

        Interpolates linearly inside the bucket holding rank
        ``q * count`` and clamps to the observed min/max, so the result
        is within one bucket of the exact percentile.  Returns ``nan``
        for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"q must be in [0, 1], got {q}")
        counts, count, _, low, high = self._state()
        if count == 0:
            return math.nan
        target = q * count
        running = 0.0
        for index, value in enumerate(counts):
            if value == 0:
                continue
            if running + value >= target:
                lower = self._bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self._bounds[index]
                    if index < len(self._bounds)
                    else max(high, self._bounds[-1])
                )
                fraction = (target - running) / value
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, low), high)
            running += value
        return high

    def quantiles(self, qs=(0.5, 0.95, 0.99)) -> dict[str, float]:
        """Named quantiles, e.g. ``{"p50": ..., "p95": ..., "p99": ...}``."""
        return {f"p{round(q * 100):d}": self.quantile(q) for q in qs}

    def to_dict(self) -> dict:
        """JSON-ready summary: count, sum and the serving quantiles."""
        counts, count, total, low, high = self._state()
        summary = {
            "count": count,
            "sum_seconds": total,
            "min_seconds": low if count else 0.0,
            "max_seconds": high,
        }
        for name, value in self.quantiles().items():
            summary[f"{name}_seconds"] = 0.0 if math.isnan(value) else value
        return summary

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(count={self._count}, "
            f"sum_seconds={self._sum:.6f}, buckets={len(self._counts)})"
        )
