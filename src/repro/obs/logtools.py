"""Structured JSON logging with trace correlation.

:class:`JsonLogFormatter` renders every log record as one JSON object
per line — machine-parseable, stable keys, and automatically stamped
with the current request ID from :mod:`repro.obs.trace`, so log lines
and trace spans of the same request correlate without any plumbing in
the call sites.  Extra fields passed via ``logger.info(...,
extra={...})`` land as top-level keys.

:class:`SlowRequestLog` is the serving stack's tail-latency tattler: it
watches observed request durations and emits one structured warning per
request beyond a configurable threshold, carrying the route, duration,
status and request ID.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO

from repro.obs.trace import current_request_id

__all__ = ["JsonLogFormatter", "SlowRequestLog", "configure_json_logging"]

#: attributes every LogRecord carries; anything else came in via extra=
_RESERVED_ATTRS = frozenset(
    {
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    }
)


class JsonLogFormatter(logging.Formatter):
    """One JSON object per log line, request-ID correlated."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(record.created))
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        request_id = current_request_id()
        if request_id is not None:
            payload["request_id"] = request_id
        for key, value in record.__dict__.items():
            if key not in _RESERVED_ATTRS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=repr)


def configure_json_logging(
    logger_name: str = "repro",
    stream: IO[str] | None = None,
    level: int = logging.INFO,
) -> logging.Logger:
    """Route ``logger_name`` through a JSON line handler.

    Idempotent: an existing JSON handler on the logger is replaced, not
    stacked, so repeated server construction does not multiply log
    lines.  Returns the configured logger.
    """
    logger = logging.getLogger(logger_name)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    for existing in list(logger.handlers):
        if isinstance(existing.formatter, JsonLogFormatter):
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


class SlowRequestLog:
    """Log one structured warning per request beyond a threshold.

    ``threshold_ms <= 0`` disables the log entirely (observations are
    still counted as seen, nothing is emitted).
    """

    def __init__(
        self,
        threshold_ms: float,
        logger: logging.Logger | None = None,
    ) -> None:
        self.threshold_ms = float(threshold_ms)
        self.logger = logger if logger is not None else logging.getLogger("repro.obs")
        self.n_seen = 0
        self.n_slow = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_ms > 0.0

    def observe(
        self,
        route: str,
        seconds: float,
        status: int | None = None,
        request_id: str | None = None,
    ) -> bool:
        """Report one request; returns whether it was logged as slow."""
        self.n_seen += 1
        duration_ms = float(seconds) * 1000.0
        if not self.enabled or duration_ms < self.threshold_ms:
            return False
        self.n_slow += 1
        extra: dict[str, object] = {
            "route": route,
            "duration_ms": round(duration_ms, 3),
            "threshold_ms": self.threshold_ms,
        }
        if status is not None:
            extra["status"] = int(status)
        if request_id is None:
            request_id = current_request_id()
        if request_id is not None:
            extra["request_id"] = request_id
        self.logger.warning(
            "slow request: %s took %.1f ms (threshold %.0f ms)",
            route,
            duration_ms,
            self.threshold_ms,
            extra=extra,
        )
        return True
