"""Columnar binary batch format for the HTTP ingest fast path.

JSON and CSV ingest spend almost all of their time building per-row
Python objects: BENCH_PR5/PR6 put the HTTP layer at a few tens of
thousands of rows per second while the store itself ingests large NumPy
columns at millions of rows per second.  This module defines the wire
format that closes that gap: a self-describing little-endian blob whose
key and value columns deserialize straight into the arrays
:meth:`repro.streaming.StreamEngine.ingest` and
:meth:`repro.service.SketchStore.ingest` already want — no per-row
Python objects on the decode path, and non-finite values rejected in one
vectorized :func:`numpy.isfinite` pass so the fast path is also the safe
path.

A body carries a *pipelined sequence* of batches, so one request can
amortize HTTP framing and executor-hop overhead over many logical
batches; the server coalesces them per instance before ingesting
(:meth:`repro.service.SketchStore.ingest_batches`).

Layout
------
Everything is little-endian; the header reuses the magic + version
conventions of :mod:`repro.service.codec`, and instance labels (plus
heterogeneous keys) use the codec's tagged label union so labels encode
identically in snapshots and ingest batches::

    magic      b"RBAT"            4 bytes
    version    u16                (currently 1)
    n_batches  u32
    batch * n_batches:
        instance   tagged label   (codec union: int/str/float/...)
        key_tag    u8             0 tagged / 1 i64 / 2 utf-8 str
        n_rows     u64
        keys       key_tag 0: n_rows tagged labels
                   key_tag 1: raw ``<i8`` column (8 * n_rows bytes)
                   key_tag 2: ``<u4`` length column, then the
                              concatenated utf-8 bytes
        values     raw ``<f8`` column (8 * n_rows bytes)

Homogeneous integer and string key columns get the flat encodings
(``key_tag`` 1/2); anything else — mixed types, tuples, bytes, bools —
falls back to the per-key tagged union, which is still far cheaper than
JSON.  Decoding failures (bad magic, unsupported version, truncation,
unknown tags, corrupt utf-8, trailing bytes, non-finite values) raise
:class:`~repro.exceptions.SketchCodecError`, never ``struct.error``.

The MIME type for HTTP bodies in this format is
:data:`BATCH_CONTENT_TYPE` (``application/x-repro-batch``).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import NamedTuple

import numpy as np

from repro.exceptions import SketchCodecError
from repro.service.codec import Reader, Writer, read_label, write_label

__all__ = [
    "BATCH_CONTENT_TYPE",
    "MAGIC",
    "REPLICA_CONTENT_TYPE",
    "REPLICA_MAGIC",
    "REPLICA_MODE_STORE",
    "REPLICA_MODE_WAL",
    "REPLICA_VERSION",
    "WIRE_VERSION",
    "WireBatch",
    "decode_batches",
    "decode_replica",
    "encode_batches",
    "encode_replica",
]

BATCH_CONTENT_TYPE = "application/x-repro-batch"
MAGIC = b"RBAT"
WIRE_VERSION = 1

#: MIME type of ``GET /replicate`` response bodies
REPLICA_CONTENT_TYPE = "application/x-repro-replica"
REPLICA_MAGIC = b"RREP"
REPLICA_VERSION = 1
#: payload is a WAL tail — concatenated record frames for
#: :func:`repro.wal.decode_tail`
REPLICA_MODE_WAL = 1
#: payload is a full store snapshot blob (the tail was checkpointed
#: away) for :func:`repro.service.codec.store_from_bytes`
REPLICA_MODE_STORE = 2

#: key-column encodings
_KEY_TAGGED = 0
_KEY_I64 = 1
_KEY_STR = 2

_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1


class WireBatch(NamedTuple):
    """One decoded ingest batch.

    ``keys`` is a ``<i8`` NumPy array (homogeneous integer column), a
    list of strings, or a list of arbitrary decoded labels; ``values``
    is a float64 NumPy array viewing the payload bytes directly.
    """

    instance: object
    keys: Sequence[object]
    values: np.ndarray


def _is_plain_int(key: object) -> bool:
    return (
        isinstance(key, (int, np.integer))
        and not isinstance(key, (bool, np.bool_))
        and _I64_MIN <= int(key) <= _I64_MAX
    )


def _encode_keys(writer: Writer, keys) -> None:
    """Write one key column, picking the cheapest faithful encoding."""
    if isinstance(keys, np.ndarray):
        if keys.dtype.kind == "i" and keys.dtype.itemsize <= 8:
            writer.u8(_KEY_I64)
            writer.u64(len(keys))
            writer.raw(np.ascontiguousarray(keys, dtype="<i8").tobytes())
            return
        if keys.dtype.kind == "u" and (
            keys.size == 0 or int(keys.max()) <= _I64_MAX
        ):
            writer.u8(_KEY_I64)
            writer.u64(len(keys))
            writer.raw(keys.astype("<i8").tobytes())
            return
        keys = keys.tolist()
    if keys and all(_is_plain_int(key) for key in keys):
        writer.u8(_KEY_I64)
        writer.u64(len(keys))
        writer.raw(
            np.fromiter(
                (int(key) for key in keys), dtype="<i8", count=len(keys)
            ).tobytes()
        )
        return
    if keys and all(isinstance(key, str) for key in keys):
        encoded = [key.encode("utf-8") for key in keys]
        writer.u8(_KEY_STR)
        writer.u64(len(encoded))
        writer.raw(
            np.fromiter(
                (len(item) for item in encoded),
                dtype="<u4",
                count=len(encoded),
            ).tobytes()
        )
        writer.raw(b"".join(encoded))
        return
    writer.u8(_KEY_TAGGED)
    writer.u64(len(keys))
    for key in keys:
        write_label(writer, key)


def encode_batches(
    batches: Iterable[tuple[object, Sequence[object], Sequence[float]]],
) -> bytes:
    """Encode ``(instance, keys, values)`` batches to one wire blob.

    ``keys`` may be a NumPy integer array, a list of ints, a list of
    strings, or any mix of codec-encodable labels; ``values`` is
    anything :func:`numpy.asarray` turns into a 1-D float column.
    Non-finite values are rejected here, mirroring the decoder — a
    well-behaved client cannot emit a batch the server will refuse.
    """
    batches = list(batches)
    writer = Writer()
    writer.raw(MAGIC)
    writer.u16(WIRE_VERSION)
    writer.u32(len(batches))
    for index, (instance, keys, values) in enumerate(batches):
        if isinstance(keys, np.ndarray):
            if keys.ndim != 1:
                raise SketchCodecError(
                    f"batch {index}: keys must form a 1-D column, got "
                    f"shape {keys.shape}"
                )
        else:
            keys = list(keys)
        values = np.ascontiguousarray(values, dtype="<f8")
        if values.ndim != 1:
            raise SketchCodecError(
                f"batch {index}: values must form a 1-D column, got "
                f"shape {values.shape}"
            )
        if len(keys) != len(values):
            raise SketchCodecError(
                f"batch {index}: {len(keys)} keys but {len(values)} values"
            )
        if values.size and not np.isfinite(values).all():
            bad = int(np.flatnonzero(~np.isfinite(values))[0])
            raise SketchCodecError(
                f"batch {index}: non-finite update value "
                f"{float(values[bad])!r} at row {bad}"
            )
        write_label(writer, instance)
        _encode_keys(writer, keys)
        writer.raw(values.tobytes())
    return writer.getvalue()


def decode_batches(data: bytes) -> list[WireBatch]:
    """Decode a wire blob into :class:`WireBatch` columns.

    Raises :class:`~repro.exceptions.SketchCodecError` on any malformed
    payload — including non-finite values, which are detected with one
    vectorized ``np.isfinite`` pass per batch so a poisoned row can
    never reach a sketch.
    """
    reader = Reader(data)
    magic = reader.raw(len(MAGIC))
    if magic != MAGIC:
        raise SketchCodecError(
            f"bad magic {magic!r}: not a repro batch payload"
        )
    version = reader.u16()
    if not 1 <= version <= WIRE_VERSION:
        raise SketchCodecError(
            f"unsupported batch wire version {version}; this build reads "
            f"versions 1..{WIRE_VERSION}"
        )
    batches = []
    for index in range(reader.u32()):
        instance = read_label(reader)
        key_tag = reader.u8()
        n_rows = reader.u64()
        keys: Sequence[object]
        if key_tag == _KEY_I64:
            keys = np.frombuffer(reader.raw(8 * n_rows), dtype="<i8")
        elif key_tag == _KEY_STR:
            lengths = np.frombuffer(reader.raw(4 * n_rows), dtype="<u4")
            blob = reader.raw(int(lengths.sum(dtype=np.uint64)))
            view = memoryview(blob)
            decoded = []
            offset = 0
            try:
                for length in lengths.tolist():
                    decoded.append(str(view[offset : offset + length], "utf-8"))
                    offset += length
            except UnicodeDecodeError as exc:
                raise SketchCodecError(
                    f"batch {index}: corrupt utf-8 key payload: {exc}"
                ) from exc
            keys = decoded
        elif key_tag == _KEY_TAGGED:
            keys = [read_label(reader) for _ in range(n_rows)]
        else:
            raise SketchCodecError(
                f"batch {index}: unknown key tag {key_tag}"
            )
        values = np.frombuffer(reader.raw(8 * n_rows), dtype="<f8")
        if values.size:
            finite = np.isfinite(values)
            if not finite.all():
                bad = int(np.flatnonzero(~finite)[0])
                raise SketchCodecError(
                    f"batch {index} (instance {instance!r}): non-finite "
                    f"update value {float(values[bad])!r} at row {bad}"
                )
        batches.append(WireBatch(instance, keys, values))
    reader.expect_end()
    return batches


def encode_replica(mode: int, last_lsn: int, payload: bytes) -> bytes:
    """Frame one ``/replicate`` response body.

    Layout: ``b"RREP"`` magic, u16 version, u8 mode
    (:data:`REPLICA_MODE_WAL` / :data:`REPLICA_MODE_STORE`), u64
    ``last_lsn`` (the follower's next ``since`` cursor), then the
    length-prefixed payload.
    """
    if mode not in (REPLICA_MODE_WAL, REPLICA_MODE_STORE):
        raise SketchCodecError(f"unknown replica mode {mode}")
    writer = Writer()
    writer.raw(REPLICA_MAGIC)
    writer.u16(REPLICA_VERSION)
    writer.u8(mode)
    writer.u64(int(last_lsn))
    writer.blob(bytes(payload))
    return writer.getvalue()


def decode_replica(data: bytes) -> tuple[int, int, bytes]:
    """Decode a ``/replicate`` body into ``(mode, last_lsn, payload)``."""
    reader = Reader(data)
    magic = reader.raw(len(REPLICA_MAGIC))
    if magic != REPLICA_MAGIC:
        raise SketchCodecError(
            f"bad magic {magic!r}: not a repro replica payload"
        )
    version = reader.u16()
    if not 1 <= version <= REPLICA_VERSION:
        raise SketchCodecError(
            f"unsupported replica version {version}; this build reads "
            f"versions 1..{REPLICA_VERSION}"
        )
    mode = reader.u8()
    if mode not in (REPLICA_MODE_WAL, REPLICA_MODE_STORE):
        raise SketchCodecError(f"unknown replica mode {mode}")
    last_lsn = reader.u64()
    payload = reader.blob()
    reader.expect_end()
    return mode, last_lsn, payload
