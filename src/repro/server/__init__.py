"""Asyncio HTTP front-end for the sketch service.

The service layer (:mod:`repro.service`) gives coordinated sketches
persistent, queryable state; this package puts that state on the
network, standard-library only:

* :mod:`repro.server.protocol` — minimal HTTP/1.1 framing over asyncio
  streams with size limits and a typed :class:`HttpError` channel;
* :mod:`repro.server.routing` — the exact-path method router (404/405
  with ``Allow``);
* :mod:`repro.server.app` — :class:`SketchServer`: ``POST /ingest``
  (JSON/CSV/binary batches, per-engine backpressure), ``GET /query``
  through the version-cached planner, ``POST /snapshot`` / ``POST
  /merge`` codec-backed persistence, ``GET /healthz`` / ``GET
  /metrics``.  Store work runs on a thread-pool executor; graceful
  shutdown drains requests and snapshots engines that changed since the
  last snapshot;
* :mod:`repro.server.wire` — the columnar binary batch format behind
  ``Content-Type: application/x-repro-batch``, the ingest fast path
  that decodes straight into NumPy columns, plus the ``/replicate``
  envelope followers use to catch up from the write-ahead log;
* :mod:`repro.server.metrics` — the serving counters behind
  ``/metrics``;
* :mod:`repro.server.client` — :class:`AsyncSketchClient`, the
  keep-alive client used by the load generator, the examples and the
  test suite;
* :mod:`repro.server.config` — :class:`ServerConfig`, the shared
  configuration surface of the API and the ``python -m repro.service
  serve`` CLI.
"""

from repro.server.app import SketchServer
from repro.server.client import AsyncSketchClient, ClientResponseError
from repro.server.config import ServerConfig
from repro.server.metrics import ServerMetrics
from repro.server.protocol import HttpError
from repro.server.routing import Router
from repro.server.wire import (
    BATCH_CONTENT_TYPE,
    REPLICA_CONTENT_TYPE,
    REPLICA_MODE_STORE,
    REPLICA_MODE_WAL,
    WireBatch,
    decode_batches,
    decode_replica,
    encode_batches,
    encode_replica,
)

__all__ = [
    "AsyncSketchClient",
    "BATCH_CONTENT_TYPE",
    "ClientResponseError",
    "HttpError",
    "REPLICA_CONTENT_TYPE",
    "REPLICA_MODE_STORE",
    "REPLICA_MODE_WAL",
    "Router",
    "ServerConfig",
    "ServerMetrics",
    "SketchServer",
    "WireBatch",
    "decode_batches",
    "decode_replica",
    "encode_batches",
    "encode_replica",
]
