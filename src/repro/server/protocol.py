"""Minimal HTTP/1.1 framing over :mod:`asyncio` streams.

The server speaks just enough HTTP for its JSON API — request-line +
headers + ``Content-Length`` bodies, percent-encoded query strings,
keep-alive by default — with hard limits on header and body sizes so a
misbehaving client cannot balloon memory.  No third-party dependency:
everything here is the standard library.

:class:`HttpError` is the protocol-level error channel: handlers (and
the parser itself) raise it with a status code, and the connection loop
turns it into a JSON error response.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "response_bytes",
    "json_response_bytes",
]

MAX_REQUEST_LINE_BYTES = 8192
MAX_HEADER_BYTES = 32768
#: bounded memo of parsed query strings (clients repeat a few shapes)
_QUERY_CACHE: dict[str, dict[str, str]] = {}
_QUERY_CACHE_MAX = 1024
#: how much of an oversized body is read and discarded before the 413
_MAX_DRAIN_BYTES = 1024 * 1024

REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _reject_constant(name: str) -> float:
    """``parse_constant`` hook: refuse ``NaN`` / ``Infinity`` literals."""
    raise ValueError(f"non-finite JSON value {name} is not accepted")


class HttpError(Exception):
    """An HTTP error response as an exception.

    ``extra_headers`` lets a handler attach response headers to the
    error (e.g. ``Retry-After`` on a 503 backpressure rejection).
    """

    def __init__(
        self,
        status: int,
        message: str,
        extra_headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.extra_headers = tuple(extra_headers)


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    params: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    keep_alive: bool = True
    #: parsed JSON body, memoised by :meth:`json`
    _json: object = field(default=None, repr=False)

    def json(self) -> object:
        """The body decoded as JSON (raises ``HttpError(400)`` if not).

        ``NaN`` / ``Infinity`` literals — which Python's ``json`` module
        accepts by default — are rejected: a non-finite update value
        breaks sketch heap invariants, so it must die at the parser.
        """
        if self._json is None:
            if not self.body:
                raise HttpError(400, "request body must be JSON")
            try:
                self._json = json.loads(
                    self.body, parse_constant=_reject_constant
                )
            except (UnicodeDecodeError, ValueError) as exc:
                # ValueError also catches json.JSONDecodeError and the
                # parse_constant rejection above
                raise HttpError(400, f"malformed JSON body: {exc}") from exc
        return self._json

    def text(self) -> str:
        """The body decoded as UTF-8 (raises ``HttpError(400)`` if not)."""
        try:
            return self.body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise HttpError(400, f"body is not valid UTF-8: {exc}") from exc


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Request | None:
    """Read and parse one request from an asyncio stream reader.

    Returns ``None`` when the client closed the connection cleanly
    between requests.  Raises :class:`HttpError` on malformed requests,
    oversized headers, or bodies larger than ``max_body_bytes``.
    """
    # the whole head (request line + headers) arrives in one readuntil:
    # per-request syscall and task-switch overhead beats line-at-a-time
    # parsing by a wide margin on the serving hot path
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(400, "request head too large") from exc
    if len(head) > MAX_REQUEST_LINE_BYTES + MAX_HEADER_BYTES:
        raise HttpError(
            400,
            f"request head exceeds "
            f"{MAX_REQUEST_LINE_BYTES + MAX_HEADER_BYTES} bytes",
        )
    request_line, _, header_block = head.partition(b"\r\n")
    if len(request_line) > MAX_REQUEST_LINE_BYTES:
        raise HttpError(400, "request line too long")
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {parts!r}")
    method, target, http_version = parts
    if not http_version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {http_version!r}")

    headers: dict[str, str] = {}
    # splitlines (not split("\r\n")) so a stray bare-\n line ending
    # cannot smuggle a second header through one parsed line
    for text in header_block.decode("latin-1").splitlines():
        text = text.strip()
        if not text:
            break
        name, separator, value = text.partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line: {text!r}")
        key = name.strip().lower()
        value = value.strip()
        if key == "content-length" and headers.get(key, value) != value:
            # conflicting lengths are a request-smuggling vector; the
            # silent last-wins of a plain dict assignment must not decide
            raise HttpError(400, "conflicting duplicate Content-Length headers")
        headers[key] = value

    body = b""
    if "content-length" in headers:
        try:
            content_length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "malformed Content-Length") from exc
        if content_length < 0:
            raise HttpError(400, "negative Content-Length")
        if content_length > max_body_bytes:
            # drain a bounded amount of the oversized body before
            # rejecting, so closing the connection cannot RST the 413
            # response out from under a client that already sent it
            drain = min(content_length, _MAX_DRAIN_BYTES)
            with contextlib.suppress(asyncio.IncompleteReadError):
                await reader.readexactly(drain)
            raise HttpError(
                413,
                f"request body of {content_length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
            )
        try:
            body = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated request body") from exc
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    split = urlsplit(target)
    # API clients repeat a handful of query strings; memoise the parse
    # and hand each request its own copy so handlers stay isolated
    cached = _QUERY_CACHE.get(split.query)
    if cached is None:
        cached = {
            key: value
            for key, value in parse_qsl(split.query, keep_blank_values=True)
        }
        if len(_QUERY_CACHE) < _QUERY_CACHE_MAX:
            _QUERY_CACHE[split.query] = cached
    params = dict(cached)
    keep_alive = headers.get("connection", "").lower() != "close" and (
        http_version != "HTTP/1.0"
        or headers.get("connection", "").lower() == "keep-alive"
    )
    return Request(
        method=method.upper(),
        target=target,
        path=unquote(split.path),
        params=params,
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


def response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """Serialize one HTTP/1.1 response."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = "\r\n".join(lines).encode("latin-1")
    return head + b"\r\n\r\n" + body


def json_response_bytes(
    status: int,
    payload: object,
    keep_alive: bool = True,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """Serialize one JSON response (compact separators, sorted keys)."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return response_bytes(
        status,
        body,
        keep_alive=keep_alive,
        extra_headers=extra_headers,
    )
