"""Serving metrics of the HTTP sketch server.

:class:`ServerMetrics` is a small thread-safe counter bag — the HTTP
handlers run on the event loop but ingest work lands on executor
threads, so every mutation takes the lock.  :meth:`snapshot` assembles
the full ``GET /metrics`` payload: request/response counters, ingest
throughput, the query planner's cache hit rate, and a per-engine block
built from the store's version counters and the engines' cheap
:meth:`~repro.streaming.StreamEngine.probe`.
"""

from __future__ import annotations

import threading
import time
from collections import Counter

__all__ = ["ServerMetrics"]


class ServerMetrics:
    """Thread-safe counters plus the ``/metrics`` payload builder."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self._started_wall = time.time()
        self._requests_by_route: Counter[str] = Counter()
        self._responses_by_status: Counter[int] = Counter()
        self._ingested_rows = 0
        self._ingest_batches = 0
        self._ingest_seconds = 0.0
        self._rejected_oversized = 0
        self._rejected_backpressure = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, method: str, path: str) -> None:
        with self._lock:
            self._requests_by_route[f"{method} {path}"] += 1

    def record_response(self, status: int) -> None:
        with self._lock:
            self._responses_by_status[int(status)] += 1
            if status == 413:
                self._rejected_oversized += 1
            elif status == 503:
                self._rejected_backpressure += 1

    def record_ingest(self, n_rows: int, seconds: float) -> None:
        with self._lock:
            self._ingested_rows += int(n_rows)
            self._ingest_batches += 1
            self._ingest_seconds += float(seconds)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_monotonic

    def snapshot(self, store, planner, pending: dict) -> dict:
        """The full ``/metrics`` payload.

        ``pending`` maps engine names to their in-flight ingest batch
        counts (the server's backpressure state).
        """
        uptime = self.uptime_seconds()
        with self._lock:
            requests = dict(self._requests_by_route)
            responses = {
                str(status): count
                for status, count in self._responses_by_status.items()
            }
            ingested_rows = self._ingested_rows
            ingest_batches = self._ingest_batches
            ingest_seconds = self._ingest_seconds
            rejected_oversized = self._rejected_oversized
            rejected_backpressure = self._rejected_backpressure

        engines: dict[str, dict] = {}
        for name in store.names():
            probe = store.engine(name).probe()
            engines[name] = {
                "version": store.version(name),
                "pending_batches": int(pending.get(name, 0)),
                **probe,
            }

        return {
            "started_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime(self._started_wall)
            ),
            "uptime_seconds": uptime,
            "requests": requests,
            "responses": responses,
            "ingest": {
                "rows": ingested_rows,
                "batches": ingest_batches,
                "busy_seconds": ingest_seconds,
                # sustained throughput over the server lifetime ...
                "rows_per_second": ingested_rows / uptime if uptime else 0.0,
                # ... and while actually ingesting
                "rows_per_busy_second": (
                    ingested_rows / ingest_seconds if ingest_seconds else 0.0
                ),
                "rejected_oversized": rejected_oversized,
                "rejected_backpressure": rejected_backpressure,
            },
            "query_cache": planner.cache_stats(),
            "engines": engines,
        }
