"""Serving metrics of the HTTP sketch server.

:class:`ServerMetrics` is a thread-safe metric bag — the HTTP handlers
run on the event loop but ingest work lands on executor threads, so
every mutation takes the lock.  Alongside the request/response/ingest
counters it owns one :class:`~repro.obs.LatencyHistogram` per route
(mergeable, quantile-queryable), so ``/metrics`` reports where time
goes, not just how often.

Two reporting surfaces share the same state:

* :meth:`snapshot` — the JSON ``GET /metrics`` payload: counters,
  ingest throughput, per-route latency quantiles, the query planner's
  cache hit rate, and a per-engine block built from the engines' cheap
  :meth:`~repro.streaming.StreamEngine.probe`;
* :meth:`prometheus` — the same state in Prometheus text exposition
  (``GET /metrics?format=prometheus``), with the route histograms
  rendered as cumulative ``_bucket`` series.

A third, *derived* surface feeds the time-series layer:
:meth:`series_sample` flattens the live counters, cache gauges, merged
latency quantiles and WAL state into one ``name -> (kind, value)``
mapping that the server's background ticker hands to a
:class:`repro.obs.SeriesCollector` every ``series_interval`` seconds —
the data behind ``GET /metrics/history`` and the ``/statusz``
sparklines.  :meth:`record_accuracy` additionally folds each confident
query's estimated coefficient of variation into a per-query-kind
histogram, so ``/metrics`` reports not just how fast queries are but
how *tight* their estimates run.
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter

from repro.exceptions import UnknownStoreError
from repro.obs import LatencyHistogram, prom

__all__ = ["ServerMetrics"]

#: rate denominators are floored here: a server a few hundred
#: microseconds old reporting a handful of rows must not extrapolate
#: them into a six-figure rows/s claim
_MIN_RATE_SECONDS = 1e-3


def _rate(n: int, seconds: float) -> float:
    """A robust ``n / seconds`` throughput: 0 for nothing observed, and
    never divided by a sub-millisecond denominator."""
    if n <= 0:
        return 0.0
    return n / max(float(seconds), _MIN_RATE_SECONDS)


class ServerMetrics:
    """Thread-safe counters and latency histograms plus the
    ``/metrics`` payload builders."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self._started_wall = time.time()
        self._requests_by_route: Counter[str] = Counter()
        self._responses_by_status: Counter[int] = Counter()
        self._route_histograms: dict[str, LatencyHistogram] = {}
        self._ingested_rows = 0
        self._ingest_batches = 0
        self._ingest_seconds = 0.0
        self._rejected_oversized = 0
        self._rejected_backpressure = 0
        self._slow_requests = 0
        self._accuracy_histograms: dict[str, LatencyHistogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, method: str, path: str) -> None:
        with self._lock:
            self._requests_by_route[f"{method} {path}"] += 1

    def record_response(self, status: int) -> None:
        with self._lock:
            self._responses_by_status[int(status)] += 1
            if status == 413:
                self._rejected_oversized += 1
            elif status == 503:
                self._rejected_backpressure += 1

    def record_ingest(self, n_rows: int, seconds: float) -> None:
        with self._lock:
            self._ingested_rows += int(n_rows)
            self._ingest_batches += 1
            self._ingest_seconds += float(seconds)

    def record_duration(self, route: str, seconds: float) -> None:
        """Time one request into the route's latency histogram.

        ``route`` must be bounded-cardinality (a registered route label,
        not a raw request path) — each distinct value owns a histogram.
        """
        histogram = self._route_histograms.get(route)
        if histogram is None:
            with self._lock:
                histogram = self._route_histograms.setdefault(route, LatencyHistogram())
        histogram.observe(seconds)

    def record_slow_request(self) -> None:
        with self._lock:
            self._slow_requests += 1

    def record_accuracy(self, kind: str, cv: float) -> None:
        """Fold one confident query's estimated coefficient of
        variation into the per-query-kind accuracy histogram.

        ``kind`` must be bounded-cardinality (a query kind, not a query
        name).  The histogram machinery is unit-agnostic — a cv is a
        dimensionless ratio on the same 1e-4..60 log grid.
        """
        cv = float(cv)
        if not math.isfinite(cv):
            return
        histogram = self._accuracy_histograms.get(kind)
        if histogram is None:
            with self._lock:
                histogram = self._accuracy_histograms.setdefault(
                    kind, LatencyHistogram()
                )
        histogram.observe(cv)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_monotonic

    def response_counts(self) -> tuple[int, int]:
        """``(total responses, 503 backpressure rejections)`` — the
        health rules' backpressure-rate feed."""
        with self._lock:
            return (
                sum(self._responses_by_status.values()),
                self._rejected_backpressure,
            )

    def route_histogram(self, route: str) -> LatencyHistogram | None:
        """The live latency histogram of one route label, if any."""
        with self._lock:
            return self._route_histograms.get(route)

    def merged_histogram(self) -> LatencyHistogram:
        """All route histograms folded into one (merge is associative
        and commutative, so the fold order is irrelevant)."""
        merged = LatencyHistogram()
        with self._lock:
            histograms = list(self._route_histograms.values())
        for histogram in histograms:
            merged.merge_from(histogram)
        return merged

    def series_sample(
        self, store, planner, pending: dict
    ) -> dict[str, tuple[str, float]]:
        """One flattened ``name -> (kind, value)`` sample for the
        metrics time series.

        Unlike :meth:`snapshot` this is label-free — every entry is one
        scalar a ring buffer can hold — and intentionally cheap: the
        per-route breakdown folds to totals, the engines contribute one
        summed gauge, and the WAL contributes its cursor positions and
        fsync tail.  Counter entries get their per-second rates derived
        by :class:`~repro.obs.MetricSeries` on read.
        """
        with self._lock:
            requests = sum(self._requests_by_route.values())
            responses = sum(self._responses_by_status.values())
            ingested_rows = self._ingested_rows
            ingest_batches = self._ingest_batches
            rejected_backpressure = self._rejected_backpressure
            rejected_oversized = self._rejected_oversized
            slow_requests = self._slow_requests
        cache = planner.cache_stats()
        sample: dict[str, tuple[str, float]] = {
            "repro_requests_total": ("counter", float(requests)),
            "repro_responses_total": ("counter", float(responses)),
            "repro_ingest_rows_total": ("counter", float(ingested_rows)),
            "repro_ingest_batches_total": (
                "counter",
                float(ingest_batches),
            ),
            "repro_rejected_backpressure_total": (
                "counter",
                float(rejected_backpressure),
            ),
            "repro_rejected_oversized_total": (
                "counter",
                float(rejected_oversized),
            ),
            "repro_slow_requests_total": ("counter", float(slow_requests)),
            "repro_query_cache_hits_total": (
                "counter",
                float(cache["hits"]),
            ),
            "repro_query_cache_misses_total": (
                "counter",
                float(cache["misses"]),
            ),
            "repro_query_cache_entries": ("gauge", float(cache["entries"])),
            "repro_query_cache_hit_rate": ("gauge", float(cache["hit_rate"])),
        }
        merged = self.merged_histogram()
        if merged.count:
            for name, value in merged.quantiles().items():
                sample[f"repro_request_{name}_seconds"] = ("gauge", value)
        retained = 0
        for name in store.names():
            try:
                retained += int(
                    store.engine(name).probe().get("retained_keys", 0)
                )
            except UnknownStoreError:
                continue
        sample["repro_engine_retained_keys"] = ("gauge", float(retained))
        sample["repro_engine_pending_batches"] = (
            "gauge",
            float(sum(pending.values())),
        )
        probes = getattr(store, "worker_probes", None)
        if probes is not None and (rows := probes()):
            sample["repro_worker_alive"] = (
                "gauge",
                float(sum(1 for row in rows if row["alive"])),
            )
            sample["repro_worker_queue_depth"] = (
                "gauge",
                float(sum(row["queue_depth"] for row in rows)),
            )
            sample["repro_worker_restarts_total"] = (
                "counter",
                float(sum(row["restarts"] for row in rows)),
            )
        wal = getattr(store, "wal", None)
        if wal is not None:
            stats = wal.stats()
            sample["repro_wal_last_lsn"] = ("gauge", float(stats["last_lsn"]))
            sample["repro_wal_checkpoint_lsn"] = (
                "gauge",
                float(stats["checkpoint_lsn"]),
            )
            sample["repro_wal_segments"] = ("gauge", float(stats["segments"]))
            fsync_p99 = wal.fsync_histogram.quantile(0.99)
            if math.isfinite(fsync_p99):
                sample["repro_wal_fsync_p99_seconds"] = ("gauge", fsync_p99)
        return sample

    def _engine_block(self, store, pending: dict) -> dict[str, dict]:
        """Per-engine probes, defensively iterated.

        ``store.names()`` is a point-in-time snapshot; engines can be
        created or removed (e.g. by a concurrent merge/restore swap)
        while this loop runs, so a vanished name is skipped rather than
        failing the whole scrape.  ``version_hint`` is deliberately the
        lock-free read: a metrics scrape must not queue behind in-flight
        ingest batches for a number that is stale a moment later anyway.
        """
        engines: dict[str, dict] = {}
        for name in store.names():
            try:
                probe = store.engine(name).probe()
                version = store.version_hint(name)
            except UnknownStoreError:
                continue
            engines[name] = {
                "version": version,
                "pending_batches": int(pending.get(name, 0)),
                **probe,
            }
        return engines

    def snapshot(self, store, planner, pending: dict) -> dict:
        """The full JSON ``/metrics`` payload.

        ``pending`` maps engine names to their in-flight ingest batch
        counts (the server's backpressure state).
        """
        uptime = self.uptime_seconds()
        with self._lock:
            requests = dict(self._requests_by_route)
            responses = {
                str(status): count
                for status, count in self._responses_by_status.items()
            }
            histograms = dict(self._route_histograms)
            ingested_rows = self._ingested_rows
            ingest_batches = self._ingest_batches
            ingest_seconds = self._ingest_seconds
            rejected_oversized = self._rejected_oversized
            rejected_backpressure = self._rejected_backpressure
            slow_requests = self._slow_requests
            accuracy = dict(self._accuracy_histograms)

        return {
            "started_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime(self._started_wall)
            ),
            "uptime_seconds": uptime,
            "requests": requests,
            "responses": responses,
            "latency": {
                route: histograms[route].to_dict() for route in histograms
            },
            "slow_requests": slow_requests,
            "ingest": {
                "rows": ingested_rows,
                "batches": ingest_batches,
                "busy_seconds": ingest_seconds,
                # sustained throughput over the server lifetime ...
                "rows_per_second": _rate(ingested_rows, uptime),
                # ... and while actually ingesting
                "rows_per_busy_second": _rate(ingested_rows, ingest_seconds),
                "rejected_oversized": rejected_oversized,
                "rejected_backpressure": rejected_backpressure,
            },
            "query_cache": planner.cache_stats(),
            # per-query-kind distribution of the estimated coefficient
            # of variation reported by confident queries
            "accuracy": {
                kind: accuracy[kind].to_dict() for kind in sorted(accuracy)
            },
            "engines": self._engine_block(store, pending),
            # getattr: duck-typed store stand-ins in tests predate .wal
            "wal": wal.stats() if (wal := getattr(store, "wal", None)) else None,
            # multiprocess shard-worker probes ([] without --workers)
            "workers": (
                probes() if (probes := getattr(store, "worker_probes", None))
                else []
            ),
        }

    def prometheus(self, store, planner, pending: dict, health=None) -> str:
        """The same state as :meth:`snapshot`, in Prometheus text
        exposition format (0.0.4).

        ``health`` is an optional :class:`repro.obs.HealthReport`; when
        given it is rendered as the ``repro_health_status`` gauge family
        (0 healthy, 1 degraded, 2 unhealthy) with the unlabelled sample
        carrying the overall verdict and one ``rule``-labelled sample
        per rule.
        """
        payload = self.snapshot(store, planner, pending)
        with self._lock:
            histograms = dict(self._route_histograms)
            accuracy = dict(self._accuracy_histograms)
        cache = payload["query_cache"]
        ingest = payload["ingest"]
        engines = payload["engines"]
        families = [
            prom.gauge(
                "repro_uptime_seconds",
                "Seconds since the server started.",
                [({}, payload["uptime_seconds"])],
            ),
            prom.counter(
                "repro_requests_total",
                "Requests received, by method and path.",
                [
                    ({"route": route}, count)
                    for route, count in sorted(payload["requests"].items())
                ],
            ),
            prom.counter(
                "repro_responses_total",
                "Responses sent, by status code.",
                [
                    ({"status": status}, count)
                    for status, count in sorted(payload["responses"].items())
                ],
            ),
            prom.histogram(
                "repro_request_duration_seconds",
                "Request wall time by route.",
                {route: histograms[route] for route in sorted(histograms)},
            ),
            prom.counter(
                "repro_slow_requests_total",
                "Requests logged beyond the slow-request threshold.",
                [({}, payload["slow_requests"])],
            ),
            prom.counter(
                "repro_ingest_rows_total",
                "Update rows ingested over HTTP.",
                [({}, ingest["rows"])],
            ),
            prom.counter(
                "repro_ingest_batches_total",
                "Ingest batches applied.",
                [({}, ingest["batches"])],
            ),
            prom.counter(
                "repro_ingest_busy_seconds_total",
                "Executor seconds spent applying ingest batches.",
                [({}, ingest["busy_seconds"])],
            ),
            prom.counter(
                "repro_ingest_rejected_total",
                "Ingest requests rejected, by reason.",
                [
                    ({"reason": "oversized"}, ingest["rejected_oversized"]),
                    (
                        {"reason": "backpressure"},
                        ingest["rejected_backpressure"],
                    ),
                ],
            ),
            prom.histogram(
                "repro_query_cv",
                "Estimated coefficient of variation of confident query "
                "results, by query kind.",
                {kind: accuracy[kind] for kind in sorted(accuracy)},
                label="kind",
            ),
            prom.counter(
                "repro_query_cache_requests_total",
                "Query-planner cache lookups, by outcome.",
                [
                    ({"outcome": "hit"}, cache["hits"]),
                    ({"outcome": "miss"}, cache["misses"]),
                ],
            ),
            prom.gauge(
                "repro_query_cache_entries",
                "Entries currently held by the query-result cache.",
                [({}, cache["entries"])],
            ),
            prom.gauge(
                "repro_engine_version",
                "Monotone ingest version, by engine.",
                [
                    ({"engine": name}, engines[name]["version"])
                    for name in sorted(engines)
                ],
            ),
            prom.counter(
                "repro_engine_updates_total",
                "Updates applied, by engine.",
                [
                    ({"engine": name}, engines[name]["n_updates"])
                    for name in sorted(engines)
                ],
            ),
            prom.gauge(
                "repro_engine_retained_keys",
                "Keys currently retained across shards, by engine.",
                [
                    ({"engine": name}, engines[name]["retained_keys"])
                    for name in sorted(engines)
                ],
            ),
            prom.gauge(
                "repro_engine_pending_batches",
                "In-flight ingest batches, by engine.",
                [
                    ({"engine": name}, engines[name]["pending_batches"])
                    for name in sorted(engines)
                ],
            ),
            prom.counter(
                "repro_engine_shard_updates_total",
                "Updates routed to each shard, by engine.",
                [
                    ({"engine": name, "shard": shard}, count)
                    for name in sorted(engines)
                    for shard, count in enumerate(
                        engines[name].get("shard_updates", ())
                    )
                ],
            ),
        ]
        workers = payload.get("workers") or []
        if workers:
            families.extend(
                [
                    prom.gauge(
                        "repro_worker_alive",
                        "Shard-worker liveness (1 alive, 0 dead), by slot.",
                        [
                            ({"worker": str(row["worker"])}, int(row["alive"]))
                            for row in workers
                        ],
                    ),
                    prom.gauge(
                        "repro_worker_queue_depth",
                        "Dispatched batches not yet acked, by worker slot.",
                        [
                            (
                                {"worker": str(row["worker"])},
                                row["queue_depth"],
                            )
                            for row in workers
                        ],
                    ),
                    prom.counter(
                        "repro_worker_batches_total",
                        "Batches applied, by worker slot.",
                        [
                            ({"worker": str(row["worker"])}, row["batches"])
                            for row in workers
                        ],
                    ),
                    prom.counter(
                        "repro_worker_restarts_total",
                        "Crash respawns, by worker slot.",
                        [
                            ({"worker": str(row["worker"])}, row["restarts"])
                            for row in workers
                        ],
                    ),
                ]
            )
        wal = getattr(store, "wal", None)
        if wal is not None:
            stats = payload["wal"]
            families.extend(
                [
                    prom.counter(
                        "repro_wal_appended_records_total",
                        "Records appended to the write-ahead log.",
                        [({}, stats["appended_records"])],
                    ),
                    prom.counter(
                        "repro_wal_appended_bytes_total",
                        "Bytes appended to the write-ahead log.",
                        [({}, stats["appended_bytes"])],
                    ),
                    prom.histogram(
                        "repro_wal_fsync_seconds",
                        "Wall time of write-ahead-log fsync calls.",
                        {stats["fsync_policy"]: wal.fsync_histogram},
                        label="policy",
                    ),
                    prom.gauge(
                        "repro_wal_replay_seconds",
                        "Wall time of the recovery replay that produced "
                        "this store (0 when the process did not recover).",
                        [({}, stats["replay_seconds"] or 0.0)],
                    ),
                    prom.gauge(
                        "repro_wal_last_lsn",
                        "Log sequence number of the newest WAL record.",
                        [({}, stats["last_lsn"])],
                    ),
                    prom.gauge(
                        "repro_wal_segments",
                        "Write-ahead-log segment files on disk.",
                        [({}, stats["segments"])],
                    ),
                    prom.gauge(
                        "repro_wal_checkpoint_lsn",
                        "Log sequence number covered by the last "
                        "checkpoint.",
                        [({}, stats["checkpoint_lsn"])],
                    ),
                    prom.gauge(
                        "repro_wal_checkpoint_age_seconds",
                        "Seconds since the write-ahead log last "
                        "checkpointed.",
                        [({}, stats["checkpoint_age_seconds"])],
                    ),
                ]
            )
        if health is not None:
            from repro.obs.health import STATUSES

            families.append(
                prom.gauge(
                    "repro_health_status",
                    "Health verdict (0 healthy, 1 degraded, "
                    "2 unhealthy); the unlabelled sample is the overall "
                    "verdict, rule-labelled samples break it down.",
                    [({}, health.severity)]
                    + [
                        ({"rule": name}, STATUSES.index(detail["status"]))
                        for name, detail in sorted(health.rules.items())
                    ],
                )
            )
        return prom.render(families)
