"""Asyncio client for the sketch server.

:class:`AsyncSketchClient` speaks the same minimal HTTP/1.1 as the
server over one persistent keep-alive connection (requests on a single
client serialize on an internal lock — run many clients for
concurrency, as the load generator in ``benchmarks/bench_server.py``
does).  The typed convenience methods mirror the endpoint surface and
raise :class:`ClientResponseError` on non-2xx responses; use
:meth:`request` directly to observe error statuses without exceptions.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import random
import socket
import warnings
from typing import TYPE_CHECKING
from urllib.parse import quote, urlencode, urlsplit

from repro.obs import current_request_id, new_request_id
from repro.server.wire import (
    BATCH_CONTENT_TYPE,
    REPLICA_MODE_WAL,
    encode_batches,
    decode_replica,
)

if TYPE_CHECKING:
    from repro.service.store import SketchStore

__all__ = ["AsyncSketchClient", "ClientResponseError"]


class ClientResponseError(Exception):
    """A non-2xx response from the sketch server."""

    def __init__(self, status: int, payload: object) -> None:
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(message or f"HTTP {status}")
        self.status = int(status)
        self.payload = payload


class AsyncSketchClient:
    """One keep-alive HTTP connection to a :class:`SketchServer`.

    The typed endpoint methods target the versioned ``/v1`` API surface.
    Construct from a ``base_url`` (the path component selects the API
    prefix; an empty path means ``/v1``) or from ``host=``/``port=``
    keywords.  Positional ``host``/``port`` still work but are
    deprecated.

    Examples
    --------
    ::

        async with AsyncSketchClient(base_url="http://127.0.0.1:8080") as client:
            await client.ingest("traffic", "monday", keys, values)
            result = await client.query(
                "traffic", "distinct", ["monday", "tuesday"])
    """

    def __init__(
        self,
        *args: object,
        host: str | None = None,
        port: int | object | None = None,
        base_url: str | None = None,
        retry_attempts: int = 4,
        retry_base: float = 0.05,
        retry_cap: float = 2.0,
    ) -> None:
        if args:
            warnings.warn(
                "positional host/port arguments to AsyncSketchClient are "
                "deprecated; pass host=/port= keywords or base_url=",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > 2:
                raise TypeError(
                    "AsyncSketchClient takes at most (host, port) "
                    f"positionally, got {len(args)} arguments"
                )
            if host is not None or (port is not None and len(args) == 2):
                raise TypeError(
                    "host/port passed both positionally and by keyword"
                )
            host = str(args[0])
            if len(args) == 2:
                port = args[1]
        if base_url is not None:
            if host is not None or port is not None:
                raise ValueError(
                    "pass either base_url or host/port, not both"
                )
            parsed = urlsplit(base_url)
            if parsed.scheme != "http" or not parsed.hostname:
                raise ValueError(
                    "base_url must look like 'http://host:port[/v1]', "
                    f"got {base_url!r}"
                )
            host = parsed.hostname
            port = parsed.port if parsed.port is not None else 80
            #: path prefix joined onto every typed endpoint; an empty
            #: base-url path means the current default, ``/v1``
            self.api_prefix = parsed.path.rstrip("/") or "/v1"
        else:
            if host is None or port is None:
                raise TypeError(
                    "AsyncSketchClient needs host= and port= (or base_url=)"
                )
            self.api_prefix = "/v1"
        self.host = str(host)
        self.port = int(port)  # type: ignore[call-overload]
        #: 503 (backpressure) retries before the error surfaces; 0
        #: restores the old fail-fast behaviour
        self.retry_attempts = int(retry_attempts)
        #: first-retry backoff in seconds; doubles per attempt up to
        #: ``retry_cap``, with equal jitter on top
        self.retry_base = float(retry_base)
        self.retry_cap = float(retry_cap)
        if self.retry_attempts < 0:
            raise ValueError(
                f"retry_attempts must be >= 0, got {retry_attempts}"
            )
        if self.retry_base <= 0 or self.retry_cap < self.retry_base:
            raise ValueError(
                "need 0 < retry_base <= retry_cap, got "
                f"{retry_base} / {retry_cap}"
            )
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()
        self._target_cache: dict[tuple, str] = {}
        #: the ``X-Request-Id`` the server attached to the most recent
        #: response — correlate client-side failures with server traces
        self.last_request_id: str | None = None
        #: parsed ``Retry-After`` seconds of the most recent response
        self.last_retry_after: float | None = None
        # injectable for deterministic tests
        self._sleep = asyncio.sleep
        self._random = random.random

    async def connect(self) -> "AsyncSketchClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
            sock = self._writer.get_extra_info("socket")
            if sock is not None:
                # single-write request/response round-trips: Nagle only
                # adds latency here
                with contextlib.suppress(OSError):
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return self

    async def close(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def __aenter__(self) -> "AsyncSketchClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    async def request(
        self,
        method: str,
        path: str,
        *,
        params: dict | None = None,
        json_body: object = None,
        body: bytes | None = None,
        content_type: str = "application/json",
        request_id: str | None = None,
    ) -> tuple[int, object]:
        """One round-trip; returns ``(status, decoded JSON payload)``.

        Every request carries an ``X-Request-Id`` header — ``request_id``
        when given, else the ambient :func:`repro.obs.current_request_id`
        (so a client used inside a traced context propagates its trace
        id), else a fresh id.  The id the server echoed back is kept in
        :attr:`last_request_id`.

        Idempotent requests (GET/HEAD) reconnect and retry once when the
        server closed the idle keep-alive connection between requests;
        non-idempotent requests surface the connection error instead,
        because the server may already have applied them.
        """
        if body is not None and json_body is not None:
            raise ValueError("pass either json_body or body, not both")
        if json_body is not None:
            body = json.dumps(json_body, separators=(",", ":")).encode()
        if request_id is None:
            request_id = current_request_id() or new_request_id()
        # clients hammer a handful of (path, params) shapes; memoising
        # the quoted target skips percent-encoding on the hot path
        cache_key = (path, tuple(params.items()) if params else None)
        target = self._target_cache.get(cache_key)
        if target is None:
            target = quote(path)
            if params:
                target += "?" + urlencode(params)
            if len(self._target_cache) < 1024:
                self._target_cache[cache_key] = target
        head = (
            f"{method} {target} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Connection: keep-alive\r\n"
            f"X-Request-Id: {request_id}\r\n"
        )
        if body is not None:
            head += (
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
            )
        payload = head.encode("latin-1") + b"\r\n" + (body or b"")
        # Only idempotent requests are retried after a connection error:
        # a POST may already have been applied by the time the connection
        # died, and resending it would e.g. double-ingest a batch.
        retriable = method.upper() in ("GET", "HEAD")
        async with self._lock:
            for attempt in (0, 1):
                await self.connect()
                assert self._reader is not None
                assert self._writer is not None
                try:
                    self._writer.write(payload)
                    await self._writer.drain()
                    return await self._read_response(self._reader)
                except (
                    ConnectionResetError,
                    BrokenPipeError,
                    asyncio.IncompleteReadError,
                ):
                    await self.close()
                    if attempt or not retriable:
                        raise
        raise RuntimeError("unreachable")  # pragma: no cover

    async def _read_response(self, reader: asyncio.StreamReader) -> tuple[int, object]:
        # one readuntil for the whole response head (status line +
        # headers): the per-line variant dominates client-side CPU under
        # pipelined load
        head = await reader.readuntil(b"\r\n\r\n")
        status_line, _, header_block = head.decode("latin-1").partition("\r\n")
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ConnectionResetError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        for text in header_block.splitlines():
            text = text.strip()
            if not text:
                break
            name, _, value = text.partition(":")
            key = name.strip().lower()
            value = value.strip()
            if key == "content-length" and headers.get(key, value) != value:
                # conflicting duplicates would silently frame the body by
                # whichever arrived last; treat the response as garbage
                raise ConnectionResetError(
                    "conflicting duplicate Content-Length headers "
                    f"({headers[key]!r} and {value!r})"
                )
            headers[key] = value
        try:
            length = int(headers.get("content-length", "0"))
            if length < 0:
                raise ValueError(f"negative Content-Length {length}")
        except ValueError as exc:
            # a malformed length means the framing of this (and every
            # following) response is unknowable — surface it as a
            # connection error so the idempotent-retry logic in
            # :meth:`request` applies
            raise ConnectionResetError(
                f"malformed Content-Length {headers.get('content-length')!r}"
            ) from exc
        self.last_request_id = headers.get("x-request-id")
        self.last_retry_after = None
        if "retry-after" in headers:
            with contextlib.suppress(ValueError):
                self.last_retry_after = max(0.0, float(headers["retry-after"]))
        raw = await reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        if not raw:
            return status, None
        content_type = (
            headers.get("content-type", "").partition(";")[0].strip().lower()
        )
        if content_type.startswith("application/x-repro-"):
            # binary bodies (batch / replica payloads) pass through raw
            return status, raw
        try:
            return status, json.loads(raw)
        except json.JSONDecodeError:
            return status, raw.decode("utf-8", "replace")

    async def _checked(self, *args, **kwargs) -> object:
        """:meth:`request`, raising on >= 400 — after riding out 503s.

        Backpressure 503s are retried with capped exponential backoff
        plus equal jitter (so a thundering herd of clients decorrelates),
        honouring the server's ``Retry-After`` hint as a floor.  Any
        other error status raises :class:`ClientResponseError`
        immediately; so does a 503 once ``retry_attempts`` is exhausted.
        """
        for attempt in range(self.retry_attempts + 1):
            status, payload = await self.request(*args, **kwargs)
            if status != 503 or attempt >= self.retry_attempts:
                if status >= 400:
                    raise ClientResponseError(status, payload)
                return payload
            backoff = min(self.retry_cap, self.retry_base * 2**attempt)
            delay = backoff / 2 + self._random() * (backoff / 2)
            hint = self.last_retry_after
            if hint is not None:
                delay = max(delay, min(hint, self.retry_cap))
            await self._sleep(delay)
        raise RuntimeError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Endpoint surface
    # ------------------------------------------------------------------
    def _path(self, suffix: str) -> str:
        """Join the API prefix (``/v1`` by default) onto an endpoint."""
        return self.api_prefix + suffix

    async def healthz(self, verbose: bool = False) -> dict:
        params = {"verbose": "1"} if verbose else None
        return await self._checked("GET", self._path("/healthz"), params=params)

    async def statusz(self) -> str:
        """The ``/statusz`` page as HTML text."""
        payload = await self._checked("GET", self._path("/statusz"))
        if isinstance(payload, (bytes, bytearray)):
            return bytes(payload).decode("utf-8", "replace")
        return str(payload)

    async def metrics(self) -> dict:
        return await self._checked("GET", self._path("/metrics"))

    async def metrics_history(
        self, metric: str, window: float | None = None
    ) -> dict:
        """The ring-buffered time series of one metric."""
        params = {"metric": metric}
        if window is not None:
            params["window"] = str(float(window))
        return await self._checked(
            "GET", self._path("/metrics/history"), params=params
        )

    async def create_engine(self, name: str, kind: str = "bottom_k", **config) -> dict:
        return await self._checked(
            "POST",
            self._path("/engines"),
            json_body={"name": name, "kind": kind, **config},
        )

    async def ingest(
        self, name: str, instance: object, keys: list, values: list
    ) -> dict:
        return await self._checked(
            "POST",
            self._path("/ingest"),
            json_body={
                "name": name,
                "instance": instance,
                "keys": list(keys),
                "values": [float(value) for value in values],
            },
        )

    async def ingest_rows(self, name: str, rows: list) -> dict:
        return await self._checked(
            "POST",
            self._path("/ingest"),
            json_body={
                "name": name,
                "rows": [
                    [instance, key, float(value)]
                    for instance, key, value in rows
                ],
            },
        )

    async def ingest_binary(
        self,
        name: str,
        batches: list,
    ) -> dict:
        """Ingest ``(instance, keys, values)`` batches as one binary body.

        ``batches`` is encoded with
        :func:`repro.server.wire.encode_batches` — key columns may be
        NumPy integer arrays, lists of ints/strings, or mixed labels;
        value columns anything array-like — and POSTed as a single
        pipelined ``application/x-repro-batch`` request, the fast path
        that skips JSON entirely on both sides.
        """
        return await self._checked(
            "POST",
            self._path("/ingest"),
            params={"name": name},
            body=encode_batches(batches),
            content_type=BATCH_CONTENT_TYPE,
        )

    async def query(
        self,
        name: str,
        kind: str,
        instances: list,
        variant: str = "l",
        int_instances: bool = False,
        confidence: bool = False,
    ) -> dict:
        params = {
            "name": name,
            "kind": kind,
            "instances": ",".join(str(label) for label in instances),
            "variant": variant,
        }
        if int_instances:
            params["int_instances"] = "1"
        if confidence:
            params["confidence"] = "1"
        return await self._checked("GET", self._path("/query"), params=params)

    async def snapshot(self, path: object = None) -> dict:
        json_body = {"path": str(path)} if path is not None else {}
        return await self._checked(
            "POST", self._path("/snapshot"), json_body=json_body
        )

    async def merge(self, path: object) -> dict:
        return await self._checked(
            "POST", self._path("/merge"), json_body={"path": str(path)}
        )

    # ------------------------------------------------------------------
    # Replication (follower side)
    # ------------------------------------------------------------------
    async def replicate(
        self, since: int = 0, follower: str | None = None
    ) -> tuple[int, int, bytes]:
        """Fetch the primary's changes past LSN ``since``.

        Returns ``(mode, last_lsn, payload)`` — ``mode`` is
        :data:`repro.server.wire.REPLICA_MODE_WAL` (``payload`` is a WAL
        tail for :func:`repro.wal.decode_tail`) or ``REPLICA_MODE_STORE``
        (``payload`` is a full store snapshot blob: the tail was
        checkpointed away).  ``last_lsn`` is the next ``since`` cursor.
        ``follower`` registers this replica under an id on the primary,
        which then watches its lag through the ``wal_follower_lag`` /
        ``wal_follower_idle`` health rules.
        """
        params = {"since": str(int(since))}
        if follower:
            params["follower"] = str(follower)
        payload = await self._checked(
            "GET", self._path("/replicate"), params=params
        )
        if not isinstance(payload, (bytes, bytearray)):
            raise ClientResponseError(502, payload)
        return decode_replica(bytes(payload))

    async def catch_up(
        self,
        store: "SketchStore",
        since: int = 0,
        *,
        on_full: str = "replace",
        follower: str | None = None,
    ) -> int:
        """One replication round: fetch past ``since``, apply to
        ``store``, return the new cursor.

        A WAL tail replays through the store's idempotent version checks
        (records the follower already has are skipped).  A full-store
        delta is applied per ``on_full``: ``"replace"`` (default) adopts
        the primary's engines wholesale — bit-exact for a pure follower —
        while ``"merge"`` folds them in through the
        ``StreamEngine.merge_from`` algebra, for followers holding their
        own *disjoint* data (merging overlapping streams double-counts).
        """
        if on_full not in ("replace", "merge"):
            raise ValueError(
                f"on_full must be 'replace' or 'merge', got {on_full!r}"
            )
        mode, last_lsn, payload = await self.replicate(since, follower=follower)
        if mode == REPLICA_MODE_WAL:
            from repro.wal import apply_records, decode_tail

            records = decode_tail(payload)
            if records:
                await asyncio.to_thread(apply_records, store, records)
        else:
            await asyncio.to_thread(_apply_full_delta, store, payload, on_full)
        return last_lsn

    async def follow(
        self,
        store: "SketchStore",
        *,
        since: int = 0,
        interval: float = 1.0,
        stop: asyncio.Event | None = None,
        max_rounds: int | None = None,
        on_full: str = "replace",
        follower: str | None = None,
    ) -> int:
        """Pull-replication loop: :meth:`catch_up` every ``interval``
        seconds until ``stop`` is set (or ``max_rounds`` rounds ran).
        Returns the final cursor, so a later ``follow(since=cursor)``
        resumes where this one left off.
        """
        cursor = int(since)
        rounds = 0
        while True:
            cursor = await self.catch_up(
                store, cursor, on_full=on_full, follower=follower
            )
            rounds += 1
            if max_rounds is not None and rounds >= max_rounds:
                return cursor
            if stop is not None and stop.is_set():
                return cursor
            if stop is None:
                await self._sleep(interval)
            else:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(stop.wait(), interval)


def _apply_full_delta(store: "SketchStore", payload: bytes, on_full: str) -> None:
    """Apply a full-store replica payload (executor-thread half)."""
    from repro.service import codec
    from repro.service.store import SketchStore

    entries = codec.store_from_bytes(payload)
    if on_full == "merge":
        peer = SketchStore()
        for name, version, engine in entries:
            peer.register(name, engine, version=version)
        store.merge_store(peer)
    else:
        for name, version, engine in entries:
            store.adopt(name, engine, version=version)
