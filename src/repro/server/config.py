"""Configuration surface of the HTTP sketch server.

One frozen dataclass carries every operational knob — bind address,
ingest concurrency, backpressure bounds, request-size limits, and the
graceful-shutdown snapshot path — so the programmatic API
(:class:`repro.server.SketchServer`), the CLI (``python -m repro.service
serve``), and tests all configure the server the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import InvalidParameterError

__all__ = ["ServerConfig"]


@dataclass(frozen=True)
class ServerConfig:
    """Operational knobs of a :class:`repro.server.SketchServer`.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` asks the OS for an ephemeral port
        (the bound port is reported by ``SketchServer.port``).
    ingest_threads:
        Size of the thread-pool executor that runs store ingests and
        queries, keeping shard-lock waits off the event loop.
    workers:
        Number of shard-worker *processes* the store fans ingest out to
        (``repro.cluster.ShardWorkerPool``).  ``0`` — the default —
        keeps the classic single-process threaded backend.  With
        ``workers=N`` each worker owns the shards ``s`` where ``s %
        N == worker``, applies its slice of every batch locally, and
        reads fold worker deltas back through the associative sketch
        merge.  WAL appends stay in the parent (append-before-dispatch)
        so durability semantics are unchanged.
    max_pending_batches:
        Per-engine bound on ingest batches that may be queued or running
        at once.  Requests beyond the bound are rejected with ``503`` and
        a ``Retry-After`` header — the backpressure signal.  A
        server-wide bound of ``max_pending_batches * ingest_threads``
        additionally engages *before* request parsing, keeping executor
        queue depth and parsed-row memory bounded even when the engine
        name is not known yet.
    max_body_bytes:
        Largest accepted request body; larger payloads get ``413``.
    max_batch_rows:
        Largest accepted number of update rows in one ingest request;
        larger batches get ``413`` (split the batch instead).
    parse_inline_bytes:
        Ingest bodies up to this size are parsed on the event loop;
        larger bodies are parsed on the executor so a big JSON/CSV/binary
        payload cannot stall concurrent requests.
    max_cache_entries:
        LRU bound of the shared query-result cache.
    snapshot_path:
        Where :meth:`~repro.server.SketchServer.shutdown` (and ``POST
        /snapshot`` without an explicit path) persists the store.
        ``None`` disables both.  Its directory doubles as the server's
        *data directory*: network-supplied ``/snapshot`` and ``/merge``
        paths are confined to it (and rejected with ``403`` when no
        snapshot path is configured).
    snapshot_on_shutdown:
        Snapshot engines that changed since the last snapshot when the
        server shuts down gracefully (requires ``snapshot_path``).
    slow_request_ms:
        Requests slower than this are logged through the structured
        slow-request log (and counted in ``/metrics``).  ``0`` disables
        the log.
    log_json:
        Route the ``repro`` loggers through one-JSON-object-per-line
        formatting with request-ID correlation
        (:func:`repro.obs.configure_json_logging`).
    trace_capacity:
        Size of the in-memory span ring buffer the serving layers
        record into.
    trace_jsonl_path:
        When set, every finished span is additionally appended to this
        JSONL file (offline trace analysis).
    wal_dir:
        When set, the server opens (or resumes) a
        :class:`repro.wal.WriteAheadLog` in this directory and attaches
        it to the store, so every acknowledged ingest batch is appended
        to the log before it is applied, ``GET /replicate`` serves the
        log tail to followers, and snapshots checkpoint the log.
        ``None`` (the default) disables the durability layer.
    wal_fsync:
        Fsync policy of the log: ``"always"`` (fsync per append),
        ``"interval"`` (flush per append, fsync at most every
        ``wal_fsync_interval`` seconds — the default), or ``"off"``.
    wal_fsync_interval:
        Seconds between fsyncs under the ``interval`` policy.
    wal_segment_bytes:
        Segment-rotation size cap of the log.
    series_interval:
        Seconds between samples of the in-process metrics time series
        (:class:`repro.obs.SeriesCollector`) that backs ``GET
        /metrics/history`` and the ``/statusz`` sparklines.  ``0``
        disables the background sampler.
    series_capacity:
        Ring-buffer capacity of each metric's time series (how many
        samples of history are retained).
    health_target_p99:
        Target p99 request latency, in seconds, that the
        ``route_p99_burn`` health rule compares the observed merged p99
        against (burn = observed / target).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    ingest_threads: int = 4
    workers: int = 0
    max_pending_batches: int = 32
    max_body_bytes: int = 8 * 1024 * 1024
    max_batch_rows: int = 100_000
    parse_inline_bytes: int = 64 * 1024
    max_cache_entries: int = 1024
    snapshot_path: str | Path | None = None
    snapshot_on_shutdown: bool = True
    slow_request_ms: float = 500.0
    log_json: bool = False
    trace_capacity: int = 2048
    trace_jsonl_path: str | Path | None = None
    wal_dir: str | Path | None = None
    wal_fsync: str = "interval"
    wal_fsync_interval: float = 0.05
    wal_segment_bytes: int = 64 * 1024 * 1024
    series_interval: float = 1.0
    series_capacity: int = 512
    health_target_p99: float = 1.0

    def __post_init__(self) -> None:
        if self.port < 0 or self.port > 65535:
            raise InvalidParameterError(f"port must be in [0, 65535], got {self.port}")
        for attribute in (
            "ingest_threads",
            "max_pending_batches",
            "max_body_bytes",
            "max_batch_rows",
            "parse_inline_bytes",
            "max_cache_entries",
            "trace_capacity",
        ):
            value = getattr(self, attribute)
            if int(value) <= 0:
                raise InvalidParameterError(
                    f"{attribute} must be positive, got {value}"
                )
        if int(self.workers) < 0:
            raise InvalidParameterError(
                "workers must be >= 0 (0 keeps the in-process backend), "
                f"got {self.workers}"
            )
        if self.slow_request_ms < 0:
            raise InvalidParameterError(
                "slow_request_ms must be >= 0 (0 disables the slow log), "
                f"got {self.slow_request_ms}"
            )
        # literal tuple rather than repro.wal.FSYNC_POLICIES: importing
        # repro.wal here would cycle through repro.server.wire
        if self.wal_fsync not in ("always", "interval", "off"):
            raise InvalidParameterError(
                "wal_fsync must be 'always', 'interval' or 'off', got "
                f"{self.wal_fsync!r}"
            )
        if self.wal_fsync_interval < 0:
            raise InvalidParameterError(
                "wal_fsync_interval must be >= 0, got "
                f"{self.wal_fsync_interval}"
            )
        if int(self.wal_segment_bytes) <= 0:
            raise InvalidParameterError(
                "wal_segment_bytes must be positive, got "
                f"{self.wal_segment_bytes}"
            )
        if self.series_interval < 0:
            raise InvalidParameterError(
                "series_interval must be >= 0 (0 disables the series "
                f"sampler), got {self.series_interval}"
            )
        if int(self.series_capacity) <= 0:
            raise InvalidParameterError(
                "series_capacity must be positive, got "
                f"{self.series_capacity}"
            )
        if self.health_target_p99 <= 0:
            raise InvalidParameterError(
                "health_target_p99 must be positive, got "
                f"{self.health_target_p99}"
            )
