"""The asyncio HTTP front-end of the sketch service.

:class:`SketchServer` turns a :class:`repro.service.SketchStore` into a
long-lived network service using nothing but the standard library: an
``asyncio`` accept loop speaking the minimal HTTP/1.1 of
:mod:`repro.server.protocol`, with every store operation — ingest,
query, snapshot, merge — pushed onto a thread-pool executor so the event
loop never blocks on shard locks or estimator math.

Endpoints
---------
The canonical surface lives under the versioned ``/v1`` prefix; every
bare legacy path (``/ingest``, ``/query``, ...) keeps serving the
byte-identical response but carries a ``Deprecation`` header plus a
``Link: <successor>; rel="successor-version"`` pointer.  The whole
table is generated from one route spec (:data:`ROUTE_SPEC`).

=======  ===============  =================================================
method   path             action
=======  ===============  =================================================
POST     /v1/engines      create a named engine (JSON config)
POST     /v1/ingest       ingest a JSON or CSV update batch (bounded
                          per-engine backpressure; oversized batches 413)
GET      /v1/query        distinct / sum / dominance / l1 through the
                          version-cached :class:`QueryPlanner`
POST     /v1/snapshot     persist the store through the binary codec
POST     /v1/merge        fold a peer snapshot file into the store
GET      /v1/replicate    WAL tail (or full store delta) since
                          ?since=<lsn> for follower catch-up (requires
                          ``wal_dir``); ``?follower=<id>`` opts into lag
                          tracking
GET      /v1/healthz      liveness + uptime; ``?verbose=1`` adds the
                          health rule engine's verdict with reasons
GET      /v1/statusz      human-readable status page (uptime, engines,
                          worker probes, sparklines, health reasons)
GET      /v1/metrics      throughput, cache hit rate, per-engine and
                          per-worker probes
GET      /v1/metrics/history  ring-buffered time series of one metric
                          (``?metric=<name>&window=<seconds>``)
=======  ===============  =================================================

Concurrency model
-----------------
The event loop parses requests and serializes responses; ingest and
query handlers ``await`` the executor.  Per-engine in-flight ingest
batches are bounded by ``ServerConfig.max_pending_batches`` — beyond the
bound the server answers ``503`` with ``Retry-After`` instead of letting
queues grow without bound.  Because the store's per-shard locking makes
concurrent ingest of pre-aggregated updates equal to serial ingest, any
interleaving of HTTP clients yields bit-identical sketches.

Graceful shutdown drains in-flight requests, closes idle keep-alive
connections, and — when ``snapshot_path`` is configured — writes a final
snapshot if any engine changed since the last one (the engines' cheap
``probe``/version counters are the dirty check).
"""

from __future__ import annotations

import asyncio
import contextlib
import contextvars
import csv
import html
import io
import logging
import math
import signal
import socket
import sys
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from pathlib import Path
from typing import NamedTuple

from repro.exceptions import (
    InvalidParameterError,
    ReproError,
    SketchCodecError,
    UnknownStoreError,
)
from repro import __version__
from repro.obs import (
    HealthMonitor,
    HealthRule,
    SeriesCollector,
    SlowRequestLog,
    configure_json_logging,
    default_recorder,
    new_request_id,
    prom,
    request_context,
    span,
)
from repro.server.config import ServerConfig
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    HttpError,
    Request,
    json_response_bytes,
    read_request,
    response_bytes,
)
from repro.server.routing import Router
from repro.server.wire import (
    BATCH_CONTENT_TYPE,
    REPLICA_CONTENT_TYPE,
    REPLICA_MODE_STORE,
    REPLICA_MODE_WAL,
    decode_batches,
    encode_replica,
)
from repro.service.queries import Query, query_value_json
from repro.service.store import IngestRequest, SketchStore

__all__ = ["ROUTE_SPEC", "RawResponse", "SketchServer"]

#: The one route spec the dispatch table is generated from: ``(method,
#: path, handler attribute)``.  :meth:`Router.from_spec` mounts each
#: entry under ``/v1`` and keeps the bare path as a deprecated alias.
ROUTE_SPEC: tuple[tuple[str, str, str], ...] = (
    ("GET", "/healthz", "_handle_healthz"),
    ("GET", "/statusz", "_handle_statusz"),
    ("GET", "/metrics", "_handle_metrics"),
    ("GET", "/metrics/history", "_handle_metrics_history"),
    ("POST", "/engines", "_handle_create_engine"),
    ("POST", "/ingest", "_handle_ingest"),
    ("GET", "/query", "_handle_query"),
    ("POST", "/snapshot", "_handle_snapshot"),
    ("POST", "/merge", "_handle_merge"),
    ("GET", "/replicate", "_handle_replicate"),
)

#: query kinds reachable over HTTP — ``custom`` needs a Python callable
#: and is therefore CLI/API-only
_HTTP_QUERY_KINDS = ("distinct", "sum", "dominance", "l1")

_TRUE_VALUES = ("1", "true", "yes")


#: incoming ``X-Request-Id`` values are adopted only when they look
#: like header-safe tokens of sane length; anything else gets a fresh ID
_MAX_REQUEST_ID_CHARS = 128


class RawResponse(NamedTuple):
    """A handler payload serialized verbatim instead of as JSON.

    Carries the body bytes and their ``Content-Type`` — the Prometheus
    exposition endpoint returns one of these.
    """

    body: bytes
    content_type: str


def _flag(params: dict[str, str], name: str) -> bool:
    return params.get(name, "").lower() in _TRUE_VALUES


_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _sparkline(values: list[float]) -> str:
    """A unicode sparkline of ``values`` for the ``/statusz`` page."""
    finite = [value for value in values if math.isfinite(value)]
    if not finite:
        return ""
    low, high = min(finite), max(finite)
    span_width = high - low
    chars = []
    for value in values:
        if not math.isfinite(value):
            chars.append(" ")
        elif span_width <= 0.0:
            chars.append(_SPARK_CHARS[0])
        else:
            index = int((value - low) / span_width * (len(_SPARK_CHARS) - 1))
            chars.append(_SPARK_CHARS[index])
    return "".join(chars)


def _adopt_request_id(raw: str | None) -> str:
    """The client's request ID when usable, else a fresh one.

    Propagating the caller's ID keeps one logical request correlated
    across hops (client -> server -> logs/traces); bounding and
    vetting it keeps log/trace fields single-line and printable.
    """
    if raw:
        candidate = raw.strip()
        if (
            candidate
            and len(candidate) <= _MAX_REQUEST_ID_CHARS
            and candidate.isprintable()
        ):
            return candidate
    return new_request_id()


def _set_nodelay(writer: asyncio.StreamWriter) -> None:
    """Disable Nagle on the connection.

    Request/response round-trips are single small writes in each
    direction; letting Nagle batch them against delayed ACKs costs
    milliseconds per request and caps a keep-alive connection at a few
    hundred requests/second.
    """
    sock = writer.get_extra_info("socket")
    if sock is not None:
        with contextlib.suppress(OSError):
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class SketchServer:
    """Asyncio HTTP server over one :class:`SketchStore`.

    Examples
    --------
    Programmatic use (tests, benchmarks, embedding)::

        server = SketchServer(store, ServerConfig(port=0))
        await server.start()          # server.port is now bound
        ...
        await server.shutdown()

    Blocking use (the ``python -m repro.service serve`` CLI)::

        SketchServer(store, config).run()   # returns after SIGINT/SIGTERM
    """

    def __init__(self, store: SketchStore, config: ServerConfig | None = None) -> None:
        if not isinstance(store, SketchStore):
            raise InvalidParameterError(
                f"expected a SketchStore, got {type(store).__name__}"
            )
        self.store = store
        self.config = config if config is not None else ServerConfig()
        self.planner = store.planner()
        self.planner.resize(self.config.max_cache_entries)
        self.metrics = ServerMetrics()
        if self.config.log_json:
            configure_json_logging()
        self.slow_log = SlowRequestLog(
            self.config.slow_request_ms,
            logger=logging.getLogger("repro.server"),
        )
        # the process-wide recorder: the service layers underneath span
        # into it too, so one ring holds a request's full story
        self.trace = default_recorder()
        self.trace.configure(
            capacity=self.config.trace_capacity,
            jsonl_path=self.config.trace_jsonl_path,
        )
        self.port: int | None = None
        self.router = Router.from_spec(
            (method, path, getattr(self, attribute))
            for method, path, attribute in ROUTE_SPEC
        )

        # durability: open (or resume) the write-ahead log and attach it
        # before serving, so the very first acknowledged ingest is
        # logged.  Imported lazily — repro.wal pulls in the wire module,
        # a module-level import here would cycle.
        self._owns_wal = False
        if self.config.wal_dir is not None and self.store.wal is None:
            from repro.wal import WriteAheadLog

            self.store.attach_wal(
                WriteAheadLog(
                    self.config.wal_dir,
                    fsync=self.config.wal_fsync,
                    fsync_interval=self.config.wal_fsync_interval,
                    segment_bytes=self.config.wal_segment_bytes,
                )
            )
            self._owns_wal = True

        # multiprocess ingest plane: fan shard groups out to worker
        # processes (repro.cluster).  Started after the WAL attach so a
        # worker killed later can be replayed from the log tail.
        self._owns_pool = False
        if self.config.workers > 0 and not self.store.has_workers:
            self.store.start_workers(self.config.workers)
            self._owns_pool = True

        self._executor = ThreadPoolExecutor(
            max_workers=self.config.ingest_threads,
            thread_name_prefix="sketch-server",
        )
        self._server: asyncio.AbstractServer | None = None
        self._closing = False
        self._shutdown_done = False
        #: engine name -> in-flight ingest batches (event-loop only)
        self._pending: dict[str, int] = {}
        #: server-wide ingest requests being parsed or applied
        self._ingest_requests = 0
        self._active_requests = 0
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        #: engine name -> (version, change_tick) at the last snapshot
        self._clean_marks: dict[str, tuple[int, int]] = {}
        self.last_shutdown_snapshot: Path | None = None

        # fleet-health observability: the metrics time series behind
        # /metrics/history and /statusz, the follower positions the WAL
        # lag rules read, and the health rule engine itself (built last
        # so its probes can close over everything above, including an
        # attached WAL)
        self.series = SeriesCollector(
            interval=self.config.series_interval or 1.0,
            capacity=self.config.series_capacity,
        )
        #: follower id -> {"position": lsn, "last_poll": monotonic}
        self._followers: dict[str, dict] = {}
        self.health = HealthMonitor(self._build_health_rules())
        self._series_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SketchServer":
        """Bind and start accepting connections."""
        if self._server is not None:
            raise InvalidParameterError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.series_interval > 0:
            self._series_task = asyncio.get_running_loop().create_task(
                self._series_ticker()
            )
        return self

    async def shutdown(self, drain_seconds: float = 10.0) -> None:
        """Stop accepting, drain in-flight requests, snapshot if dirty.

        Idempotent: the second call returns immediately.
        """
        if self._shutdown_done:
            return
        self._closing = True
        if self._series_task is not None:
            self._series_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._series_task
            self._series_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + drain_seconds
        while self._active_requests and loop.time() < deadline:
            await asyncio.sleep(0.02)
        # idle keep-alive connections sit in read_request(); closing the
        # transport unblocks them with a clean EOF
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=drain_seconds)
        self._executor.shutdown(wait=True)
        if self._owns_pool:
            # fold outstanding worker deltas into the parent before the
            # final snapshot looks at engine state
            self.store.stop_workers()
            self._owns_pool = False
        if (
            self.config.snapshot_on_shutdown
            and self.config.snapshot_path is not None
            and self._dirty_engines()
        ):
            path = Path(self.config.snapshot_path)
            _, marks = self.store.snapshot_marked(path)
            self._clean_marks = dict(marks)
            self.last_shutdown_snapshot = path
        if self._owns_wal and self.store.wal is not None:
            # after the final snapshot: a clean shutdown leaves a
            # checkpointed log, so the next boot replays (almost) nothing
            self.store.wal.close()
        if self.config.trace_jsonl_path is not None:
            # stop the live JSONL export this server attached to the
            # process-wide recorder (and close its file handle)
            self.trace.configure(jsonl_path="")
        self._shutdown_done = True

    async def serve_forever(self, on_ready=None) -> None:
        """Start (if needed), run until SIGINT/SIGTERM, shut down."""
        if self._server is None:
            await self.start()
        if on_ready is not None:
            on_ready(self)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for signal_number in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signal_number, stop.set)
                installed.append(signal_number)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await stop.wait()
        finally:
            for signal_number in installed:
                loop.remove_signal_handler(signal_number)
            await self.shutdown()

    def run(self, on_ready=None) -> None:
        """Blocking entry point: serve until SIGINT/SIGTERM."""
        asyncio.run(self.serve_forever(on_ready=on_ready))

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        _set_nodelay(writer)
        try:
            await self._connection_loop(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _connection_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            try:
                request = await read_request(reader, self.config.max_body_bytes)
            except HttpError as error:
                # framing is unreliable after a parse error: answer and
                # close rather than misinterpret the rest of the stream
                self.metrics.record_response(error.status)
                writer.write(
                    json_response_bytes(
                        error.status,
                        {"error": error.message},
                        keep_alive=False,
                        extra_headers=error.extra_headers
                        + (("X-Request-Id", new_request_id()),),
                    )
                )
                await writer.drain()
                return
            if request is None:
                return
            status, payload, extra_headers = await self._dispatch(request)
            keep_alive = request.keep_alive and not self._closing
            if isinstance(payload, RawResponse):
                response = response_bytes(
                    status,
                    payload.body,
                    content_type=payload.content_type,
                    keep_alive=keep_alive,
                    extra_headers=extra_headers,
                )
            else:
                response = json_response_bytes(
                    status,
                    payload,
                    keep_alive=keep_alive,
                    extra_headers=extra_headers,
                )
            writer.write(response)
            await writer.drain()
            if not keep_alive:
                return

    def _route_label(self, request: Request) -> str:
        """Bounded-cardinality route label for latency metrics: known
        paths keep their name, everything else collapses into one."""
        if self.router.known_path(request.path):
            return f"{request.method} {request.path}"
        return f"{request.method} (unmatched)"

    async def _dispatch(self, request: Request) -> tuple[int, object, tuple]:
        request_id = _adopt_request_id(request.headers.get("x-request-id"))
        route = self._route_label(request)
        self.metrics.record_request(request.method, request.path)
        self._active_requests += 1
        extra_headers: tuple = ()
        started = time.perf_counter()
        with request_context(request_id), span(
            "http.request", route=route
        ) as span_attrs:
            try:
                handler = self.router.resolve(request.method, request.path)
                status, payload = await handler(request)
            except HttpError as error:
                status, payload = error.status, {"error": error.message}
                extra_headers = error.extra_headers
            except UnknownStoreError as error:
                # KeyError subclass: str() would repr-quote the message
                status, payload = 404, {"error": error.args[0]}
            except FileNotFoundError as error:
                status, payload = 404, {"error": str(error)}
            except (ReproError, ValueError, TypeError, KeyError) as error:
                status, payload = 400, {"error": f"{error}"}
            except Exception as error:  # noqa: BLE001 - last-resort 500
                traceback.print_exc(file=sys.stderr)
                status, payload = 500, {"error": f"internal error: {error!r}"}
            finally:
                self._active_requests -= 1
            span_attrs["status"] = status
        elapsed = time.perf_counter() - started
        self.metrics.record_duration(route, elapsed)
        if self.slow_log.observe(route, elapsed, status=status, request_id=request_id):
            self.metrics.record_slow_request()
        self.metrics.record_response(status)
        canonical = self.router.deprecation(request.path)
        if canonical is not None:
            extra_headers += (
                ("Deprecation", "true"),
                ("Link", f'<{canonical}>; rel="successor-version"'),
            )
        return status, payload, extra_headers + (("X-Request-Id", request_id),)

    async def _in_executor(self, fn, *args, **kwargs):
        # copy_context() carries the request ID and open-span contextvars
        # onto the executor thread, so spans recorded there still
        # correlate with the request that caused them
        loop = asyncio.get_running_loop()
        context = contextvars.copy_context()
        return await loop.run_in_executor(
            self._executor, partial(context.run, partial(fn, *args, **kwargs))
        )

    # ------------------------------------------------------------------
    # Time series + health rules
    # ------------------------------------------------------------------
    async def _series_ticker(self) -> None:
        """Background sampler feeding the metrics time series.

        Runs on the event loop — one :meth:`ServerMetrics.series_sample`
        per interval is a handful of lock-protected reads, far cheaper
        than an executor hop.  A failing sample is logged and skipped;
        the ticker itself must survive anything short of cancellation.
        """
        logger = logging.getLogger("repro.server")
        while True:
            await asyncio.sleep(self.config.series_interval)
            try:
                self.series.collect(
                    self.metrics.series_sample(
                        self.store, self.planner, dict(self._pending)
                    )
                )
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - sampler must keep ticking
                logger.exception("metrics series sample failed")

    def _build_health_rules(self) -> tuple[HealthRule, ...]:
        """The serving stack's declarative health rules.

        Each probe returns a *badness* (higher is worse) or ``None``
        for "no data" — a freshly started server with no followers and
        no traffic is healthy, not unknown.  Thresholds are deliberately
        conservative defaults; the sketch-shape rules are informational
        (they describe estimate quality drift, which has no universal
        bad threshold).
        """
        return (
            HealthRule(
                "wal_follower_lag",
                self._probe_follower_lag,
                warn=64,
                fail=4096,
                hysteresis=2,
                description=(
                    "records the furthest-behind registered follower "
                    "still has to replay (LSNs)"
                ),
            ),
            HealthRule(
                "wal_follower_idle",
                self._probe_follower_idle,
                warn=30.0,
                fail=300.0,
                hysteresis=2,
                description=(
                    "seconds since the quietest registered follower "
                    "last polled /replicate"
                ),
            ),
            HealthRule(
                "wal_checkpoint_age",
                self._probe_checkpoint_age,
                warn=600.0,
                fail=3600.0,
                description=(
                    "seconds of un-checkpointed WAL history a crash "
                    "would replay (0 while fully checkpointed)"
                ),
            ),
            HealthRule(
                "wal_fsync_p99",
                self._probe_fsync_p99,
                warn=0.1,
                fail=1.0,
                description="p99 of WAL fsync wall time (seconds)",
            ),
            HealthRule(
                "backpressure_503",
                self._probe_backpressure,
                warn=0.05,
                fail=0.25,
                description=(
                    "fraction of responses rejected with 503 "
                    "backpressure"
                ),
            ),
            HealthRule(
                "route_p99_burn",
                self._probe_p99_burn,
                warn=1.0,
                fail=4.0,
                description=(
                    "merged request p99 as a multiple of the "
                    "configured health_target_p99"
                ),
            ),
            HealthRule(
                "cache_miss_rate",
                self._probe_cache_miss_rate,
                warn=0.95,
                description="fraction of query-cache lookups that miss",
            ),
            HealthRule(
                "sketch_fill_ratio",
                self._probe_sketch_fill,
                description=(
                    "lowest bottom-k fill ratio (retained keys / k per "
                    "shard) across engines; informational"
                ),
            ),
            HealthRule(
                "sketch_threshold_drift",
                self._probe_threshold_drift,
                description=(
                    "worst relative spread of per-shard rank "
                    "thresholds within one instance; informational"
                ),
            ),
            HealthRule(
                "sketch_discard_ratio",
                self._probe_discard_ratio,
                description=(
                    "discarded keys as a fraction of updates across "
                    "engines; informational"
                ),
            ),
        )

    # -- probes (each returns badness or None for "no data") -----------
    def _probe_follower_lag(self) -> float | None:
        wal = self.store.wal
        if wal is None or not self._followers:
            return None
        last = wal.last_lsn
        return float(
            max(
                max(0, last - entry["position"])
                for entry in self._followers.values()
            )
        )

    def _probe_follower_idle(self) -> float | None:
        if not self._followers:
            return None
        now = time.monotonic()
        return max(
            now - entry["last_poll"] for entry in self._followers.values()
        )

    def _probe_checkpoint_age(self) -> float | None:
        wal = self.store.wal
        if wal is None:
            return None
        if wal.last_lsn <= wal.checkpoint_lsn:
            # nothing to replay: an idle, fully-checkpointed log does
            # not get older
            return 0.0
        return wal.checkpoint_age_seconds

    def _probe_fsync_p99(self) -> float | None:
        wal = self.store.wal
        if wal is None:
            return None
        p99 = wal.fsync_histogram.quantile(0.99)
        return p99 if math.isfinite(p99) else None

    def _probe_backpressure(self) -> float | None:
        responses, rejected = self.metrics.response_counts()
        if responses < 100:
            return None
        return rejected / responses

    def _probe_p99_burn(self) -> float | None:
        merged = self.metrics.merged_histogram()
        if merged.count < 100:
            return None
        return merged.quantile(0.99) / self.config.health_target_p99

    def _probe_cache_miss_rate(self) -> float | None:
        stats = self.planner.cache_stats()
        if stats["hits"] + stats["misses"] < 100:
            return None
        return 1.0 - stats["hit_rate"]

    def _bottom_k_probes(self):
        """Yield ``(engine name, probe dict, k)`` for bottom-k engines."""
        for name in self.store.names():
            try:
                engine = self.store.engine(name)
                config = engine.sketch_config or {}
                if config.get("kind") != "bottom_k":
                    continue
                yield name, engine.probe(), int(config["k"])
            except (UnknownStoreError, KeyError):
                continue

    def _probe_sketch_fill(self) -> float | None:
        fills = []
        for _, probe, k in self._bottom_k_probes():
            capacity = k * probe["n_shards"] * max(1, probe["n_instances"])
            if capacity > 0 and probe["n_updates"] > 0:
                fills.append(min(1.0, probe["retained_keys"] / capacity))
        return min(fills) if fills else None

    def _probe_threshold_drift(self) -> float | None:
        drifts = []
        for name in self.store.names():
            try:
                engine = self.store.engine(name)
                labels = engine.instance_labels
            except (UnknownStoreError, AttributeError):
                continue
            for label in labels:
                try:
                    thresholds = [
                        sketch.threshold
                        for sketch in engine.shard_sketches(label)
                    ]
                except (InvalidParameterError, AttributeError):
                    continue
                finite = [
                    threshold
                    for threshold in thresholds
                    if math.isfinite(threshold) and threshold > 0
                ]
                if len(finite) == len(thresholds) and len(finite) > 1:
                    drifts.append((max(finite) - min(finite)) / min(finite))
        return max(drifts) if drifts else None

    def _probe_discard_ratio(self) -> float | None:
        discarded = 0
        updates = 0
        for name in self.store.names():
            try:
                engine = self.store.engine(name)
                probe = engine.probe()
                labels = engine.instance_labels
            except (UnknownStoreError, AttributeError):
                continue
            updates += int(probe.get("n_updates", 0))
            for label in labels:
                try:
                    sketches = engine.shard_sketches(label)
                except (InvalidParameterError, AttributeError):
                    continue
                discarded += sum(
                    int(getattr(sketch, "n_discarded_keys", 0))
                    for sketch in sketches
                )
        if updates == 0:
            return None
        return discarded / updates

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _handle_healthz(self, request: Request) -> tuple[int, dict]:
        payload = {
            "status": "closing" if self._closing else "ok",
            "uptime_seconds": self.metrics.uptime_seconds(),
            "engines": len(self.store.names()),
        }
        if _flag(request.params, "verbose"):
            report = await self._in_executor(self.health.evaluate)
            payload["health"] = report.to_json()
        return 200, payload

    async def _handle_metrics(self, request: Request) -> tuple[int, object]:
        fmt = request.params.get("format", "json")
        if fmt == "prometheus":
            pending = dict(self._pending)
            text = await self._in_executor(self._render_prometheus, pending)
            return 200, RawResponse(text.encode("utf-8"), prom.CONTENT_TYPE)
        if fmt != "json":
            raise HttpError(
                400,
                f"unknown metrics format {fmt!r}; use 'json' or 'prometheus'",
            )
        payload = await self._in_executor(
            self.metrics.snapshot,
            self.store,
            self.planner,
            dict(self._pending),
        )
        return 200, payload

    def _render_prometheus(self, pending: dict) -> str:
        # evaluated on the executor: one scrape carries the health
        # verdict too, so an external TSDB alerts on the same rules
        # /healthz reports
        return self.metrics.prometheus(
            self.store,
            self.planner,
            pending,
            health=self.health.evaluate(),
        )

    async def _handle_metrics_history(
        self, request: Request
    ) -> tuple[int, dict]:
        metric = request.params.get("metric")
        if not metric:
            raise HttpError(
                400,
                "metrics history requires ?metric=<name>; known metrics: "
                f"{self.series.names()}",
            )
        raw_window = request.params.get("window")
        window = None
        if raw_window is not None:
            try:
                window = float(raw_window)
            except ValueError:
                raise HttpError(
                    400,
                    f"?window must be a number of seconds, got "
                    f"{raw_window!r}",
                ) from None
            if window < 0:
                raise HttpError(400, f"?window must be >= 0, got {window}")
        # unknown metrics raise InvalidParameterError -> 400 (with the
        # known-name list in the message) via the dispatch error mapping
        return 200, self.series.history(metric, window=window)

    async def _handle_statusz(self, request: Request) -> tuple[int, object]:
        page = await self._in_executor(self._statusz_html)
        return 200, RawResponse(
            page.encode("utf-8"), "text/html; charset=utf-8"
        )

    def _statusz_html(self) -> str:
        """The human-readable ``/statusz`` page.

        Deliberately dependency-free HTML: uptime and version, the
        health verdict with its active reasons, per-engine probes, and
        unicode sparklines of the recent metric series — the
        at-a-glance page an operator opens before reaching for the
        Prometheus console.
        """
        report = self.health.evaluate()
        uptime = self.metrics.uptime_seconds()
        lines = [
            "<!DOCTYPE html>",
            "<html><head><title>repro statusz</title>",
            "<style>body{font-family:monospace;margin:2em;}"
            "table{border-collapse:collapse;}"
            "td,th{padding:2px 12px;text-align:left;}"
            ".healthy{color:#0a0;}.degraded{color:#c80;}"
            ".unhealthy{color:#c00;}</style></head><body>",
            "<h1>repro sketch server</h1>",
            "<p>version {} &middot; uptime {:.1f}s &middot; "
            "{} engines &middot; health <b class={!r}>{}</b></p>".format(
                html.escape(__version__),
                uptime,
                len(self.store.names()),
                report.status,
                report.status,
            ),
        ]
        if report.reasons:
            lines.append("<h2>active reasons</h2><ul>")
            for reason in report.reasons:
                lines.append(
                    "<li><b class={!r}>{}</b> {}: value={} warn={} "
                    "fail={}</li>".format(
                        reason["status"],
                        reason["status"],
                        html.escape(str(reason["rule"])),
                        html.escape(str(reason.get("value"))),
                        html.escape(str(reason.get("warn"))),
                        html.escape(str(reason.get("fail"))),
                    )
                )
            lines.append("</ul>")
        lines.append("<h2>health rules</h2><table>")
        lines.append(
            "<tr><th>rule</th><th>status</th><th>value</th>"
            "<th>warn</th><th>fail</th></tr>"
        )
        for name, detail in sorted(report.rules.items()):
            value = detail.get("value")
            lines.append(
                "<tr><td>{}</td><td class={!r}>{}</td><td>{}</td>"
                "<td>{}</td><td>{}</td></tr>".format(
                    html.escape(name),
                    detail["status"],
                    detail["status"],
                    "-" if value is None else f"{value:.6g}",
                    html.escape(str(detail.get("warn"))),
                    html.escape(str(detail.get("fail"))),
                )
            )
        lines.append("</table>")
        lines.append("<h2>recent series</h2><table>")
        lines.append(
            "<tr><th>metric</th><th>last</th><th>recent</th></tr>"
        )
        for name in self.series.names():
            series = self.series.series(name)
            points = series.points()
            if not points:
                continue
            values = [point.value for point in points[-60:]]
            lines.append(
                "<tr><td>{}</td><td>{:.6g}</td><td>{}</td></tr>".format(
                    html.escape(name),
                    values[-1],
                    html.escape(_sparkline(values)),
                )
            )
        lines.append("</table>")
        lines.append("<h2>engines</h2><table>")
        lines.append(
            "<tr><th>engine</th><th>version</th><th>updates</th>"
            "<th>retained keys</th></tr>"
        )
        for name in sorted(self.store.names()):
            try:
                probe = self.store.engine(name).probe()
                version = self.store.version_hint(name)
            except UnknownStoreError:
                continue
            lines.append(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td>"
                "</tr>".format(
                    html.escape(str(name)),
                    version,
                    probe.get("n_updates", 0),
                    probe.get("retained_keys", 0),
                )
            )
        lines.append("</table>")
        worker_probes = self.store.worker_probes()
        if worker_probes:
            lines.append("<h2>shard workers</h2><table>")
            lines.append(
                "<tr><th>worker</th><th>pid</th><th>alive</th>"
                "<th>transport</th><th>queue depth</th><th>batches</th>"
                "<th>restarts</th></tr>"
            )
            for probe in worker_probes:
                lines.append(
                    "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td>"
                    "<td>{}</td><td>{}</td><td>{}</td></tr>".format(
                        probe.get("worker"),
                        probe.get("pid"),
                        probe.get("alive"),
                        html.escape(str(probe.get("transport"))),
                        probe.get("queue_depth"),
                        probe.get("batches"),
                        probe.get("restarts"),
                    )
                )
            lines.append("</table>")
        lines.append("</body></html>")
        return "\n".join(lines)

    async def _handle_create_engine(self, request: Request) -> tuple[int, dict]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "engine config must be a JSON object")
        # deliberately NOT marked clean afterwards: a freshly created
        # engine has never been snapshotted, so shutdown must persist it
        self.store.create_from_config(payload)
        return 201, {
            "name": payload["name"],
            "kind": payload.get("kind", "bottom_k"),
            "created": True,
        }

    async def _handle_ingest(self, request: Request) -> tuple[int, dict]:
        # The per-engine bound needs the parsed engine name, so a
        # server-wide cap engages first — before any parse work or
        # parsed rows can queue on the executor without bound.
        server_bound = self.config.max_pending_batches * self.config.ingest_threads
        if self._ingest_requests >= server_bound:
            raise HttpError(
                503,
                f"{self._ingest_requests} ingest requests in flight "
                f"(server bound {server_bound}); retry later",
                extra_headers=(("Retry-After", "1"),),
            )
        self._ingest_requests += 1
        try:
            return await self._ingest_bounded(request)
        finally:
            self._ingest_requests -= 1

    async def _ingest_bounded(self, request: Request) -> tuple[int, dict]:
        # small payloads parse faster than an executor hop costs; large
        # ones would stall every other connection, so they hop
        if len(request.body) > self.config.parse_inline_bytes:
            name, plan, n_rows, n_batches = await self._in_executor(
                self._parse_ingest, request
            )
        else:
            name, plan, n_rows, n_batches = self._parse_ingest(request)
        if name not in self.store:
            raise UnknownStoreError(
                f"unknown store {name!r}; create it first via POST /engines"
            )
        if n_rows > self.config.max_batch_rows:
            raise HttpError(
                413,
                f"batch of {n_rows} rows exceeds the "
                f"{self.config.max_batch_rows}-row limit; split the batch",
            )
        pending = self._pending.get(name, 0)
        if pending >= self.config.max_pending_batches:
            raise HttpError(
                503,
                f"engine {name!r} has {pending} ingest batches in flight "
                f"(bound {self.config.max_pending_batches}); retry later",
                extra_headers=(("Retry-After", "1"),),
            )
        self._pending[name] = pending + 1
        started = time.perf_counter()
        try:
            version = await self._in_executor(self._apply_ingest, name, plan)
        finally:
            remaining = self._pending.get(name, 1) - 1
            if remaining > 0:
                self._pending[name] = remaining
            else:
                self._pending.pop(name, None)
        self.metrics.record_ingest(n_rows, time.perf_counter() - started)
        return 200, {
            "name": name,
            "rows": n_rows,
            "batches": n_batches,
            "version": version,
        }

    def _apply_ingest(self, name: str, plan: tuple) -> int:
        """Run a parsed ingest plan through the store; returns the new
        version.  Every shape builds one :class:`IngestRequest` for
        :meth:`SketchStore.submit` — binary and row plans coalesce
        batches of the same instance, single-column plans ingest as-is.
        """
        if plan[0] == "columns":
            _, instance, keys, values = plan
            request = IngestRequest(
                engine=name,
                batches=((instance, keys, values),),
                source="http",
                coalesce=False,
            )
        elif plan[0] == "batches":
            request = IngestRequest(
                engine=name, batches=tuple(plan[1]), source="http"
            )
        else:
            request = IngestRequest(
                engine=name,
                batches=tuple(
                    (instance, [key], [float(value)])
                    for instance, key, value in plan[1]
                ),
                source="http",
            )
        return self.store.submit(request)

    def _parse_ingest(self, request: Request) -> tuple[str, tuple, int, int]:
        """Normalise an ingest request to a store-ready plan.

        Returns ``(name, plan, n_rows, n_batches)`` where ``plan`` is
        ``("columns", instance, keys, values)`` (one per-instance batch),
        ``("rows", triples)`` (mixed instances, grouped by
        :meth:`SketchStore.ingest_rows`), or ``("batches", wire_batches)``
        (decoded binary columns for
        :meth:`SketchStore.ingest_batches`).  Accepted shapes:

        * JSON ``{"name", "instance", "keys": [...], "values": [...]}``;
        * JSON ``{"name", "rows": [[instance, key, value], ...]}``;
        * CSV body (``?format=csv`` or ``Content-Type: text/csv``) of
          ``instance,key,value`` lines with ``?name=`` in the query
          string (``?int_keys=1`` parses keys as integers);
        * binary columnar batches (``?format=binary`` or ``Content-Type:
          application/x-repro-batch``, see :mod:`repro.server.wire`)
          with ``?name=`` in the query string.
        """
        content_type = (
            request.headers.get("content-type", "").split(";")[0].strip().lower()
        )
        if content_type == "text/csv":
            default_fmt = "csv"
        elif content_type == BATCH_CONTENT_TYPE:
            default_fmt = "binary"
        else:
            default_fmt = "json"
        fmt = request.params.get("format", default_fmt)
        if fmt == "binary":
            with span("ingest.decode", fmt="binary", bytes=len(request.body)):
                return self._parse_ingest_binary(request)
        if fmt == "csv":
            with span("ingest.decode", fmt="csv", bytes=len(request.body)):
                return self._parse_ingest_csv(request)
        if fmt != "json":
            raise HttpError(
                400,
                f"unknown ingest format {fmt!r}; use 'json', 'csv' "
                "or 'binary'",
            )
        with span("ingest.decode", fmt="json", bytes=len(request.body)):
            return self._parse_ingest_json(request)

    def _parse_ingest_binary(
        self, request: Request
    ) -> tuple[str, tuple, int, int]:
        name = request.params.get("name")
        if not name:
            raise HttpError(400, "binary ingest requires ?name=<engine>")
        try:
            batches = decode_batches(request.body)
        except SketchCodecError as exc:
            raise HttpError(400, f"malformed batch payload: {exc}") from exc
        n_rows = sum(len(batch.values) for batch in batches)
        return name, ("batches", batches), n_rows, len(batches)

    def _parse_ingest_json(self, request: Request) -> tuple[str, tuple, int, int]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "ingest body must be a JSON object")
        name = payload.get("name", request.params.get("name"))
        if not isinstance(name, str) or not name:
            raise HttpError(400, "ingest requires a string 'name'")
        if "rows" in payload:
            rows = payload["rows"]
            if not isinstance(rows, list):
                raise HttpError(400, "'rows' must be a list of triples")
            parsed = []
            for position, row in enumerate(rows):
                if not isinstance(row, (list, tuple)) or len(row) != 3:
                    raise HttpError(
                        400,
                        f"rows[{position}] is not an "
                        "[instance, key, value] triple",
                    )
                instance, key, value = row
                parsed.append((instance, key, self._number(value)))
            n_batches = len({instance for instance, _, _ in parsed})
            return name, ("rows", parsed), len(parsed), n_batches
        if "keys" in payload:
            if "instance" not in payload:
                raise HttpError(400, "column-style ingest requires an 'instance'")
            keys = payload["keys"]
            values = payload.get("values")
            if not isinstance(keys, list) or not isinstance(values, list):
                raise HttpError(400, "'keys' and 'values' must be JSON arrays")
            if len(keys) != len(values):
                raise HttpError(
                    400,
                    f"'keys' ({len(keys)}) and 'values' ({len(values)}) "
                    "must have matching length",
                )
            values = [self._number(value) for value in values]
            plan = ("columns", payload["instance"], keys, values)
            return name, plan, len(keys), 1
        raise HttpError(400, "ingest body needs either 'rows' or 'instance'+'keys'")

    def _parse_ingest_csv(self, request: Request) -> tuple[str, tuple, int, int]:
        name = request.params.get("name")
        if not name:
            raise HttpError(400, "CSV ingest requires ?name=<engine>")
        int_keys = _flag(request.params, "int_keys")
        parsed = []
        reader = csv.reader(io.StringIO(request.text()))
        # line_number counts non-empty rows, so error positions stay
        # meaningful in bodies with blank lines; the optional header is
        # skipped wherever the first non-empty row lands (a leading
        # blank line must not demote the header to data)
        line_number = 0
        for row in reader:
            if not row:
                continue
            line_number += 1
            if line_number == 1 and row == ["instance", "key", "value"]:
                continue  # optional header
            if len(row) != 3:
                raise HttpError(
                    400,
                    f"CSV line {line_number}: expected instance,key,value;"
                    f" got {len(row)} columns",
                )
            try:
                key: object = int(row[1]) if int_keys else row[1]
                value = float(row[2])
            except ValueError as exc:
                raise HttpError(
                    400, f"CSV line {line_number}: bad update row: {exc}"
                ) from exc
            if not math.isfinite(value):
                raise HttpError(
                    400,
                    f"CSV line {line_number}: update values must be "
                    f"finite, got {row[2]!r}",
                )
            parsed.append((row[0], key, value))
        n_batches = len({instance for instance, _, _ in parsed})
        return name, ("rows", parsed), len(parsed), n_batches

    @staticmethod
    def _number(value: object) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise HttpError(400, f"update values must be numbers, got {value!r}")
        # the protocol layer already rejects NaN/Infinity *literals*, but
        # JSON numbers like 1e999 overflow float parsing to inf
        if not math.isfinite(value):
            raise HttpError(
                400, f"update values must be finite, got {value!r}"
            )
        return float(value)

    async def _handle_query(self, request: Request) -> tuple[int, dict]:
        params = request.params
        name = params.get("name")
        if not name:
            raise HttpError(400, "query requires ?name=<engine>")
        kind = params.get("kind")
        if kind not in _HTTP_QUERY_KINDS:
            raise HttpError(
                400,
                f"query kind must be one of {_HTTP_QUERY_KINDS}, "
                f"got {kind!r}",
            )
        raw_instances = params.get("instances", "")
        labels = [label for label in raw_instances.split(",") if label]
        if not labels:
            raise HttpError(
                400,
                "query requires ?instances=<label>[,<label>...]",
            )
        instances: list[object] = (
            [int(label) for label in labels]
            if _flag(params, "int_instances")
            else list(labels)
        )
        query = Query(
            kind,
            tuple(instances),
            variant=params.get("variant", "l"),
            confidence=_flag(params, "confidence"),
        )
        # cache probes are cheap enough for the event loop; only pay the
        # executor hop when the result actually needs recomputing
        result = self.planner.peek(name, query)
        if result is None:
            result = await self._in_executor(self.planner.run, name, query)
        payload = {
            "name": name,
            "kind": kind,
            "instances": labels,
            "version": result.version,
            "from_cache": result.from_cache,
            "value": query_value_json(result.value),
        }
        if result.confidence is not None:
            payload["confidence"] = result.confidence
            cv = result.confidence.get("cv")
            # fresh computations only: a cache hit re-serving the same
            # estimate must not re-weight the accuracy distribution
            if cv is not None and not result.from_cache:
                self.metrics.record_accuracy(kind, cv)
        return 200, payload

    def _resolve_data_path(self, raw: object) -> Path:
        """Confine a network-supplied snapshot/merge path.

        Network clients may only read and write inside the server's data
        directory — the directory of the configured snapshot file.
        Relative paths resolve against it; absolute paths must stay
        inside it.  Without a configured ``snapshot_path`` there is no
        data directory and caller-supplied paths are rejected, so an
        exposed server never hands out an arbitrary file-write/read
        primitive.
        """
        if self.config.snapshot_path is None:
            raise HttpError(
                403,
                "network-supplied paths are disabled: the server has no "
                "data directory (snapshot_path is not configured)",
            )
        base = Path(self.config.snapshot_path).resolve().parent
        candidate = Path(str(raw))
        if not candidate.is_absolute():
            candidate = base / candidate
        resolved = candidate.resolve()
        if not resolved.is_relative_to(base):
            raise HttpError(
                403,
                f"path {str(raw)!r} is outside the server data "
                f"directory {str(base)!r}",
            )
        return resolved

    async def _handle_snapshot(self, request: Request) -> tuple[int, dict]:
        explicit = None
        if request.body:
            payload = request.json()
            if not isinstance(payload, dict):
                raise HttpError(400, "snapshot body must be a JSON object")
            explicit = payload.get("path")
        if explicit is not None:
            target = self._resolve_data_path(explicit)
        elif self.config.snapshot_path is not None:
            target = Path(self.config.snapshot_path)
        else:
            raise HttpError(
                400,
                'no snapshot path: pass {"path": ...} or configure snapshot_path',
            )
        # Only a snapshot of the configured store file makes the engines
        # "clean" — a backup elsewhere must not suppress the shutdown
        # snapshot that keeps --store current.  The marks were captured
        # inside each engine's quiescent read, so an ingest that landed
        # while a later engine was being serialized still reads dirty.
        # The same primary/backup distinction gates WAL checkpointing:
        # an ad-hoc backup copy must not truncate the recovery log.
        is_primary = (
            self.config.snapshot_path is not None
            and target.resolve() == Path(self.config.snapshot_path).resolve()
        )
        written, marks = await self._in_executor(
            self.store.snapshot_marked, target, checkpoint_wal=is_primary
        )
        if is_primary:
            self._clean_marks = dict(marks)
        return 200, {
            "path": str(written),
            "bytes": written.stat().st_size,
            "engines": self.store.names(),
        }

    async def _handle_replicate(self, request: Request) -> tuple[int, object]:
        if self.store.wal is None:
            raise HttpError(
                400,
                "replication requires a write-ahead log; start the "
                "server with wal_dir / --wal-dir",
            )
        raw_since = request.params.get("since", "0")
        try:
            since = int(raw_since)
        except ValueError:
            raise HttpError(
                400, f"?since must be an integer LSN, got {raw_since!r}"
            ) from None
        if since < 0:
            raise HttpError(400, f"?since must be >= 0, got {since}")
        follower = request.params.get("follower")
        if follower:
            # register at the *requested* position first — a crash
            # mid-build must not leave the follower looking current
            self._followers[follower] = {
                "position": since,
                "last_poll": time.monotonic(),
            }
        body, last_lsn = await self._in_executor(self._build_replica, since)
        if follower:
            entry = self._followers.get(follower)
            if entry is not None:
                # optimistic: the shipped cursor is what the follower
                # will replay to; its next poll re-asserts the truth
                entry["position"] = max(entry["position"], last_lsn)
                entry["last_poll"] = time.monotonic()
        return 200, RawResponse(body, REPLICA_CONTENT_TYPE)

    def _build_replica(self, since: int) -> tuple[bytes, int]:
        """One ``/replicate`` body plus its shipped cursor: WAL tail, or
        full store delta when the requested tail was checkpointed away.
        Runs on the executor (segment reads + possible full-store
        serialization)."""
        wal = self.store.wal
        tail = wal.tail_since(since)
        if tail is not None:
            blob, last_lsn = tail
            return encode_replica(REPLICA_MODE_WAL, last_lsn, blob), last_lsn
        # Capture the cursor BEFORE serializing: a batch ingested during
        # serialization may or may not be in the blob, and a too-small
        # cursor only makes the follower re-fetch records its version
        # checks then skip — a too-large one would silently lose data.
        last_lsn = wal.last_lsn
        body = encode_replica(
            REPLICA_MODE_STORE, last_lsn, self.store.to_bytes()
        )
        return body, last_lsn

    async def _handle_merge(self, request: Request) -> tuple[int, dict]:
        payload = request.json()
        if not isinstance(payload, dict) or "path" not in payload:
            raise HttpError(400, 'merge requires a JSON body {"path": <snapshot>}')
        path = self._resolve_data_path(payload["path"])
        await self._in_executor(self.store.merge_snapshot, path)
        describe = await self._in_executor(self.store.describe)
        return 200, {"merged": str(path), "engines": describe}

    # ------------------------------------------------------------------
    # Dirty tracking
    # ------------------------------------------------------------------
    def _mark_clean_name(self, name: str) -> None:
        self._clean_marks[name] = (
            self.store.version(name),
            self.store.engine(name).change_tick,
        )

    def mark_clean(self) -> None:
        """Record the current state of every engine as "snapshotted".

        Called after writing the configured snapshot file; callers that
        hand the server a store whose exact state is already on disk
        (e.g. the ``serve`` CLI right after ``SketchStore.restore``)
        call it up front so an idle server does not rewrite an unchanged
        snapshot at shutdown.
        """
        for name in self.store.names():
            self._mark_clean_name(name)

    def _dirty_engines(self) -> list[str]:
        """Engines that changed since the last snapshot (or were never
        snapshotted)."""
        dirty = []
        for name in self.store.names():
            mark = (
                self.store.version(name),
                self.store.engine(name).change_tick,
            )
            if self._clean_marks.get(name) != mark:
                dirty.append(name)
        return dirty
