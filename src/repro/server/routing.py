"""Exact-path request routing for the sketch server.

The API surface is a handful of fixed paths, so the router is a plain
``(method, path) -> handler`` table.  It still does the two pieces of
HTTP bookkeeping that matter for clients: an unknown path is ``404``,
while a known path hit with the wrong method is ``405`` carrying an
``Allow`` header listing the methods that would work.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.server.protocol import HttpError

__all__ = ["Router"]


class Router:
    """A ``(method, path)`` dispatch table with 404/405 semantics."""

    def __init__(self) -> None:
        self._handlers: dict[tuple[str, str], Callable] = {}
        self._methods_by_path: dict[str, set[str]] = {}

    def add(self, method: str, path: str, handler: Callable) -> None:
        """Register ``handler`` for ``method path``."""
        method = method.upper()
        key = (method, path)
        if key in self._handlers:
            raise ValueError(f"duplicate route {method} {path}")
        self._handlers[key] = handler
        self._methods_by_path.setdefault(path, set()).add(method)

    def routes(self) -> list[tuple[str, str]]:
        """Registered ``(method, path)`` pairs, sorted by path."""
        return sorted(self._handlers, key=lambda key: (key[1], key[0]))

    def known_path(self, path: str) -> bool:
        """Whether any method is registered on ``path``.

        Metric labels are derived from this: unknown paths collapse to
        one ``(unmatched)`` label so arbitrary client-supplied paths
        cannot explode the per-route label cardinality.
        """
        return path in self._methods_by_path

    def resolve(self, method: str, path: str) -> Callable:
        """The handler for ``method path``.

        Raises ``HttpError(404)`` for unknown paths and ``HttpError(405)``
        (with an ``Allow`` header) for known paths with other methods.
        """
        handler = self._handlers.get((method.upper(), path))
        if handler is not None:
            return handler
        allowed = self._methods_by_path.get(path)
        if allowed:
            raise HttpError(
                405,
                f"{method} is not supported on {path}",
                extra_headers=(("Allow", ", ".join(sorted(allowed))),),
            )
        raise HttpError(404, f"unknown path {path!r}")
