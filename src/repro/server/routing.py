"""Exact-path request routing for the sketch server.

The API surface is a handful of fixed paths, so the router is a plain
``(method, path) -> handler`` table.  It still does the two pieces of
HTTP bookkeeping that matter for clients: an unknown path is ``404``,
while a known path hit with the wrong method is ``405`` carrying an
``Allow`` header listing the methods that would work.

Since the v1 API redesign the table is *generated* from one route
spec: :meth:`Router.from_spec` takes ``(method, path, handler)``
entries and registers each endpoint twice — once under the versioned
canonical path (``/v1`` + path) and once under the bare legacy path,
flagged deprecated.  Legacy paths dispatch to the same handler (the
response body is byte-identical) but :meth:`Router.deprecation` lets
the server attach a ``Deprecation`` header pointing clients at the
canonical path.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.server.protocol import HttpError

__all__ = ["Route", "Router", "V1_PREFIX"]

#: Current API version prefix; ``Router.from_spec`` mounts every spec
#: entry under it (and keeps the unprefixed path as a deprecated alias).
V1_PREFIX = "/v1"


@dataclass(frozen=True)
class Route:
    """One registered ``(method, path)`` endpoint.

    ``canonical`` is the preferred path for the same endpoint when this
    registration is a deprecated alias (legacy unprefixed paths point at
    their ``/v1`` twin); it is ``None`` for canonical routes.
    """

    method: str
    path: str
    handler: Callable
    canonical: str | None = None

    @property
    def deprecated(self) -> bool:
        return self.canonical is not None


class Router:
    """A ``(method, path)`` dispatch table with 404/405 semantics."""

    def __init__(self) -> None:
        self._table: dict[tuple[str, str], Route] = {}
        self._methods_by_path: dict[str, set[str]] = {}

    @classmethod
    def from_spec(
        cls,
        spec: Iterable[tuple[str, str, Callable]],
        *,
        prefix: str = V1_PREFIX,
    ) -> Router:
        """Build the full table from one route spec.

        Each ``(method, path, handler)`` entry yields two registrations:
        the canonical ``prefix + path`` and the legacy bare ``path`` as
        a deprecated alias of the canonical one.
        """
        router = cls()
        for method, path, handler in spec:
            canonical = prefix + path
            router.add(method, canonical, handler)
            router.add(method, path, handler, canonical=canonical)
        return router

    def add(
        self,
        method: str,
        path: str,
        handler: Callable,
        *,
        canonical: str | None = None,
    ) -> None:
        """Register ``handler`` for ``method path``.

        Passing ``canonical`` marks the registration as a deprecated
        alias of that path.
        """
        method = method.upper()
        key = (method, path)
        if key in self._table:
            raise ValueError(f"duplicate route {method} {path}")
        self._table[key] = Route(method, path, handler, canonical)
        self._methods_by_path.setdefault(path, set()).add(method)

    def routes(self) -> list[tuple[str, str]]:
        """Registered ``(method, path)`` pairs, sorted by path."""
        return sorted(self._table, key=lambda key: (key[1], key[0]))

    def known_path(self, path: str) -> bool:
        """Whether any method is registered on ``path``.

        Metric labels are derived from this: unknown paths collapse to
        one ``(unmatched)`` label so arbitrary client-supplied paths
        cannot explode the per-route label cardinality.
        """
        return path in self._methods_by_path

    def deprecation(self, path: str) -> str | None:
        """The canonical path ``path`` is a deprecated alias of, if any.

        Method-independent on purpose: every alias of a path points at
        the same canonical prefix twin, and the ``Deprecation`` header
        must also ride on 405 responses for the legacy path.
        """
        for method in self._methods_by_path.get(path, ()):
            route = self._table[(method, path)]
            if route.canonical is not None:
                return route.canonical
        return None

    def resolve(self, method: str, path: str) -> Callable:
        """The handler for ``method path``.

        Raises ``HttpError(404)`` for unknown paths and ``HttpError(405)``
        (with an ``Allow`` header) for known paths with other methods.
        """
        route = self._table.get((method.upper(), path))
        if route is not None:
            return route.handler
        allowed = self._methods_by_path.get(path)
        if allowed:
            raise HttpError(
                405,
                f"{method} is not supported on {path}",
                extra_headers=(("Allow", ", ".join(sorted(allowed))),),
            )
        raise HttpError(404, f"unknown path {path!r}")
