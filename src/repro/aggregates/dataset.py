"""The instances x keys data model (Section 7).

A :class:`MultiInstanceDataset` holds, for a set of instances, an assignment
of nonnegative values to keys.  The universe of keys is shared between
instances; absent keys implicitly have value zero.  The class offers exact
computation of the paper's sum aggregates, which the estimators are compared
against.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence

from repro.exceptions import InvalidParameterError

__all__ = ["MultiInstanceDataset"]

KeyPredicate = Callable[[object], bool]


class MultiInstanceDataset:
    """Values assigned to keys across multiple instances.

    Parameters
    ----------
    instances:
        Mapping ``instance label -> {key: value}``.  Values must be
        nonnegative; missing keys mean value zero.

    Examples
    --------
    >>> data = MultiInstanceDataset({
    ...     "monday": {"a": 3.0, "b": 1.0},
    ...     "tuesday": {"a": 1.0, "c": 4.0},
    ... })
    >>> data.distinct_count(["monday", "tuesday"])
    3
    >>> data.max_dominance(["monday", "tuesday"])
    8.0
    """

    def __init__(
        self, instances: Mapping[object, Mapping[object, float]]
    ) -> None:
        if not instances:
            raise InvalidParameterError("at least one instance is required")
        self._instances: dict[object, dict[object, float]] = {}
        for label, assignment in instances.items():
            cleaned: dict[object, float] = {}
            for key, value in assignment.items():
                value = float(value)
                if value < 0.0:
                    raise InvalidParameterError(
                        f"value of key {key!r} in instance {label!r} is "
                        "negative"
                    )
                if value > 0.0:
                    cleaned[key] = value
            self._instances[label] = cleaned

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def instance_labels(self) -> list[object]:
        """Labels of the instances, in insertion order."""
        return list(self._instances)

    @property
    def n_instances(self) -> int:
        """Number of instances."""
        return len(self._instances)

    def instance(self, label: object) -> dict[object, float]:
        """The ``{key: value}`` assignment of one instance (positive values)."""
        try:
            return dict(self._instances[label])
        except KeyError as error:
            raise InvalidParameterError(
                f"unknown instance {label!r}"
            ) from error

    def active_keys(self, labels: Sequence[object] | None = None) -> set:
        """Keys with a positive value in at least one selected instance."""
        labels = self._resolve(labels)
        keys: set = set()
        for label in labels:
            keys |= set(self._instances[label])
        return keys

    def value(self, label: object, key: object) -> float:
        """Value of ``key`` in instance ``label`` (zero when absent)."""
        if label not in self._instances:
            raise InvalidParameterError(f"unknown instance {label!r}")
        return self._instances[label].get(key, 0.0)

    def value_vector(
        self, key: object, labels: Sequence[object] | None = None
    ) -> tuple[float, ...]:
        """The vector of values ``key`` assumes across the selected instances."""
        labels = self._resolve(labels)
        return tuple(self._instances[label].get(key, 0.0) for label in labels)

    # ------------------------------------------------------------------
    # Exact sum aggregates
    # ------------------------------------------------------------------
    def distinct_count(
        self,
        labels: Sequence[object] | None = None,
        predicate: KeyPredicate | None = None,
    ) -> int:
        """Number of distinct keys active in any selected instance."""
        return sum(
            1 for _ in self._selected_keys(labels, predicate)
        )

    def max_dominance(
        self,
        labels: Sequence[object] | None = None,
        predicate: KeyPredicate | None = None,
    ) -> float:
        """Max-dominance norm: ``sum_h max_i v_i(h)`` over selected keys."""
        labels = self._resolve(labels)
        return sum(
            max(self._instances[label].get(key, 0.0) for label in labels)
            for key in self._selected_keys(labels, predicate)
        )

    def min_dominance(
        self,
        labels: Sequence[object] | None = None,
        predicate: KeyPredicate | None = None,
    ) -> float:
        """Min-dominance norm: ``sum_h min_i v_i(h)`` over selected keys."""
        labels = self._resolve(labels)
        return sum(
            min(self._instances[label].get(key, 0.0) for label in labels)
            for key in self._selected_keys(labels, predicate)
        )

    def l1_distance(
        self,
        labels: Sequence[object] | None = None,
        predicate: KeyPredicate | None = None,
    ) -> float:
        """L1 distance (sum aggregate of the range) over selected keys."""
        labels = self._resolve(labels)
        total = 0.0
        for key in self._selected_keys(labels, predicate):
            values = [self._instances[label].get(key, 0.0) for label in labels]
            total += max(values) - min(values)
        return total

    def jaccard(self, label_a: object, label_b: object) -> float:
        """Jaccard coefficient of the active-key sets of two instances."""
        set_a = set(self._instances[label_a]) if label_a in self._instances \
            else self._missing(label_a)
        set_b = set(self._instances[label_b]) if label_b in self._instances \
            else self._missing(label_b)
        union = set_a | set_b
        if not union:
            return 1.0
        return len(set_a & set_b) / len(union)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _missing(self, label: object) -> set:
        raise InvalidParameterError(f"unknown instance {label!r}")

    def _resolve(self, labels: Sequence[object] | None) -> list[object]:
        if labels is None:
            return self.instance_labels
        labels = list(labels)
        for label in labels:
            if label not in self._instances:
                raise InvalidParameterError(f"unknown instance {label!r}")
        if not labels:
            raise InvalidParameterError("at least one instance must be selected")
        return labels

    def _selected_keys(
        self,
        labels: Sequence[object] | None,
        predicate: KeyPredicate | None,
    ) -> Iterable[object]:
        for key in self.active_keys(labels):
            if predicate is None or predicate(key):
                yield key
