"""Sum aggregates over an instances x keys data set (Sections 7-8).

The data model is a matrix of instances (rows) by keys (columns); each
instance is summarised independently (Poisson / bottom-k).  Multi-instance
sum aggregates — distinct count, max/min dominance, L1 distance — are
estimated by summing per-key single-vector estimates over the sampled keys.
"""

from repro.aggregates.dataset import MultiInstanceDataset
from repro.aggregates.distinct import (
    DistinctCountEstimate,
    distinct_count_ht,
    distinct_count_l,
    distinct_ht_variance,
    distinct_l_variance,
)
from repro.aggregates.dominance import (
    MaxDominanceEstimate,
    max_dominance_estimates,
    max_dominance_exact_variances,
)
from repro.aggregates.distance import l1_distance_ht
from repro.aggregates.sum_estimator import sum_aggregate_oblivious

__all__ = [
    "MultiInstanceDataset",
    "DistinctCountEstimate",
    "distinct_count_ht",
    "distinct_count_l",
    "distinct_ht_variance",
    "distinct_l_variance",
    "MaxDominanceEstimate",
    "max_dominance_estimates",
    "max_dominance_exact_variances",
    "l1_distance_ht",
    "sum_aggregate_oblivious",
]
