"""Distinct-count (union size) estimation from two independent samples
with known seeds (Section 8.1).

Each instance ``i`` is a set ``N_i`` of active keys, summarised by a
weighted (Poisson or bottom-k) sample ``S_i`` with per-key sampling
probability ``p_i`` and reproducible seeds ``u_i(h)``.  The distinct count
``|N_1 ∪ N_2|`` is the sum aggregate of ``OR`` and is estimated by summing
a per-key OR estimate.

Sampled keys are split into five categories (Section 8.1):

========  =======================================================
``F11``   sampled in both instances
``F1?``   sampled only in instance 1, seed of instance 2 above ``p_2``
``F10``   sampled only in instance 1, seed of instance 2 below ``p_2``
          (certifying the key is absent from ``N_2``)
``F?1``   sampled only in instance 2, seed of instance 1 above ``p_1``
``F01``   sampled only in instance 2, seed of instance 1 below ``p_1``
========  =======================================================
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass

from repro._validation import check_probability
from repro.aggregates.dataset import KeyPredicate
from repro.core.variance import or_l_variance
from repro.exceptions import InvalidParameterError

__all__ = [
    "DistinctCountEstimate",
    "categorize_keys",
    "distinct_count_ht",
    "distinct_count_l",
    "distinct_ht_variance",
    "distinct_l_variance",
]

SeedLookup = Callable[[object], float]

CATEGORY_NAMES = ("F11", "F1?", "F10", "F?1", "F01")


@dataclass(frozen=True)
class DistinctCountEstimate:
    """A distinct-count estimate together with the category breakdown."""

    estimate: float
    counts: Mapping[str, int]
    estimator: str

    def __float__(self) -> float:
        return self.estimate


def _as_seed_lookup(seeds: SeedLookup | Mapping[object, float]) -> SeedLookup:
    if callable(seeds):
        return seeds
    mapping = dict(seeds)

    def lookup(key: object) -> float:
        try:
            return mapping[key]
        except KeyError as error:
            raise InvalidParameterError(
                f"no seed available for key {key!r}"
            ) from error

    return lookup


def categorize_keys(
    sample1: Iterable[object],
    sample2: Iterable[object],
    p1: float,
    p2: float,
    seeds1: SeedLookup | Mapping[object, float],
    seeds2: SeedLookup | Mapping[object, float],
    predicate: KeyPredicate | None = None,
) -> dict[str, set]:
    """Split the sampled keys into the five information categories."""
    p1 = check_probability(p1, "p1")
    p2 = check_probability(p2, "p2")
    seeds1 = _as_seed_lookup(seeds1)
    seeds2 = _as_seed_lookup(seeds2)
    set1, set2 = set(sample1), set(sample2)
    categories: dict[str, set] = {name: set() for name in CATEGORY_NAMES}
    for key in set1 | set2:
        if predicate is not None and not predicate(key):
            continue
        in1, in2 = key in set1, key in set2
        if in1 and in2:
            categories["F11"].add(key)
        elif in1:
            if seeds2(key) > p2:
                categories["F1?"].add(key)
            else:
                categories["F10"].add(key)
        else:
            if seeds1(key) > p1:
                categories["F?1"].add(key)
            else:
                categories["F01"].add(key)
    return categories


def distinct_count_ht(
    sample1: Iterable[object],
    sample2: Iterable[object],
    p1: float,
    p2: float,
    seeds1: SeedLookup | Mapping[object, float],
    seeds2: SeedLookup | Mapping[object, float],
    predicate: KeyPredicate | None = None,
) -> DistinctCountEstimate:
    """The HT distinct-count estimate (Section 8.1).

    Only keys whose membership in *both* sets is determined contribute:
    ``|F11 ∪ F10 ∪ F01| / (p1 p2)``.
    """
    categories = categorize_keys(
        sample1, sample2, p1, p2, seeds1, seeds2, predicate
    )
    counts = {name: len(keys) for name, keys in categories.items()}
    determined = counts["F11"] + counts["F10"] + counts["F01"]
    estimate = determined / (p1 * p2)
    return DistinctCountEstimate(estimate=estimate, counts=counts,
                                 estimator="HT")


def distinct_count_l(
    sample1: Iterable[object],
    sample2: Iterable[object],
    p1: float,
    p2: float,
    seeds1: SeedLookup | Mapping[object, float],
    seeds2: SeedLookup | Mapping[object, float],
    predicate: KeyPredicate | None = None,
) -> DistinctCountEstimate:
    """The L distinct-count estimate (Section 8.1), which exploits the
    partial-information categories ``F1?``, ``F?1``, ``F10`` and ``F01``."""
    categories = categorize_keys(
        sample1, sample2, p1, p2, seeds1, seeds2, predicate
    )
    counts = {name: len(keys) for name, keys in categories.items()}
    union_probability = p1 + p2 - p1 * p2
    estimate = (
        (counts["F1?"] + counts["F?1"] + counts["F11"]) / union_probability
        + counts["F10"] / (p1 * union_probability)
        + counts["F01"] / (p2 * union_probability)
    )
    return DistinctCountEstimate(estimate=estimate, counts=counts,
                                 estimator="L")


def distinct_ht_variance(distinct: float, p1: float, p2: float) -> float:
    """Exact variance of the HT distinct-count estimate:
    ``D (1 / (p1 p2) - 1)``."""
    p1 = check_probability(p1, "p1")
    p2 = check_probability(p2, "p2")
    return float(distinct) * (1.0 / (p1 * p2) - 1.0)


def distinct_l_variance(
    distinct: float, jaccard: float, p1: float, p2: float
) -> float:
    """Exact variance of the L distinct-count estimate.

    ``Var = D J Var[OR^L | (1,1)] + D (1 - J) Var[OR^L | (1,0)]`` where
    ``J`` is the Jaccard coefficient of the two key sets.  Keys present in
    only one of the sets are assumed to split evenly between the two
    one-sided variances (they are equal when ``p1 = p2``).
    """
    if not 0.0 <= jaccard <= 1.0:
        raise InvalidParameterError(
            f"jaccard must be in [0, 1], got {jaccard}"
        )
    distinct = float(distinct)
    var_both = or_l_variance(p1, p2, (1, 1))
    var_one = 0.5 * (
        or_l_variance(p1, p2, (1, 0)) + or_l_variance(p1, p2, (0, 1))
    )
    return distinct * jaccard * var_both + distinct * (1.0 - jaccard) * var_one
