"""Max-dominance estimation over two PPS-sampled instances (Section 8.2).

The max-dominance norm ``sum_h max(v_1(h), v_2(h))`` is estimated by summing
per-key maximum estimates, using either the inverse-probability estimator
``max^(HT)`` or the Pareto-optimal ``max^(L)`` of Section 5.2.  Both
instances are sampled independently with Poisson PPS sampling and known
(hash-generated) seeds.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.aggregates.dataset import KeyPredicate, MultiInstanceDataset
from repro.batch.assemble import dataset_value_matrix, pps_outcome_batch
from repro.core.max_weighted import MaxPpsHT, MaxPpsL
from repro.exceptions import InvalidParameterError
from repro.sampling.seeds import SeedAssigner

__all__ = [
    "MaxDominanceEstimate",
    "max_dominance_estimates",
    "max_dominance_exact_variances",
    "tau_star_for_sampling_fraction",
]


@dataclass(frozen=True)
class MaxDominanceEstimate:
    """Max-dominance estimates from one concrete pair of samples.

    Attributes
    ----------
    ht:
        Estimate using the per-key ``max^(HT)`` estimator.
    l:
        Estimate using the per-key ``max^(L)`` estimator.
    true_value:
        The exact max-dominance norm.
    n_sampled_keys:
        Number of keys sampled in at least one instance.
    """

    ht: float
    l: float
    true_value: float
    n_sampled_keys: int


def tau_star_for_sampling_fraction(
    values: Sequence[float], fraction: float
) -> float:
    """Threshold ``tau_star`` so that the expected number of sampled keys is
    ``fraction`` of the positive keys under PPS sampling.

    Solves ``sum_h min(1, v_h / tau_star) = fraction * #positive`` by
    bisection (the left side decreases in ``tau_star``).
    """
    values = np.fromiter((float(v) for v in values), dtype=np.float64)
    positive = np.sort(values[values > 0.0])[::-1]
    if positive.size == 0:
        raise InvalidParameterError("no positive values to sample")
    if not 0.0 < fraction <= 1.0:
        raise InvalidParameterError(
            f"fraction must be in (0, 1], got {fraction}"
        )
    target = fraction * positive.size
    low = float(positive[-1])
    high = float(positive.sum()) / max(target, 1e-12)
    low = min(low, high) * 1e-6

    def expected(tau: float) -> float:
        return float(np.minimum(1.0, positive / tau).sum())

    for _ in range(200):
        mid = 0.5 * (low + high)
        if expected(mid) > target:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def max_dominance_estimates(
    dataset: MultiInstanceDataset,
    labels: Sequence[object],
    tau_star: Sequence[float],
    seed_assigner: SeedAssigner,
    predicate: KeyPredicate | None = None,
) -> MaxDominanceEstimate:
    """Estimate the max-dominance norm of two instances from PPS samples.

    The per-key PPS outcomes are assembled into one columnar
    :class:`~repro.batch.OutcomeBatch` (hashing the key column once per
    instance) and both per-key estimators run as vectorized batch kernels.
    """
    if len(labels) != 2 or len(tau_star) != 2:
        raise InvalidParameterError(
            "max dominance is defined here for exactly two instances"
        )
    estimator_ht = MaxPpsHT(tau_star)
    estimator_l = MaxPpsL(tau_star)
    keys = [
        key
        for key in dataset.active_keys(labels)
        if predicate is None or predicate(key)
    ]
    values, batch = pps_outcome_batch(
        dataset, keys, list(labels), tau_star, seed_assigner
    )
    return MaxDominanceEstimate(
        ht=float(estimator_ht.estimate_batch(batch).sum()),
        l=float(estimator_l.estimate_batch(batch).sum()),
        true_value=float(values.max(axis=1).sum()) if keys else 0.0,
        n_sampled_keys=int(np.count_nonzero(batch.any_sampled())),
    )


def max_dominance_exact_variances(
    dataset: MultiInstanceDataset,
    labels: Sequence[object],
    tau_star: Sequence[float],
    predicate: KeyPredicate | None = None,
    grid_size: int = 801,
) -> tuple[float, float]:
    """Exact variances of the HT and L max-dominance estimates.

    Keys are sampled independently, so the aggregate variance is the sum of
    the per-key variances; the per-key ``max^(L)`` variance is computed by
    numerical integration over the seed of the unsampled entry.  The key
    column is assembled into one value matrix and both estimators run
    their batched ``variance_many`` path — the ``max^(L)`` integration is
    evaluated once per *distinct* value pair instead of once per key.
    """
    if len(labels) != 2 or len(tau_star) != 2:
        raise InvalidParameterError(
            "max dominance is defined here for exactly two instances"
        )
    estimator_ht = MaxPpsHT(tau_star)
    estimator_l = MaxPpsL(tau_star)
    keys = [
        key
        for key in dataset.active_keys(labels)
        if predicate is None or predicate(key)
    ]
    if not keys:
        return 0.0, 0.0
    matrix = dataset_value_matrix(dataset, keys, list(labels))
    variance_ht = float(estimator_ht.variance_many(matrix).sum())
    variance_l = float(
        estimator_l.variance_many(matrix, grid_size=grid_size).sum()
    )
    return variance_ht, variance_l
