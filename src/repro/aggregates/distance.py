"""Distance aggregates (L1 / range sums) over sampled instances.

The L1 distance between two instances is the sum aggregate of the range
``RG(v) = max(v) - min(v)``.  Over *weighted* samples there is no
inverse-probability estimator for the range (Section 2.3) and, with unknown
seeds, no unbiased nonnegative estimator at all (Section 6).  Over
weight-oblivious Poisson samples the HT estimator (positive only when both
entries are sampled) applies and is Pareto optimal for ``r = 2``; that is
the estimator provided here.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro._validation import check_probability_vector
from repro.aggregates.dataset import KeyPredicate, MultiInstanceDataset
from repro.aggregates.sum_estimator import SumAggregateResult
from repro.exceptions import InvalidParameterError
from repro.sampling.seeds import SeedAssigner

__all__ = ["l1_distance_ht"]


def l1_distance_ht(
    dataset: MultiInstanceDataset,
    labels: Sequence[object],
    probabilities: Sequence[float],
    seed_assigner: SeedAssigner,
    predicate: KeyPredicate | None = None,
) -> SumAggregateResult:
    """HT estimate of the L1 distance from weight-oblivious Poisson samples.

    A key contributes ``|v_1 - v_2| / (p_1 p_2)`` when it is sampled in both
    instances and zero otherwise; for two instances this inverse-probability
    estimator is Pareto optimal (Section 4).
    """
    if len(labels) != 2:
        raise InvalidParameterError(
            "the L1 distance is defined between exactly two instances"
        )
    probabilities = check_probability_vector(probabilities)
    if len(probabilities) != 2:
        raise InvalidParameterError("two inclusion probabilities are required")
    estimate_total = 0.0
    true_total = 0.0
    contributing = 0
    for key in dataset.active_keys(labels):
        if predicate is not None and not predicate(key):
            continue
        v1, v2 = dataset.value_vector(key, labels)
        true_total += abs(v1 - v2)
        sampled1 = seed_assigner.seed(key, instance=labels[0]) <= probabilities[0]
        sampled2 = seed_assigner.seed(key, instance=labels[1]) <= probabilities[1]
        if sampled1 and sampled2:
            value = abs(v1 - v2) / (probabilities[0] * probabilities[1])
            if value != 0.0:
                contributing += 1
            estimate_total += value
    return SumAggregateResult(
        estimate=estimate_total,
        true_value=true_total,
        n_contributing_keys=contributing,
    )
