"""Distance aggregates (L1 / range sums) over sampled instances.

The L1 distance between two instances is the sum aggregate of the range
``RG(v) = max(v) - min(v)``.  Over *weighted* samples there is no
inverse-probability estimator for the range (Section 2.3) and, with unknown
seeds, no unbiased nonnegative estimator at all (Section 6).  Over
weight-oblivious Poisson samples the HT estimator (positive only when both
entries are sampled) applies and is Pareto optimal for ``r = 2``; that is
the estimator provided here, wired through the columnar batch engine: the
per-key outcomes are assembled into one
:class:`~repro.batch.OutcomeBatch` and estimated in a single vectorized
pass.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro._validation import check_probability_vector
from repro.aggregates.dataset import KeyPredicate, MultiInstanceDataset
from repro.aggregates.sum_estimator import (
    SumAggregateResult,
    sum_aggregate_oblivious,
)
from repro.core.functions import value_range
from repro.core.ht import HorvitzThompsonOblivious
from repro.exceptions import InvalidParameterError
from repro.sampling.seeds import SeedAssigner

__all__ = ["l1_distance_ht"]


def l1_distance_ht(
    dataset: MultiInstanceDataset,
    labels: Sequence[object],
    probabilities: Sequence[float],
    seed_assigner: SeedAssigner,
    predicate: KeyPredicate | None = None,
) -> SumAggregateResult:
    """HT estimate of the L1 distance from weight-oblivious Poisson samples.

    A key contributes ``|v_1 - v_2| / (p_1 p_2)`` when it is sampled in both
    instances and zero otherwise; for two instances this inverse-probability
    estimator is Pareto optimal (Section 4).  The L1 distance is exactly the
    sum aggregate of the range, so this delegates to the batched
    :func:`~repro.aggregates.sum_estimator.sum_aggregate_oblivious` with
    the range HT estimator.
    """
    if len(labels) != 2:
        raise InvalidParameterError(
            "the L1 distance is defined between exactly two instances"
        )
    probabilities = check_probability_vector(probabilities)
    if len(probabilities) != 2:
        raise InvalidParameterError("two inclusion probabilities are required")
    # value_range's vectorized twin comes from BATCH_FUNCTIONS.
    estimator = HorvitzThompsonOblivious(
        probabilities, function=value_range, function_name="range"
    )
    return sum_aggregate_oblivious(
        dataset,
        labels,
        probabilities,
        estimator,
        seed_assigner,
        true_function=value_range,
        predicate=predicate,
    )
