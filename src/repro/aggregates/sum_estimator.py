"""Generic sum-aggregate estimation (Section 7).

A sum aggregate ``sum_{h in K'} f(v(h))`` is estimated by the sum of per-key
single-vector estimates.  Keys sampled in no instance contribute zero, so
only sampled keys need to be visited.  Because the per-key estimators are
unbiased and keys are sampled independently, the aggregate estimate is
unbiased and its variance is the sum of the per-key variances.

The per-key estimates run through the columnar engine of
:mod:`repro.batch`: the key column is hashed to seeds once per instance,
the per-key outcomes are assembled into one
:class:`~repro.batch.OutcomeBatch`, and the estimator's vectorized
``estimate_batch`` produces every per-key estimate in one NumPy pass (the
scalar ``estimate`` loop remains the reference the batch path is tested
against).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.batch.assemble import oblivious_outcome_batch, pps_outcome_batch
from repro.core.estimator_base import VectorEstimator
from repro.core.functions import BATCH_FUNCTIONS
from repro.aggregates.dataset import KeyPredicate, MultiInstanceDataset
from repro.sampling.seeds import SeedAssigner

__all__ = ["SumAggregateResult", "sum_aggregate_oblivious", "sum_aggregate_pps"]


@dataclass(frozen=True)
class SumAggregateResult:
    """Result of a sum-aggregate estimation.

    Attributes
    ----------
    estimate:
        The estimated aggregate.
    true_value:
        The exact aggregate computed from the full data (available because
        the substrate holds the complete data set).
    n_contributing_keys:
        Number of keys with a nonzero per-key estimate.
    """

    estimate: float
    true_value: float
    n_contributing_keys: int

    @property
    def relative_error(self) -> float:
        """Relative error of the estimate (``inf`` when the truth is zero)."""
        if self.true_value == 0.0:
            return float("inf") if self.estimate != 0.0 else 0.0
        return abs(self.estimate - self.true_value) / abs(self.true_value)


def _true_total(
    values: np.ndarray,
    true_function: Callable[[Sequence[float]], float],
) -> float:
    """Exact ``sum_h f(v(h))`` over the value matrix, vectorized for the
    registered primitives and row-looped for arbitrary callables."""
    batch_true = BATCH_FUNCTIONS.get(true_function)
    if batch_true is not None:
        return float(batch_true(values).sum()) if len(values) else 0.0
    return float(
        sum(float(true_function(tuple(row))) for row in values)
    )


def _selected_keys(
    dataset: MultiInstanceDataset,
    labels: Sequence[object],
    predicate: KeyPredicate | None,
) -> list[object]:
    return [
        key
        for key in dataset.active_keys(labels)
        if predicate is None or predicate(key)
    ]


def sum_aggregate_oblivious(
    dataset: MultiInstanceDataset,
    labels: Sequence[object],
    probabilities: Sequence[float],
    estimator: VectorEstimator,
    seed_assigner: SeedAssigner,
    true_function: Callable[[Sequence[float]], float],
    predicate: KeyPredicate | None = None,
) -> SumAggregateResult:
    """Estimate a sum aggregate from weight-oblivious Poisson samples.

    Every key of the (active) universe is sampled in instance ``i`` with
    probability ``probabilities[i]`` using the reproducible seed of the
    (key, instance) pair; the per-key outcomes are assembled into one
    columnar batch and fed to ``estimator.estimate_batch``.
    """
    labels = list(labels)
    keys = _selected_keys(dataset, labels, predicate)
    values, batch = oblivious_outcome_batch(
        dataset, keys, labels, probabilities, seed_assigner
    )
    estimates = estimator.estimate_batch(batch)
    return SumAggregateResult(
        estimate=float(estimates.sum()),
        true_value=_true_total(values, true_function),
        n_contributing_keys=int(np.count_nonzero(estimates)),
    )


def sum_aggregate_pps(
    dataset: MultiInstanceDataset,
    labels: Sequence[object],
    tau_star: Sequence[float],
    estimator: VectorEstimator,
    seed_assigner: SeedAssigner,
    true_function: Callable[[Sequence[float]], float],
    predicate: KeyPredicate | None = None,
) -> SumAggregateResult:
    """Estimate a sum aggregate from independent PPS samples with known seeds.

    Instance ``i`` samples key ``h`` iff ``u_i(h) <= v_i(h) / tau_star[i]``;
    the batch carries the seeds of every entry, which the known-seed
    per-key estimators exploit.
    """
    labels = list(labels)
    keys = _selected_keys(dataset, labels, predicate)
    values, batch = pps_outcome_batch(
        dataset, keys, labels, tau_star, seed_assigner
    )
    estimates = estimator.estimate_batch(batch)
    return SumAggregateResult(
        estimate=float(estimates.sum()),
        true_value=_true_total(values, true_function),
        n_contributing_keys=int(np.count_nonzero(estimates)),
    )
