"""Generic sum-aggregate estimation (Section 7).

A sum aggregate ``sum_{h in K'} f(v(h))`` is estimated by the sum of per-key
single-vector estimates.  Keys sampled in no instance contribute zero, so
only sampled keys need to be visited.  Because the per-key estimators are
unbiased and keys are sampled independently, the aggregate estimate is
unbiased and its variance is the sum of the per-key variances.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.estimator_base import VectorEstimator
from repro.aggregates.dataset import KeyPredicate, MultiInstanceDataset
from repro.sampling.outcomes import VectorOutcome
from repro.sampling.seeds import SeedAssigner

__all__ = ["SumAggregateResult", "sum_aggregate_oblivious", "sum_aggregate_pps"]


@dataclass(frozen=True)
class SumAggregateResult:
    """Result of a sum-aggregate estimation.

    Attributes
    ----------
    estimate:
        The estimated aggregate.
    true_value:
        The exact aggregate computed from the full data (available because
        the substrate holds the complete data set).
    n_contributing_keys:
        Number of keys with a nonzero per-key estimate.
    """

    estimate: float
    true_value: float
    n_contributing_keys: int

    @property
    def relative_error(self) -> float:
        """Relative error of the estimate (``inf`` when the truth is zero)."""
        if self.true_value == 0.0:
            return float("inf") if self.estimate != 0.0 else 0.0
        return abs(self.estimate - self.true_value) / abs(self.true_value)


def sum_aggregate_oblivious(
    dataset: MultiInstanceDataset,
    labels: Sequence[object],
    probabilities: Sequence[float],
    estimator: VectorEstimator,
    seed_assigner: SeedAssigner,
    true_function: Callable[[Sequence[float]], float],
    predicate: KeyPredicate | None = None,
) -> SumAggregateResult:
    """Estimate a sum aggregate from weight-oblivious Poisson samples.

    Every key of the (active) universe is sampled in instance ``i`` with
    probability ``probabilities[i]`` using the reproducible seed of the
    (key, instance) pair; the per-key outcomes are fed to ``estimator`` and
    the estimates summed over keys matching ``predicate``.
    """
    labels = list(labels)
    estimate_total = 0.0
    true_total = 0.0
    contributing = 0
    for key in dataset.active_keys(labels):
        if predicate is not None and not predicate(key):
            continue
        values = dataset.value_vector(key, labels)
        true_total += float(true_function(values))
        sampled = set()
        for index, label in enumerate(labels):
            seed = seed_assigner.seed(key, instance=label)
            if seed <= probabilities[index]:
                sampled.add(index)
        if not sampled:
            continue
        outcome = VectorOutcome.from_vector(values, sampled)
        value = estimator.estimate(outcome)
        if value != 0.0:
            contributing += 1
        estimate_total += value
    return SumAggregateResult(
        estimate=estimate_total,
        true_value=true_total,
        n_contributing_keys=contributing,
    )


def sum_aggregate_pps(
    dataset: MultiInstanceDataset,
    labels: Sequence[object],
    tau_star: Sequence[float],
    estimator: VectorEstimator,
    seed_assigner: SeedAssigner,
    true_function: Callable[[Sequence[float]], float],
    predicate: KeyPredicate | None = None,
) -> SumAggregateResult:
    """Estimate a sum aggregate from independent PPS samples with known seeds.

    Instance ``i`` samples key ``h`` iff ``u_i(h) <= v_i(h) / tau_star[i]``;
    the seeds of both instances are available to the per-key estimator.
    """
    labels = list(labels)
    estimate_total = 0.0
    true_total = 0.0
    contributing = 0
    for key in dataset.active_keys(labels):
        if predicate is not None and not predicate(key):
            continue
        values = dataset.value_vector(key, labels)
        true_total += float(true_function(values))
        seeds = {}
        sampled = set()
        for index, label in enumerate(labels):
            seed = seed_assigner.seed(key, instance=label)
            seeds[index] = seed
            if values[index] > 0.0 and values[index] >= seed * tau_star[index]:
                sampled.add(index)
        if not sampled:
            continue
        outcome = VectorOutcome.from_vector(values, sampled, seeds=seeds)
        value = estimator.estimate(outcome)
        if value != 0.0:
            contributing += 1
        estimate_total += value
    return SumAggregateResult(
        estimate=estimate_total,
        true_value=true_total,
        n_contributing_keys=contributing,
    )
