"""Rank families for weighted sampling (Section 7.1 of the paper).

A *rank assignment* maps each key ``h`` with value ``w = v(h)`` and uniform
seed ``u`` to a rank ``r(h) = F_w^{-1}(u)`` where ``F_w`` is the CDF of a
family of distributions parameterised by the value.  Bottom-k and Poisson
samples are then defined in terms of the ranks:

* a Poisson-``tau`` sample keeps every key with ``r(h) < tau``;
* a bottom-k sample keeps the ``k`` keys of smallest rank.

The two families used throughout the paper are implemented here:

:class:`PpsRanks`
    ``F_w(x) = min(1, w x)`` — ranks are ``u / w``.  Poisson sampling with
    these ranks is PPS (probability proportional to size); bottom-k sampling
    is priority sampling.

:class:`ExpRanks`
    ``F_w(x) = 1 - exp(-w x)`` — ranks are ``-ln(1 - u) / w``.  Bottom-k
    sampling with these ranks is weighted sampling without replacement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro._validation import check_nonnegative
from repro.exceptions import InvalidParameterError

__all__ = [
    "RankFamily",
    "PpsRanks",
    "ExpRanks",
    "UniformRanks",
    "rank_family_from_name",
]


class RankFamily(ABC):
    """Interface of a rank family ``{F_w}``.

    All methods are vectorised: scalars broadcast against arrays following
    normal NumPy rules.
    """

    #: short name used in reprs and reports
    name: str = "abstract"

    @abstractmethod
    def rank(self, values, seeds):
        """Return ranks ``F_w^{-1}(u)`` for values ``w`` and seeds ``u``."""

    @abstractmethod
    def cdf(self, values, x):
        """Return ``F_w(x)``, the probability that the rank is below ``x``."""

    @abstractmethod
    def inverse_cdf(self, values, quantiles):
        """Return ``F_w^{-1}(q)``."""

    def inclusion_probability(self, values, threshold: float):
        """Probability that a key with value ``w`` enters a Poisson-``tau``
        sample, i.e. ``P[r < tau] = F_w(tau)``."""
        return self.cdf(values, threshold)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"

    # The built-in families are stateless, so two instances of the same
    # concrete class are interchangeable.  Stateful subclasses must
    # override both methods.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RankFamily):
            return NotImplemented
        return type(other) is type(self)

    def __hash__(self) -> int:
        return hash(type(self))


class PpsRanks(RankFamily):
    """PPS ranks: ``r = u / w``; Poisson sampling becomes PPS sampling.

    A value of ``0`` receives rank ``+inf`` (never sampled), matching the
    weighted-sampling requirement ``v_i = 0 => i not in S``.
    """

    name = "pps"

    def rank(self, values, seeds):
        values = np.asarray(values, dtype=float)
        seeds = np.asarray(seeds, dtype=float)
        with np.errstate(divide="ignore"):
            return np.where(values > 0.0, seeds / np.maximum(values, 1e-300),
                            np.inf)

    def cdf(self, values, x):
        values = np.asarray(values, dtype=float)
        x = np.asarray(x, dtype=float)
        return np.clip(values * x, 0.0, 1.0)

    def inverse_cdf(self, values, quantiles):
        values = np.asarray(values, dtype=float)
        quantiles = np.asarray(quantiles, dtype=float)
        with np.errstate(divide="ignore"):
            return np.where(values > 0.0,
                            quantiles / np.maximum(values, 1e-300), np.inf)


class ExpRanks(RankFamily):
    """Exponential ranks: ``r ~ EXP[w]``; bottom-k becomes successive
    weighted sampling without replacement.

    The minimum of EXP ranks over a subpopulation is EXP distributed with
    parameter equal to the total value of the subpopulation, the property
    used by bottom-k sketches.
    """

    name = "exp"

    def rank(self, values, seeds):
        values = np.asarray(values, dtype=float)
        seeds = np.asarray(seeds, dtype=float)
        with np.errstate(divide="ignore"):
            raw = -np.log1p(-seeds) / np.maximum(values, 1e-300)
        return np.where(values > 0.0, raw, np.inf)

    def cdf(self, values, x):
        values = np.asarray(values, dtype=float)
        x = np.asarray(x, dtype=float)
        return np.where(
            np.asarray(values) > 0.0, -np.expm1(-values * x), 0.0
        )

    def inverse_cdf(self, values, quantiles):
        values = np.asarray(values, dtype=float)
        quantiles = np.asarray(quantiles, dtype=float)
        with np.errstate(divide="ignore"):
            raw = -np.log1p(-quantiles) / np.maximum(values, 1e-300)
        return np.where(values > 0.0, raw, np.inf)


class UniformRanks(RankFamily):
    """Weight-oblivious ranks: ``r = u`` regardless of the value.

    A Poisson-``tau`` sample under these ranks keeps every active key with
    probability ``tau``, i.e. it is the weight-oblivious Poisson sampling of
    Section 3; bottom-k sampling becomes uniform sampling without
    replacement.  Keys with value zero are inactive and receive rank
    ``+inf``, matching the other families.
    """

    name = "uniform"

    def rank(self, values, seeds):
        values = np.asarray(values, dtype=float)
        seeds = np.asarray(seeds, dtype=float)
        return np.where(values > 0.0, seeds, np.inf)

    def cdf(self, values, x):
        values = np.asarray(values, dtype=float)
        x = np.asarray(x, dtype=float)
        return np.where(values > 0.0, np.clip(x, 0.0, 1.0), 0.0)

    def inverse_cdf(self, values, quantiles):
        values = np.asarray(values, dtype=float)
        quantiles = np.asarray(quantiles, dtype=float)
        return np.where(values > 0.0, quantiles, np.inf)


#: the built-in rank families, by wire/report name
_FAMILIES_BY_NAME = {
    PpsRanks.name: PpsRanks,
    ExpRanks.name: ExpRanks,
    UniformRanks.name: UniformRanks,
}


def rank_family_from_name(name: str) -> RankFamily:
    """Instantiate a built-in rank family from its :attr:`RankFamily.name`.

    The inverse of the ``name`` attribute for the three families of the
    paper; used by the binary sketch codec to round-trip sketch
    configuration through plain strings.
    """
    try:
        return _FAMILIES_BY_NAME[name]()
    except KeyError:
        raise InvalidParameterError(
            f"unknown rank family {name!r}; expected one of "
            f"{sorted(_FAMILIES_BY_NAME)}"
        ) from None


def poisson_threshold_for_expected_size(
    rank_family: RankFamily, values, expected_size: float,
    tolerance: float = 1e-10, max_iterations: int = 200,
) -> float:
    """Find the Poisson threshold ``tau`` with expected sample size ``k``.

    Solves ``sum_h F_{v(h)}(tau) = k`` by bisection.  The left-hand side is
    nondecreasing in ``tau`` for both rank families used in the paper.
    """
    values = np.asarray(values, dtype=float)
    check_nonnegative(expected_size, "expected_size")
    positive = values[values > 0.0]
    if expected_size >= positive.size:
        return float("inf")
    if expected_size == 0.0:
        return 0.0
    low, high = 0.0, 1.0
    while float(np.sum(rank_family.cdf(values, high))) < expected_size:
        high *= 2.0
        if high > 1e30:  # pragma: no cover - defensive
            return float("inf")
    for _ in range(max_iterations):
        mid = 0.5 * (low + high)
        size = float(np.sum(rank_family.cdf(values, mid)))
        if abs(size - expected_size) <= tolerance:
            return mid
        if size < expected_size:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)
