"""Outcomes of sampling a dispersed value vector (Section 2).

The single-key estimators of the paper act on the outcome of sampling the
vector ``v = (v_1, ..., v_r)`` of values a key assumes in ``r`` instances.
An outcome records which entries were sampled, their values, and — in the
known-seeds model — the seeds of all entries, which reveal upper bounds on
the unsampled values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import InvalidOutcomeError

__all__ = ["VectorOutcome"]


@dataclass(frozen=True)
class VectorOutcome:
    """The outcome of sampling one value vector.

    Attributes
    ----------
    r:
        Number of entries (instances) of the vector.
    sampled:
        The set ``S`` of sampled entry indices (0-based).
    values:
        Mapping ``index -> value`` for the sampled entries.
    seeds:
        Mapping ``index -> uniform seed`` for *all* entries when seeds are
        known, otherwise ``None``.  With PPS sampling and known seeds, an
        unsampled entry ``i`` satisfies ``v_i < seeds[i] * tau_star[i]``.
    """

    r: int
    sampled: frozenset[int]
    values: dict[int, float] = field(default_factory=dict)
    seeds: dict[int, float] | None = None

    def __post_init__(self) -> None:
        if self.r <= 0:
            raise InvalidOutcomeError(f"r must be positive, got {self.r}")
        if not isinstance(self.sampled, frozenset):
            object.__setattr__(self, "sampled", frozenset(self.sampled))
        for index in self.sampled:
            if not 0 <= index < self.r:
                raise InvalidOutcomeError(
                    f"sampled index {index} outside [0, {self.r})"
                )
            if index not in self.values:
                raise InvalidOutcomeError(
                    f"sampled index {index} has no value in the outcome"
                )
        for index in self.values:
            if index not in self.sampled:
                raise InvalidOutcomeError(
                    f"value given for unsampled index {index}"
                )
        if self.seeds is not None:
            missing = set(range(self.r)) - set(self.seeds)
            if missing:
                raise InvalidOutcomeError(
                    f"known-seed outcome is missing seeds for entries {sorted(missing)}"
                )

    @property
    def is_empty(self) -> bool:
        """Whether no entry was sampled."""
        return not self.sampled

    @property
    def is_full(self) -> bool:
        """Whether every entry was sampled."""
        return len(self.sampled) == self.r

    @property
    def knows_seeds(self) -> bool:
        """Whether the outcome carries seeds for all entries."""
        return self.seeds is not None

    def sampled_values(self) -> list[float]:
        """Values of the sampled entries, in index order."""
        return [self.values[i] for i in sorted(self.sampled)]

    def max_sampled(self) -> float:
        """Maximum sampled value (0 for an empty outcome)."""
        if not self.sampled:
            return 0.0
        return max(self.values.values())

    def value_or_none(self, index: int) -> float | None:
        """Value of entry ``index`` when sampled, otherwise ``None``."""
        return self.values.get(index)

    def seed_of(self, index: int) -> float:
        """Seed of entry ``index`` (known-seed outcomes only)."""
        if self.seeds is None:
            raise InvalidOutcomeError(
                "outcome does not carry seeds (unknown-seed model)"
            )
        return self.seeds[index]

    @classmethod
    def from_vector(
        cls,
        values: list[float] | tuple[float, ...],
        sampled: set[int] | frozenset[int],
        seeds: dict[int, float] | list[float] | None = None,
    ) -> "VectorOutcome":
        """Build an outcome from a full data vector and a sampled index set.

        Convenience constructor used heavily in tests and simulations where
        the true vector is known.
        """
        r = len(values)
        sampled = frozenset(sampled)
        outcome_values = {i: float(values[i]) for i in sampled}
        if seeds is not None and not isinstance(seeds, dict):
            seeds = {i: float(seeds[i]) for i in range(r)}
        return cls(r=r, sampled=sampled, values=outcome_values, seeds=seeds)
