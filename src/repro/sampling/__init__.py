"""Sampling substrate: single-instance summaries and dispersed-vector schemes.

The paper's estimators take the sampling scheme as a given.  This subpackage
implements every scheme the paper relies on:

* hash-based reproducible seeds (:mod:`repro.sampling.seeds`), which give the
  "known seeds" model and enable coordinated (shared-seed) sampling;
* PPS and exponential rank families (:mod:`repro.sampling.ranks`);
* Poisson sampling of a single instance, weighted and weight-oblivious
  (:mod:`repro.sampling.poisson`);
* bottom-k / priority sampling and the rank-conditioning subset-sum
  estimator (:mod:`repro.sampling.bottomk`);
* VarOpt sampling (:mod:`repro.sampling.varopt`);
* the per-key "dispersed vector" schemes used by the single-key estimator
  derivations (:mod:`repro.sampling.dispersed`), producing
  :class:`repro.sampling.outcomes.VectorOutcome` objects.
"""

from repro.sampling.bottomk import BottomKSample, bottom_k_sample
from repro.sampling.dispersed import ObliviousPoissonScheme, PpsPoissonScheme
from repro.sampling.outcomes import VectorOutcome
from repro.sampling.poisson import (
    PoissonSample,
    poisson_pps_sample,
    poisson_uniform_sample,
)
from repro.sampling.ranks import ExpRanks, PpsRanks, UniformRanks
from repro.sampling.seeds import SeedAssigner, key_hashes
from repro.sampling.varopt import VarOptSample, varopt_sample

__all__ = [
    "SeedAssigner",
    "key_hashes",
    "PpsRanks",
    "ExpRanks",
    "UniformRanks",
    "PoissonSample",
    "poisson_pps_sample",
    "poisson_uniform_sample",
    "BottomKSample",
    "bottom_k_sample",
    "VarOptSample",
    "varopt_sample",
    "ObliviousPoissonScheme",
    "PpsPoissonScheme",
    "VectorOutcome",
]
