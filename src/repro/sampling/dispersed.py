"""Sampling schemes for dispersed value vectors (Section 2).

A *dispersed* vector is sampled entry by entry: the inclusion of entry ``i``
may depend on ``v_i`` (weighted sampling) and on independent randomness, but
never on the other entries.  The two schemes used throughout the paper are:

:class:`ObliviousPoissonScheme`
    Weight-oblivious Poisson sampling: entry ``i`` is sampled with a fixed
    probability ``p_i`` independently of its value (Section 4).

:class:`PpsPoissonScheme`
    Weighted Poisson PPS sampling with per-entry thresholds ``tau_star``:
    entry ``i`` is sampled iff ``u_i <= v_i / tau_star_i`` where ``u_i`` is a
    uniform seed (Section 5).  When ``known_seeds`` is true the outcome
    carries the seeds, which is what gives the optimal estimators their
    extra power.

Both schemes expose:

* ``sample(v, rng)`` — draw a random :class:`VectorOutcome` for data ``v``;
* ``inclusion_probability(i, v_i)`` — marginal inclusion probability;
* for the oblivious scheme, exact enumeration of the (finite) outcome space
  conditioned on a data vector, which the generic derivation engines and the
  exact-variance utilities rely on.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from itertools import product

import numpy as np

from repro._validation import (
    check_positive_vector,
    check_probability_vector,
    check_rng,
)
from repro.exceptions import InvalidParameterError
from repro.sampling.outcomes import VectorOutcome

__all__ = ["ObliviousPoissonScheme", "PpsPoissonScheme"]


class ObliviousPoissonScheme:
    """Independent weight-oblivious Poisson sampling of a vector.

    Parameters
    ----------
    probabilities:
        Inclusion probability ``p_i`` of each entry, all in ``(0, 1]``.

    Examples
    --------
    >>> scheme = ObliviousPoissonScheme((0.5, 0.5))
    >>> outcome = scheme.sample((3.0, 7.0), rng=0)
    >>> outcome.r
    2
    """

    def __init__(self, probabilities: Sequence[float]) -> None:
        self.probabilities = check_probability_vector(probabilities)

    @property
    def r(self) -> int:
        """Number of entries."""
        return len(self.probabilities)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ObliviousPoissonScheme(probabilities={self.probabilities})"

    def inclusion_probability(self, index: int, value: float | None = None) -> float:
        """Marginal inclusion probability of entry ``index`` (value ignored)."""
        return self.probabilities[index]

    def sample(
        self,
        values: Sequence[float],
        rng: np.random.Generator | int | None = None,
        seeds: Sequence[float] | None = None,
    ) -> VectorOutcome:
        """Draw an outcome for data ``values``.

        ``seeds`` may be supplied explicitly (values in ``[0, 1]``) to make
        the draw deterministic; entry ``i`` is sampled iff
        ``seeds[i] <= p_i``.
        """
        values = self._check_values(values)
        if seeds is None:
            generator = check_rng(rng)
            seeds = generator.random(self.r)
        sampled = {
            i for i in range(self.r) if float(seeds[i]) <= self.probabilities[i]
        }
        return VectorOutcome.from_vector(values, sampled)

    def sample_many(
        self,
        values: Sequence[float],
        n_samples: int,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """Vectorised sampling: return an ``(n_samples, r)`` boolean mask."""
        self._check_values(values)
        generator = check_rng(rng)
        draws = generator.random((int(n_samples), self.r))
        return draws <= np.asarray(self.probabilities)

    def iter_outcomes(
        self, values: Sequence[float]
    ) -> Iterator[tuple[VectorOutcome, float]]:
        """Enumerate all outcomes for ``values`` with their probabilities."""
        values = self._check_values(values)
        for mask in product((False, True), repeat=self.r):
            probability = 1.0
            sampled = set()
            for i, included in enumerate(mask):
                p = self.probabilities[i]
                probability *= p if included else (1.0 - p)
                if included:
                    sampled.add(i)
            if probability > 0.0:
                yield VectorOutcome.from_vector(values, sampled), probability

    def outcome_probability(
        self, outcome: VectorOutcome, values: Sequence[float]
    ) -> float:
        """Probability of observing ``outcome`` given data ``values``."""
        values = self._check_values(values)
        probability = 1.0
        for i in range(self.r):
            p = self.probabilities[i]
            if i in outcome.sampled:
                if not np.isclose(outcome.values[i], values[i]):
                    return 0.0
                probability *= p
            else:
                probability *= 1.0 - p
        return probability

    def _check_values(self, values: Sequence[float]) -> tuple[float, ...]:
        if len(values) != self.r:
            raise InvalidParameterError(
                f"expected a vector with {self.r} entries, got {len(values)}"
            )
        return tuple(float(v) for v in values)


class PpsPoissonScheme:
    """Independent Poisson PPS sampling with per-entry thresholds.

    Entry ``i`` with value ``v_i`` and uniform seed ``u_i`` is sampled iff
    ``v_i >= u_i * tau_star_i`` — equivalently with probability
    ``min(1, v_i / tau_star_i)``.

    Parameters
    ----------
    tau_star:
        Per-entry thresholds ``tau_star_i > 0``.
    known_seeds:
        When ``True`` (default) the produced outcomes carry the seed vector,
        modelling reproducible (hash-generated) randomization.
    """

    def __init__(
        self, tau_star: Sequence[float], known_seeds: bool = True
    ) -> None:
        self.tau_star = check_positive_vector(tau_star, "tau_star")
        self.known_seeds = bool(known_seeds)

    @property
    def r(self) -> int:
        """Number of entries."""
        return len(self.tau_star)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PpsPoissonScheme(tau_star={self.tau_star}, "
            f"known_seeds={self.known_seeds})"
        )

    def inclusion_probability(self, index: int, value: float) -> float:
        """Marginal inclusion probability ``min(1, v / tau_star_i)``."""
        value = float(value)
        if value < 0.0:
            raise InvalidParameterError("values must be nonnegative")
        return min(1.0, value / self.tau_star[index])

    def sample(
        self,
        values: Sequence[float],
        rng: np.random.Generator | int | None = None,
        seeds: Sequence[float] | None = None,
    ) -> VectorOutcome:
        """Draw an outcome for data ``values``.

        ``seeds`` may be supplied explicitly to make the draw deterministic.
        """
        values = self._check_values(values)
        if seeds is None:
            generator = check_rng(rng)
            seeds = generator.random(self.r)
        seeds = [float(u) for u in seeds]
        sampled = {
            i
            for i in range(self.r)
            if values[i] >= seeds[i] * self.tau_star[i] and values[i] > 0.0
        }
        seed_payload = (
            {i: seeds[i] for i in range(self.r)} if self.known_seeds else None
        )
        return VectorOutcome.from_vector(values, sampled, seeds=seed_payload)

    def sample_many(
        self,
        values: Sequence[float],
        n_samples: int,
        rng: np.random.Generator | int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised sampling.

        Returns ``(mask, seeds)`` where ``mask`` is an ``(n_samples, r)``
        boolean inclusion matrix and ``seeds`` the matching uniform seeds.
        """
        values = np.asarray(self._check_values(values), dtype=float)
        generator = check_rng(rng)
        seeds = generator.random((int(n_samples), self.r))
        thresholds = np.asarray(self.tau_star, dtype=float)
        mask = (values >= seeds * thresholds) & (values > 0.0)
        return mask, seeds

    def _check_values(self, values: Sequence[float]) -> tuple[float, ...]:
        if len(values) != self.r:
            raise InvalidParameterError(
                f"expected a vector with {self.r} entries, got {len(values)}"
            )
        values = tuple(float(v) for v in values)
        if any(v < 0.0 for v in values):
            raise InvalidParameterError("values must be nonnegative")
        return values
