"""Poisson sampling of a single instance (Section 7.1).

In a Poisson sample every key is included independently.  Two flavours are
provided:

* **weighted** Poisson sampling via a rank family and threshold ``tau``:
  key ``h`` is included iff its rank ``F_{v(h)}^{-1}(u(h))`` is below ``tau``.
  With PPS ranks the inclusion probability is ``min(1, v(h) * tau)``, i.e.
  probability proportional to size.
* **weight-oblivious** Poisson sampling: key ``h`` is included iff
  ``u(h) <= p``, regardless of its value.

Both produce :class:`PoissonSample` objects that retain the per-key inclusion
probabilities (and, for known-seed estimation, the seed assigner), and offer
the classic Horvitz-Thompson subset-sum estimator.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro._validation import check_positive, check_probability
from repro.exceptions import InvalidParameterError
from repro.sampling.ranks import (
    PpsRanks,
    RankFamily,
    poisson_threshold_for_expected_size,
)
from repro.sampling.seeds import SeedAssigner

__all__ = [
    "PoissonSample",
    "poisson_pps_sample",
    "poisson_uniform_sample",
    "poisson_weighted_sample",
]


@dataclass(frozen=True)
class PoissonSample:
    """A Poisson sample of one instance.

    Attributes
    ----------
    instance:
        Label of the instance the sample summarises.
    entries:
        Mapping ``key -> value`` of the sampled keys.
    inclusion_probabilities:
        Mapping ``key -> probability`` for the sampled keys.
    threshold:
        The sampling threshold ``tau`` (``None`` for weight-oblivious
        sampling with fixed probability).
    probability:
        The fixed inclusion probability for weight-oblivious sampling
        (``None`` for weighted sampling).
    seed_assigner:
        The :class:`SeedAssigner` used, when seeds are *known* and therefore
        available to downstream estimators.  ``None`` models unknown seeds.
    rank_family_name:
        Name of the rank family used for weighted sampling.
    """

    instance: object
    entries: Mapping[object, float]
    inclusion_probabilities: Mapping[object, float]
    threshold: float | None = None
    probability: float | None = None
    seed_assigner: SeedAssigner | None = field(default=None, repr=False)
    rank_family_name: str = "pps"

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: object) -> bool:
        return key in self.entries

    @property
    def keys(self) -> set:
        """Set of sampled keys."""
        return set(self.entries)

    @property
    def knows_seeds(self) -> bool:
        """Whether downstream estimators may query seeds of unsampled keys."""
        return self.seed_assigner is not None

    def seed_of(self, key: object) -> float:
        """Return the (known) seed of ``key`` in this instance."""
        if self.seed_assigner is None:
            raise InvalidParameterError(
                "seeds are not available for this sample (unknown-seed model)"
            )
        return self.seed_assigner.seed(key, instance=self.instance)

    def inclusion_probability_of(self, key: object, value: float) -> float:
        """Inclusion probability of a key given its (hypothetical) value.

        For weight-oblivious sampling this is the fixed probability; for
        weighted PPS sampling it is ``min(1, value * tau)``.
        """
        if self.probability is not None:
            return self.probability
        if self.threshold is None:  # pragma: no cover - defensive
            raise InvalidParameterError("sample lacks a threshold")
        return float(min(1.0, float(value) * self.threshold))

    def horvitz_thompson_total(
        self, predicate: Callable[[object], bool] | None = None
    ) -> float:
        """HT estimate of the subset-sum of values over selected keys."""
        total = 0.0
        for key, value in self.entries.items():
            if predicate is not None and not predicate(key):
                continue
            total += value / self.inclusion_probabilities[key]
        return total


def _as_items(values: Mapping[object, float]) -> tuple[list, np.ndarray]:
    keys = list(values.keys())
    vals = np.asarray([float(values[k]) for k in keys], dtype=float)
    if np.any(vals < 0.0):
        raise InvalidParameterError("values must be nonnegative")
    return keys, vals


def poisson_uniform_sample(
    values: Mapping[object, float],
    probability: float,
    seed_assigner: SeedAssigner | None = None,
    instance: object = 0,
    rng: np.random.Generator | int | None = None,
) -> PoissonSample:
    """Weight-oblivious Poisson sample: every key kept with ``probability``.

    When ``seed_assigner`` is provided the inclusion decision is the
    deterministic test ``u(key) <= probability`` (known seeds); otherwise a
    fresh pseudo-random draw from ``rng`` is used (unknown seeds).
    """
    probability = check_probability(probability)
    keys, vals = _as_items(values)
    if seed_assigner is not None:
        seeds = seed_assigner.seeds(keys, instance=instance)
    else:
        generator = np.random.default_rng(rng)
        seeds = generator.random(len(keys))
    mask = seeds <= probability
    entries = {k: float(v) for k, v, m in zip(keys, vals, mask) if m}
    probs = {k: probability for k in entries}
    return PoissonSample(
        instance=instance,
        entries=entries,
        inclusion_probabilities=probs,
        probability=probability,
        seed_assigner=seed_assigner,
        rank_family_name="uniform",
    )


def poisson_weighted_sample(
    values: Mapping[object, float],
    rank_family: RankFamily,
    threshold: float | None = None,
    expected_size: float | None = None,
    seed_assigner: SeedAssigner | None = None,
    instance: object = 0,
    rng: np.random.Generator | int | None = None,
) -> PoissonSample:
    """Weighted Poisson sample defined by ``rank_family`` and ``threshold``.

    Exactly one of ``threshold`` and ``expected_size`` must be given; with
    ``expected_size`` the threshold is solved so that the expected sample
    size matches.
    """
    if (threshold is None) == (expected_size is None):
        raise InvalidParameterError(
            "exactly one of threshold and expected_size must be provided"
        )
    keys, vals = _as_items(values)
    if threshold is None:
        threshold = poisson_threshold_for_expected_size(
            rank_family, vals, float(expected_size)
        )
    else:
        threshold = check_positive(threshold, "threshold")
    if seed_assigner is not None:
        seeds = seed_assigner.seeds(keys, instance=instance)
    else:
        generator = np.random.default_rng(rng)
        seeds = generator.random(len(keys))
    ranks = rank_family.rank(vals, seeds)
    mask = ranks < threshold
    entries = {k: float(v) for k, v, m in zip(keys, vals, mask) if m}
    inclusion = rank_family.inclusion_probability(vals, threshold)
    probs = {
        k: float(p) for k, p, m in zip(keys, inclusion, mask) if m
    }
    return PoissonSample(
        instance=instance,
        entries=entries,
        inclusion_probabilities=probs,
        threshold=float(threshold),
        seed_assigner=seed_assigner,
        rank_family_name=rank_family.name,
    )


def poisson_pps_sample(
    values: Mapping[object, float],
    threshold: float | None = None,
    expected_size: float | None = None,
    seed_assigner: SeedAssigner | None = None,
    instance: object = 0,
    rng: np.random.Generator | int | None = None,
) -> PoissonSample:
    """Poisson PPS sample: key kept with probability ``min(1, v(h) * tau)``.

    This is the scheme used by the paper's Section 5.2 and Section 8
    experiments (with ``tau = 1 / tau_star``).
    """
    return poisson_weighted_sample(
        values,
        rank_family=PpsRanks(),
        threshold=threshold,
        expected_size=expected_size,
        seed_assigner=seed_assigner,
        instance=instance,
        rng=rng,
    )
