"""Reproducible random seeds for keys and instances.

The paper distinguishes two regimes for weighted sampling:

* **known seeds** — the uniform random seed ``u_i(h)`` used to sample key
  ``h`` in instance ``i`` is produced by a random hash function and is
  therefore available to the estimator even for keys that were *not*
  sampled.  Knowing the seed reveals an upper bound on the unsampled value
  (``v_i(h) < tau_i(u_i(h))``), which is exactly the partial information the
  optimal estimators exploit.
* **unknown seeds** — the randomization is not reproducible; Section 6 of the
  paper shows that several functions then admit no unbiased nonnegative
  estimator at all.

:class:`SeedAssigner` implements the known-seed model with a deterministic
hash: the seed of a (key, instance) pair is a pure function of the key, the
instance label and a salt.  Setting ``coordinated=True`` drops the instance
label from the hash, which yields shared-seed (coordinated / PRN) sampling:
every instance sees the same seed for a given key.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["SeedAssigner", "key_hashes", "splitmix64", "uniform_from_uint64"]

_UINT64_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)
#: 2**-64 as a float; multiplying a uint64 by this maps it into [0, 1).
_INV_2_64 = float(np.ldexp(1.0, -64))


def splitmix64(values: np.ndarray) -> np.ndarray:
    """Apply the SplitMix64 finalizer to an array of ``uint64`` values.

    SplitMix64 is a well-mixed invertible permutation of the 64-bit integers,
    which makes it a good stand-in for the "random hash function" the paper
    assumes.  The function is vectorised so that a whole key column can be
    hashed in one call.
    """
    z = np.asarray(values, dtype=np.uint64).copy()
    with np.errstate(over="ignore"):
        z = (z + np.uint64(0x9E3779B97F4A7C15)) & _UINT64_MASK
        z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _UINT64_MASK
        z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _UINT64_MASK
        z = z ^ (z >> np.uint64(31))
    return z


def uniform_from_uint64(values: np.ndarray) -> np.ndarray:
    """Map ``uint64`` hash values to floats uniform on the open interval (0, 1).

    The end points are excluded so that downstream divisions by the seed and
    logarithms of ``1 - u`` are always finite.
    """
    u = np.asarray(values, dtype=np.uint64).astype(np.float64) * _INV_2_64
    tiny = np.finfo(np.float64).tiny
    return np.clip(u, tiny, 1.0 - np.finfo(np.float64).epsneg)


def _hash_label(label: object) -> int:
    """Hash an arbitrary (hashable, printable) label to a stable 64-bit int."""
    if isinstance(label, (int, np.integer)) and not isinstance(label, bool):
        return int(label) & 0xFFFFFFFFFFFFFFFF
    digest = hashlib.blake2b(repr(label).encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "little")


def key_hashes(keys: Sequence[object]) -> np.ndarray:
    """Hash a key column to well-mixed ``uint64`` values.

    Nonnegative integer keys are hashed fully vectorised; other key types
    (including negative integers, which cannot be cast to ``uint64``
    directly) fall back to a per-key hash.  The result feeds both the seed
    assignment (via :meth:`SeedAssigner.seeds_from_hashes`) and key sharding
    in the streaming engine, so a key's shard and its seeds derive from one
    hash pass.
    """
    if isinstance(keys, np.ndarray) and keys.dtype.kind in "iu":
        # A NumPy integer column hashes without building per-key Python
        # objects.  Casting to uint64 wraps negatives modulo 2**64 —
        # exactly what ``_hash_label``'s ``int(label) & MASK`` computes —
        # so the vectorized path is bit-identical to the fallback.
        with np.errstate(over="ignore"):
            return splitmix64(keys.astype(np.uint64))
    keys = list(keys)
    if keys and all(
        isinstance(k, (int, np.integer))
        and not isinstance(k, bool)
        and 0 <= k <= 0xFFFFFFFFFFFFFFFF
        for k in keys
    ):
        return splitmix64(np.asarray(keys, dtype=np.uint64))
    return splitmix64(
        np.array([_hash_label(k) for k in keys], dtype=np.uint64)
    )


class SeedAssigner:
    """Deterministic per-(key, instance) uniform seeds.

    Parameters
    ----------
    salt:
        Integer that selects the hash function.  Two assigners with the same
        salt produce identical seeds; different salts give (practically)
        independent seed assignments.
    coordinated:
        When ``True`` the instance label is ignored, so every instance shares
        the seed of a key.  This is the PRN / shared-seed coordination model
        of Section 7.2.  When ``False`` (default) seeds of different
        instances are independent.

    Examples
    --------
    >>> seeds = SeedAssigner(salt=7)
    >>> 0.0 < seeds.seed("alice", instance=1) < 1.0
    True
    >>> seeds.seed("alice", instance=1) == seeds.seed("alice", instance=1)
    True
    """

    def __init__(self, salt: int = 0, coordinated: bool = False) -> None:
        self.salt = int(salt)
        self.coordinated = bool(coordinated)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SeedAssigner(salt={self.salt}, coordinated={self.coordinated})"
        )

    # Seed assignment is a pure function of (salt, coordinated), so two
    # assigners with equal configuration are interchangeable — the property
    # the sketch codec relies on to round-trip assigners by configuration.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SeedAssigner):
            return NotImplemented
        return (
            self.salt == other.salt
            and self.coordinated == other.coordinated
        )

    def __hash__(self) -> int:
        return hash((SeedAssigner, self.salt, self.coordinated))

    def _mix(self, key_hashes: np.ndarray, instance: object) -> np.ndarray:
        instance_hash = 0 if self.coordinated else _hash_label(instance)
        base = np.asarray(key_hashes, dtype=np.uint64)
        with np.errstate(over="ignore"):
            mixed = base ^ splitmix64(
                np.uint64((instance_hash * 0x9E3779B97F4A7C15 + self.salt)
                          & 0xFFFFFFFFFFFFFFFF)
            )
        return splitmix64(mixed)

    def seed(self, key: object, instance: object = 0) -> float:
        """Return the uniform seed of ``key`` in ``instance``."""
        return float(self.seeds([key], instance=instance)[0])

    def seeds(self, keys: Iterable[object], instance: object = 0) -> np.ndarray:
        """Return the uniform seeds of several keys in one instance.

        Integer keys are hashed fully vectorised; other key types fall back
        to a per-key hash.
        """
        return self.seeds_from_hashes(key_hashes(list(keys)), instance)

    def seeds_from_hashes(
        self, hashes: np.ndarray, instance: object = 0
    ) -> np.ndarray:
        """Return uniform seeds from precomputed :func:`key_hashes`.

        Lets callers that already hashed the key column (e.g. the streaming
        engine, which shards by key hash) avoid hashing it a second time.
        """
        return uniform_from_uint64(self._mix(hashes, instance))

    def seed_map(
        self, keys: Sequence[object], instance: object = 0
    ) -> dict[object, float]:
        """Return a ``{key: seed}`` mapping for ``keys`` in ``instance``."""
        values = self.seeds(keys, instance=instance)
        return {key: float(u) for key, u in zip(keys, values)}
