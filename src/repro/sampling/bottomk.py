"""Bottom-k (order) sampling and subset-sum estimation (Section 7.1).

A bottom-k sample keeps the ``k`` keys of smallest rank.  With PPS ranks this
is priority sampling; with exponential ranks it is successive weighted
sampling without replacement.  The subset-sum estimator uses *rank
conditioning* (RC): conditioned on the ranks of all other keys being fixed,
the inclusion probability of a sampled key ``h`` is ``F_{v(h)}(tau)`` where
``tau`` is the ``(k+1)``-st smallest rank, and the per-key estimate is the
inverse of that probability times the value.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.sampling.ranks import ExpRanks, PpsRanks, RankFamily
from repro.sampling.seeds import SeedAssigner

__all__ = ["BottomKSample", "bottom_k_sample", "priority_sample"]


@dataclass(frozen=True)
class BottomKSample:
    """A bottom-k sample of one instance.

    Attributes
    ----------
    instance:
        Label of the summarised instance.
    entries:
        Mapping ``key -> value`` for the ``k`` lowest-ranked keys.
    ranks:
        Mapping ``key -> rank`` for the sampled keys.
    threshold:
        The ``(k+1)``-st smallest rank (``inf`` when fewer than ``k+1`` keys
        exist), used by the rank-conditioning estimator.
    k:
        The nominal sample size.
    rank_family:
        The rank family used (needed to compute conditional inclusion
        probabilities).
    seed_assigner:
        Seed assigner when seeds are known, else ``None``.
    """

    instance: object
    entries: Mapping[object, float]
    ranks: Mapping[object, float]
    threshold: float
    k: int
    rank_family: RankFamily = field(repr=False)
    seed_assigner: SeedAssigner | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: object) -> bool:
        return key in self.entries

    @property
    def keys(self) -> set:
        """Set of sampled keys."""
        return set(self.entries)

    def conditional_inclusion_probability(self, key: object) -> float:
        """RC inclusion probability ``F_{v(key)}(tau)`` of a sampled key."""
        if key not in self.entries:
            raise InvalidParameterError(f"key {key!r} is not in the sample")
        if not np.isfinite(self.threshold):
            return 1.0
        return float(
            self.rank_family.cdf(self.entries[key], self.threshold)
        )

    def rank_conditioning_total(
        self, predicate: Callable[[object], bool] | None = None
    ) -> float:
        """Rank-conditioning (RC) estimate of a subset-sum of values."""
        total = 0.0
        for key, value in self.entries.items():
            if predicate is not None and not predicate(key):
                continue
            total += value / self.conditional_inclusion_probability(key)
        return total

    def priority_total(
        self, predicate: Callable[[object], bool] | None = None
    ) -> float:
        """Priority-sampling estimate ``sum max(v, 1/tau)`` (PPS ranks only)."""
        if not isinstance(self.rank_family, PpsRanks):
            raise InvalidParameterError(
                "the priority estimator is defined for PPS ranks only"
            )
        if not np.isfinite(self.threshold):
            adjusted = dict(self.entries)
        else:
            adjusted = {
                key: max(value, 1.0 / self.threshold)
                for key, value in self.entries.items()
            }
        return sum(
            value
            for key, value in adjusted.items()
            if predicate is None or predicate(key)
        )


def bottom_k_sample(
    values: Mapping[object, float],
    k: int,
    rank_family: RankFamily | None = None,
    seed_assigner: SeedAssigner | None = None,
    instance: object = 0,
    rng: np.random.Generator | int | None = None,
) -> BottomKSample:
    """Draw a bottom-k sample of ``values``.

    Keys with value zero receive infinite rank and are never sampled, as
    required by weighted sampling.  When fewer than ``k`` keys have positive
    value, all of them are kept and the threshold is infinite.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if rank_family is None:
        rank_family = ExpRanks()
    keys = list(values.keys())
    vals = np.asarray([float(values[key]) for key in keys], dtype=float)
    if np.any(vals < 0.0):
        raise InvalidParameterError("values must be nonnegative")
    if seed_assigner is not None:
        seeds = seed_assigner.seeds(keys, instance=instance)
    else:
        generator = np.random.default_rng(rng)
        seeds = generator.random(len(keys))
    ranks = rank_family.rank(vals, seeds)
    # Only the k+1 smallest ranks matter (the sample plus the threshold), so
    # select them in O(n) with argpartition and sort just that slice.  All
    # finite ranks are below the infinite ones, hence always inside the
    # selected slice when fewer than k+1 of them exist.
    if ranks.size > k + 1:
        candidates = np.argpartition(ranks, k)[: k + 1]
        candidates.sort()
    else:
        candidates = np.arange(ranks.size)
    order = candidates[np.argsort(ranks[candidates], kind="stable")]
    finite = [i for i in order if np.isfinite(ranks[i])]
    chosen = finite[:k]
    if len(finite) > k:
        threshold = float(ranks[finite[k]])
    else:
        threshold = float("inf")
    entries = {keys[i]: float(vals[i]) for i in chosen}
    sample_ranks = {keys[i]: float(ranks[i]) for i in chosen}
    return BottomKSample(
        instance=instance,
        entries=entries,
        ranks=sample_ranks,
        threshold=threshold,
        k=int(k),
        rank_family=rank_family,
        seed_assigner=seed_assigner,
    )


def priority_sample(
    values: Mapping[object, float],
    k: int,
    seed_assigner: SeedAssigner | None = None,
    instance: object = 0,
    rng: np.random.Generator | int | None = None,
) -> BottomKSample:
    """Priority sample: bottom-k sample with PPS ranks."""
    return bottom_k_sample(
        values,
        k,
        rank_family=PpsRanks(),
        seed_assigner=seed_assigner,
        instance=instance,
        rng=rng,
    )
