"""VarOpt sampling (Chao 1982; Cohen, Duffield, Kaplan, Lund, Thorup 2009).

VarOpt_k draws a fixed-size sample of ``k`` keys with PPS (threshold)
inclusion probabilities and non-positively correlated inclusions, which makes
the Horvitz-Thompson subset-sum estimator variance optimal among fixed-size
unbiased schemes.  The paper lists VarOpt as one of the single-instance
sampling schemes its multi-instance estimators can sit on top of (it is not
clear how to add "known seeds" to VarOpt, which the paper also notes).

The implementation below is the classic streaming reservoir algorithm: keep
a set ``L`` of "large" keys (kept with probability one, estimate equals the
true value) and a uniform-threshold set ``T`` of "small" keys (kept with
probability ``w / tau``, estimate ``tau``), maintaining ``|L| + |T| = k``.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from repro._validation import check_rng
from repro.exceptions import InvalidParameterError

__all__ = ["VarOptSample", "varopt_sample", "varopt_threshold"]


@dataclass(frozen=True)
class VarOptSample:
    """A VarOpt_k sample.

    Attributes
    ----------
    entries:
        Mapping ``key -> value`` of sampled keys.
    adjusted_weights:
        Mapping ``key -> HT adjusted weight`` (``max(value, tau)``).
    threshold:
        Final threshold ``tau``; keys with value below ``tau`` were kept with
        probability ``value / tau``.
    k:
        Nominal sample size.
    instance:
        Label of the summarised instance.
    """

    entries: Mapping[object, float]
    adjusted_weights: Mapping[object, float]
    threshold: float
    k: int
    instance: object = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: object) -> bool:
        return key in self.entries

    @property
    def keys(self) -> set:
        """Set of sampled keys."""
        return set(self.entries)

    def inclusion_probability_of(self, value: float) -> float:
        """Inclusion probability of a key with ``value`` under the final
        threshold."""
        if self.threshold <= 0.0:
            return 1.0
        return float(min(1.0, float(value) / self.threshold))

    def total(
        self, predicate: Callable[[object], bool] | None = None
    ) -> float:
        """HT estimate of the subset-sum of values over selected keys."""
        return sum(
            weight
            for key, weight in self.adjusted_weights.items()
            if predicate is None or predicate(key)
        )


def varopt_threshold(values: np.ndarray, k: int) -> float:
    """Return the threshold ``tau`` with ``sum min(1, v / tau) = k``.

    ``tau`` is zero when there are at most ``k`` positive values (everything
    is kept exactly).
    """
    values = np.sort(np.asarray(values, dtype=float))[::-1]
    positive = values[values > 0.0]
    if positive.size <= k:
        return 0.0
    # With the key values sorted in decreasing order, assume the t largest
    # values exceed tau; then tau = (sum of the rest) / (k - t).
    suffix_sums = np.concatenate(
        [np.cumsum(positive[::-1])[::-1], [0.0]]
    )
    for t in range(0, k + 1):
        if t >= positive.size:
            break
        remaining = suffix_sums[t]
        denominator = k - t
        if denominator <= 0:
            break
        tau = remaining / denominator
        largest_rest = positive[t]
        if largest_rest <= tau and (t == 0 or positive[t - 1] >= tau):
            return float(tau)
    # Fallback: bisection (should not normally be reached).
    low, high = 0.0, float(positive[0])
    for _ in range(200):
        mid = 0.5 * (low + high)
        size = float(np.sum(np.minimum(1.0, positive / mid)))
        if size > k:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def varopt_sample(
    values: Mapping[object, float],
    k: int,
    instance: object = 0,
    rng: np.random.Generator | int | None = None,
) -> VarOptSample:
    """Draw a VarOpt_k sample of ``values`` using the streaming algorithm.

    The returned sample has exactly ``min(k, #positive keys)`` keys, PPS
    inclusion probabilities with respect to the final threshold, and HT
    adjusted weights ``max(value, tau)``.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    generator = check_rng(rng)

    large: dict[object, float] = {}      # kept exactly (value > tau)
    small: dict[object, float] = {}      # kept with probability value / tau
    tau = 0.0

    for key, raw_value in values.items():
        value = float(raw_value)
        if value < 0.0:
            raise InvalidParameterError("values must be nonnegative")
        if value == 0.0:
            continue
        large[key] = value
        if len(large) + len(small) <= k:
            continue
        # One key too many: raise the threshold until one key (in
        # expectation) leaves the small set.
        candidates = sorted(large.items(), key=lambda item: item[1])
        moved = dict(small)
        remaining_large = dict(candidates)
        # Move small-valued "large" keys into the threshold pool until the
        # threshold determined by the pool no longer exceeds the smallest
        # remaining large value.
        pool_sum = sum(moved.values())
        pool_count = len(moved)
        index = 0
        while True:
            slots = k - (len(remaining_large) - index)
            # slots available for the threshold pool if we move `index`
            # smallest large keys into it
            tau_candidate = (
                (pool_sum) / slots if slots > 0 else float("inf")
            )
            if index < len(candidates) and candidates[index][1] <= tau_candidate:
                pool_sum += candidates[index][1]
                pool_count += 1
                index += 1
                continue
            break
        slots = k - (len(candidates) - index)
        tau = pool_sum / slots if slots > 0 else pool_sum
        new_small_candidates = dict(moved)
        for key2, value2 in candidates[:index]:
            new_small_candidates[key2] = value2
        remaining = {key2: value2 for key2, value2 in candidates[index:]}
        # Drop one key from the pool with VarOpt probabilities: key j is
        # dropped with probability proportional to (1 - w_j / tau) for keys
        # previously in `large`, and, for keys already in `small` (which were
        # at the old threshold), proportional to (1 - tau_old / tau).  The
        # classic implementation uses a single uniform draw over the pool.
        pool_keys = list(new_small_candidates.keys())
        drop_probabilities = np.array(
            [
                max(0.0, 1.0 - new_small_candidates[key2] / tau)
                if key2 not in small
                else max(0.0, 1.0 - min(small[key2], tau) / tau)
                for key2 in pool_keys
            ]
        )
        total_drop = float(drop_probabilities.sum())
        if total_drop <= 0.0:
            # Degenerate (all pool values equal tau): drop uniformly.
            drop_index = int(generator.integers(len(pool_keys)))
        else:
            drop_probabilities = drop_probabilities / total_drop
            drop_index = int(
                generator.choice(len(pool_keys), p=drop_probabilities)
            )
        dropped_key = pool_keys[drop_index]
        del new_small_candidates[dropped_key]
        small = {key2: tau for key2 in new_small_candidates}
        large = remaining

    entries = {**large, **{key: float(values[key]) for key in small}}
    adjusted = {**large, **{key: tau for key in small}}
    return VarOptSample(
        entries=entries,
        adjusted_weights=adjusted,
        threshold=float(tau),
        k=int(k),
        instance=instance,
    )
