"""Workload generators and the paper's worked example.

``synthetic``
    Heavy-tailed (Zipf) traffic workloads, correlated instance pairs, set
    pairs with a target Jaccard coefficient, and sensor-style measurement
    matrices.  The Zipf traffic pair substitutes for the proprietary IP-flow
    traces used in Section 8.2 (see DESIGN.md).

``example_data``
    The exact 3-instances x 6-keys example of Figure 5, including the seed
    values the paper lists, used to reproduce the rank assignments and
    bottom-3 samples.
"""

from repro.datasets.example_data import (
    FIGURE5_DATASET,
    FIGURE5_SEEDS_INDEPENDENT,
    FIGURE5_SEEDS_SHARED,
    figure5_dataset,
)
from repro.datasets.synthetic import (
    correlated_instance_pair,
    sensor_measurements,
    set_pair_with_jaccard,
    zipf_traffic_pair,
)

__all__ = [
    "FIGURE5_DATASET",
    "FIGURE5_SEEDS_SHARED",
    "FIGURE5_SEEDS_INDEPENDENT",
    "figure5_dataset",
    "zipf_traffic_pair",
    "correlated_instance_pair",
    "set_pair_with_jaccard",
    "sensor_measurements",
]
