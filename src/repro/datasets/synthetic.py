"""Synthetic workload generators.

The paper's Section 8.2 experiment uses two consecutive hours of IP traffic
(destination address -> number of flows).  That trace is proprietary, so the
reproduction generates a heavy-tailed (Zipf-like) workload with two
correlated instances whose summary statistics are matched to the published
ones: per-instance key count, overlap between the instances, and total flow
count.  The estimators only see per-key value pairs and sampling thresholds,
so a matched synthetic workload exercises exactly the same code paths.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_rng, check_unit_interval
from repro.aggregates.dataset import MultiInstanceDataset
from repro.exceptions import InvalidParameterError

__all__ = [
    "zipf_traffic_pair",
    "correlated_instance_pair",
    "set_pair_with_jaccard",
    "sensor_measurements",
]


def zipf_traffic_pair(
    n_keys_per_instance: int = 24_500,
    n_common_keys: int | None = None,
    total_flows: float = 5.5e5,
    zipf_exponent: float = 1.1,
    value_noise: float = 0.35,
    rng: np.random.Generator | int | None = None,
) -> MultiInstanceDataset:
    """Two consecutive "hours" of destination-IP flow counts.

    Parameters
    ----------
    n_keys_per_instance:
        Number of active keys in each instance (the paper reports ~2.45e4).
    n_common_keys:
        Number of keys active in both instances.  Defaults to the value that
        matches the paper's total of ~3.8e4 distinct keys.
    total_flows:
        Total flow count per instance (the paper reports ~5.5e5).
    zipf_exponent:
        Exponent of the Zipf-like popularity distribution of flow counts.
    value_noise:
        Log-normal multiplicative noise applied between the two hours for
        keys present in both, modelling hour-to-hour variation.
    rng:
        Random generator or seed.
    """
    generator = check_rng(rng)
    if n_common_keys is None:
        # 2 * per-instance - common = distinct  =>  common = 2n - distinct.
        n_common_keys = max(2 * n_keys_per_instance - 38_000, 0)
    if n_common_keys > n_keys_per_instance:
        raise InvalidParameterError(
            "n_common_keys cannot exceed n_keys_per_instance"
        )
    n_only = n_keys_per_instance - n_common_keys
    n_distinct = n_common_keys + 2 * n_only

    # Zipf-like base popularity over the distinct keys.
    ranks = np.arange(1, n_distinct + 1, dtype=float)
    base = ranks ** (-zipf_exponent)
    generator.shuffle(base)

    keys = np.arange(n_distinct)
    common = keys[:n_common_keys]
    only1 = keys[n_common_keys:n_common_keys + n_only]
    only2 = keys[n_common_keys + n_only:]

    def flows(base_values: np.ndarray) -> np.ndarray:
        noise = generator.lognormal(mean=0.0, sigma=value_noise,
                                    size=base_values.size)
        raw = base_values * noise
        return np.maximum(np.rint(raw / raw.sum() * total_flows), 1.0)

    instance1 = {}
    instance2 = {}
    values1 = flows(base[np.concatenate([common, only1])])
    for key, value in zip(np.concatenate([common, only1]), values1):
        instance1[int(key)] = float(value)
    values2 = flows(base[np.concatenate([common, only2])])
    for key, value in zip(np.concatenate([common, only2]), values2):
        instance2[int(key)] = float(value)
    return MultiInstanceDataset({"hour1": instance1, "hour2": instance2})


def correlated_instance_pair(
    n_keys: int = 1000,
    correlation: float = 0.8,
    scale: float = 100.0,
    sparsity: float = 0.1,
    rng: np.random.Generator | int | None = None,
) -> MultiInstanceDataset:
    """Two instances whose per-key values are positively correlated.

    Each key receives a base value from an exponential distribution with
    mean ``scale``; the second instance mixes the base value with fresh
    noise according to ``correlation`` and each instance independently
    zeroes a ``sparsity`` fraction of keys (modelling churn).
    """
    correlation = check_unit_interval(correlation, "correlation")
    sparsity = check_unit_interval(sparsity, "sparsity")
    generator = check_rng(rng)
    base = generator.exponential(scale, size=n_keys)
    noise = generator.exponential(scale, size=n_keys)
    second = correlation * base + (1.0 - correlation) * noise
    drop1 = generator.random(n_keys) < sparsity
    drop2 = generator.random(n_keys) < sparsity
    instance1 = {
        i: float(v) for i, v in enumerate(np.where(drop1, 0.0, base)) if v > 0
    }
    instance2 = {
        i: float(v) for i, v in enumerate(np.where(drop2, 0.0, second)) if v > 0
    }
    return MultiInstanceDataset({"a": instance1, "b": instance2})


def set_pair_with_jaccard(
    n_per_set: int,
    jaccard: float,
    rng: np.random.Generator | int | None = None,
) -> tuple[set[int], set[int]]:
    """Two key sets of equal size with (approximately) a target Jaccard
    coefficient.

    With ``|N_1| = |N_2| = n`` and Jaccard ``J``, the intersection size is
    ``2 n J / (1 + J)`` (rounded); keys are drawn as consecutive integers and
    shuffled labels are unnecessary because estimators only use per-key hash
    seeds.
    """
    jaccard = check_unit_interval(jaccard, "jaccard")
    if n_per_set <= 0:
        raise InvalidParameterError("n_per_set must be positive")
    intersection = int(round(2 * n_per_set * jaccard / (1.0 + jaccard)))
    intersection = min(intersection, n_per_set)
    only = n_per_set - intersection
    common = set(range(intersection))
    set1 = common | set(range(intersection, intersection + only))
    set2 = common | set(
        range(intersection + only, intersection + 2 * only)
    )
    return set1, set2


def sensor_measurements(
    n_sensors: int = 500,
    n_periods: int = 4,
    drift: float = 0.05,
    spike_probability: float = 0.02,
    spike_scale: float = 10.0,
    rng: np.random.Generator | int | None = None,
) -> MultiInstanceDataset:
    """Sensor readings collected over several time periods.

    Readings drift slowly between periods and occasionally spike, the
    scenario motivating multi-instance quantile and range queries (change /
    anomaly detection over dispersed measurements).
    """
    generator = check_rng(rng)
    base = generator.gamma(shape=2.0, scale=10.0, size=n_sensors)
    instances: dict[object, dict[object, float]] = {}
    current = base.copy()
    for period in range(n_periods):
        spikes = generator.random(n_sensors) < spike_probability
        values = current * np.where(
            spikes, generator.uniform(2.0, spike_scale, size=n_sensors), 1.0
        )
        instances[f"period{period}"] = {
            sensor: float(value)
            for sensor, value in enumerate(values)
            if value > 0.0
        }
        current = current * generator.lognormal(0.0, drift, size=n_sensors)
    return MultiInstanceDataset(instances)
