"""The worked example of Figure 5 of the paper.

Figure 5 shows a data set of 6 keys and 3 instances, per-key values of the
example aggregates, PPS rank assignments under shared-seed (coordinated) and
independent sampling, and the resulting bottom-3 samples.  Reproducing it
end to end exercises the rank / bottom-k substrate.
"""

from __future__ import annotations

from repro.aggregates.dataset import MultiInstanceDataset

__all__ = [
    "FIGURE5_DATASET",
    "FIGURE5_SEEDS_SHARED",
    "FIGURE5_SEEDS_INDEPENDENT",
    "FIGURE5_EXPECTED_BOTTOM3_SHARED",
    "FIGURE5_PAPER_PRINTED_BOTTOM3_SHARED",
    "FIGURE5_EXPECTED_BOTTOM3_INDEPENDENT",
    "figure5_dataset",
]

#: Values of the 6 keys in the 3 instances (Figure 5 (A)).
FIGURE5_VALUES: dict[int, dict[int, float]] = {
    1: {1: 15, 2: 0, 3: 10, 4: 5, 5: 10, 6: 10},
    2: {1: 20, 2: 10, 3: 12, 4: 20, 5: 0, 6: 10},
    3: {1: 10, 2: 15, 3: 15, 4: 0, 5: 15, 6: 10},
}

#: Shared (coordinated) per-key seeds used in Figure 5 (B), identical for
#: every instance.
FIGURE5_SEEDS_SHARED: dict[int, float] = {
    1: 0.22, 2: 0.75, 3: 0.07, 4: 0.92, 5: 0.55, 6: 0.37,
}

#: Independent per-instance seeds used in Figure 5 (B).
FIGURE5_SEEDS_INDEPENDENT: dict[int, dict[int, float]] = {
    1: {1: 0.22, 2: 0.75, 3: 0.07, 4: 0.92, 5: 0.55, 6: 0.37},
    2: {1: 0.47, 2: 0.58, 3: 0.71, 4: 0.84, 5: 0.25, 6: 0.32},
    3: {1: 0.63, 2: 0.92, 3: 0.08, 4: 0.59, 5: 0.32, 6: 0.80},
}

#: Bottom-3 samples for shared-seed sampling implied by the seeds and values
#: of Figure 5.  Note: the paper prints ``{1, 6, 4}`` for instance 2, but the
#: shared seed of key 3 gives rank ``0.07 / 12 = 0.00583`` (the paper's rank
#: table prints ``0.0583``, an apparent typo), which places key 3 in the
#: bottom-3 of instance 2.  The value below follows the arithmetic; the
#: paper's printed sample is kept in
#: :data:`FIGURE5_PAPER_PRINTED_BOTTOM3_SHARED`.
FIGURE5_EXPECTED_BOTTOM3_SHARED: dict[int, set[int]] = {
    1: {3, 1, 6},
    2: {3, 1, 6},
    3: {3, 1, 5},
}

#: The bottom-3 samples exactly as printed in Figure 5 (C) of the paper.
FIGURE5_PAPER_PRINTED_BOTTOM3_SHARED: dict[int, set[int]] = {
    1: {3, 1, 6},
    2: {1, 6, 4},
    3: {3, 1, 5},
}

#: Bottom-3 samples reported in Figure 5 (C) for independent sampling.
FIGURE5_EXPECTED_BOTTOM3_INDEPENDENT: dict[int, set[int]] = {
    1: {3, 1, 6},
    2: {1, 6, 4},
    3: {3, 5, 2},
}

#: The dataset as a :class:`MultiInstanceDataset` (zero values dropped).
FIGURE5_DATASET = MultiInstanceDataset(FIGURE5_VALUES)


def figure5_dataset() -> MultiInstanceDataset:
    """Return a fresh copy of the Figure 5 data set."""
    return MultiInstanceDataset(FIGURE5_VALUES)
