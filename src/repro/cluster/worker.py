"""Shard-worker process: applies its shard group's slice of every batch.

Each worker owns the shards ``s`` of every engine where ``s %
n_workers == worker_id``.  For an incoming column batch it recomputes
the engine's own key -> shard routing (``key_hashes(keys) %
n_shards``), keeps only the rows whose shard it owns, and runs the
engine's normal :meth:`StreamEngine.ingest_jobs` plan on that subset —
so within every shard the update sequence is byte-for-byte the one the
serial engine would have run, and the parent folding all worker deltas
through the associative sketch merge reproduces the serial engine
*bit-exactly* (each row is owned by exactly one worker, and
``merge_from`` sums ``n_updates``).

The loop is deliberately dumb: frames arrive in FIFO order over one
transport (shared-memory ring or pipe), and a ``collect`` frame
therefore observes every batch dispatched before it.  ``collect``
ships the engine's accumulated delta and resets it to an empty
configured clone, making worker state a pure delta since the last
fold.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import traceback
from typing import TYPE_CHECKING

import numpy as np

from repro.sampling.seeds import key_hashes
from repro.service import codec
from repro.server.wire import decode_batches
from repro.streaming.engine import StreamEngine
from repro.cluster.ring import RingClosedError, ShmRing

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

__all__ = ["owned_subset", "worker_main"]

#: how often a blocked worker re-checks whether it was orphaned
_IDLE_POLL_SECONDS = 0.2


def owned_subset(
    keys: object,
    values: object,
    n_shards: int,
    n_workers: int,
    worker_id: int,
) -> tuple[object, np.ndarray]:
    """The rows of a column batch whose shard this worker owns.

    Routing mirrors :meth:`StreamEngine.ingest_jobs` exactly — shard =
    ``key_hashes(keys) % n_shards`` — so the subset preserves the
    original order within every owned shard.  Empty batches pass
    through unchanged (ingesting them still creates the instance, which
    every worker must do for state parity with the serial engine).
    """
    column = np.asarray(values, dtype=float)
    if column.size == 0:
        return keys, column
    hashes = key_hashes(keys)
    shard_ids = hashes % np.uint64(n_shards)
    mask = (shard_ids % np.uint64(n_workers)) == np.uint64(worker_id)
    if bool(mask.all()):
        return keys, column
    if isinstance(keys, np.ndarray):
        subset_keys: object = keys[mask]
    else:
        keep = mask.tolist()
        subset_keys = [key for key, kept in zip(keys, keep) if kept]
    return subset_keys, column[mask]


def _apply_batch(
    engine: StreamEngine,
    blob: bytes,
    n_workers: int,
    worker_id: int,
) -> int:
    """Apply one wire-encoded batch group; returns rows applied here."""
    applied = 0
    for batch in decode_batches(blob):
        keys, values = owned_subset(
            batch.keys, batch.values, engine.n_shards, n_workers, worker_id
        )
        if len(values) == 0 and len(batch.values) != 0:
            # nothing owned and the instance exists store-wide via the
            # worker that does own rows — skip the empty plan
            continue
        for job in engine.ingest_jobs(batch.instance, keys, values):
            StreamEngine.run_job(job)
        applied += len(values)
    return applied


def worker_main(
    worker_id: int,
    n_workers: int,
    parent_pid: int,
    ring_ref: "ShmRing | str | None",
    command_conn: "Connection | None",
    reply_conn: "Connection",
) -> None:
    """Blocking frame loop of one shard worker (process entry point).

    Frames (parent -> worker):

    * ``("engine", name, blob)`` — adopt the engine state and remember
      the blob as the post-``collect`` reset template;
    * ``("batch", seq, name, blob)`` — apply the owned subset of a
      wire-encoded batch group, then ack;
    * ``("collect", seq, name)`` — ship the accumulated delta and reset;
    * ``("stop",)`` — exit.

    Replies (worker -> parent): ``("ack", seq, name, rows)``,
    ``("state", seq, name, blob | None)``, ``("error", seq, message)``.
    A failing frame answers with ``error`` and keeps the loop alive —
    the parent decides whether that is fatal.
    """
    ring: ShmRing | None
    if isinstance(ring_ref, str):
        ring = ShmRing.attach(ring_ref)
    else:
        ring = ring_ref

    def orphaned() -> bool:
        # reparented to init/subreaper: the parent is gone and nobody
        # will ever send "stop"
        return os.getppid() != parent_pid

    engines: dict[str, StreamEngine] = {}
    templates: dict[str, bytes] = {}

    def next_message() -> tuple | None:
        if ring is not None:
            try:
                frame = ring.pop(
                    timeout=_IDLE_POLL_SECONDS, should_abort=orphaned
                )
            except RingClosedError:
                return None
            if frame is None:
                return () if not orphaned() else None
            return pickle.loads(frame)
        assert command_conn is not None
        if not command_conn.poll(_IDLE_POLL_SECONDS):
            return () if not orphaned() else None
        try:
            received = command_conn.recv()
        except (EOFError, OSError):
            return None
        return received

    try:
        while True:
            message = next_message()
            if message is None:
                return
            if message == ():  # idle poll tick
                continue
            kind = message[0]
            if kind == "stop":
                return
            try:
                if kind == "engine":
                    _, name, blob = message
                    templates[name] = blob
                    engines[name] = codec.from_bytes(blob)
                elif kind == "batch":
                    _, seq, name, blob = message
                    rows = _apply_batch(
                        engines[name], blob, n_workers, worker_id
                    )
                    reply_conn.send(("ack", seq, name, rows))
                elif kind == "collect":
                    _, seq, name = message
                    engine = engines.get(name)
                    if engine is None:
                        reply_conn.send(("state", seq, name, None))
                    else:
                        state = codec.to_bytes(engine)
                        engines[name] = codec.from_bytes(templates[name])
                        reply_conn.send(("state", seq, name, state))
                else:
                    reply_conn.send(
                        ("error", -1, f"unknown frame kind {kind!r}")
                    )
            except Exception:
                seq = (
                    message[1]
                    if len(message) > 1 and isinstance(message[1], int)
                    else -1
                )
                try:
                    reply_conn.send(("error", seq, traceback.format_exc()))
                except (BrokenPipeError, OSError):
                    return
    finally:
        if ring is not None:
            ring.close()
        with contextlib.suppress(OSError):
            reply_conn.close()
        if command_conn is not None:
            with contextlib.suppress(OSError):
                command_conn.close()
