"""Parent-side orchestration of the multiprocess shard-worker plane.

:class:`ShardWorkerPool` forks ``n_workers`` processes, each owning
the shard group ``{s : s % n_workers == worker_id}`` of every engine.
The parent broadcasts every wire-encoded batch to every worker (each
applies only its owned rows), and reads fan back in by *collecting*
per-worker engine deltas that the store folds through the associative
sketch merge.  Frames to one worker travel over a shared-memory ring
(:class:`repro.cluster.ring.ShmRing`; ``transport="pipe"`` falls back
to ``multiprocessing`` pipes), replies come back over a pipe.

Ordering is the only protocol invariant: frames to a worker are FIFO,
so a ``collect`` observes every batch dispatched before it, and no
global barrier is needed for a consistent per-engine fold.

Crash handling is cooperative with the store's write-ahead log: the
pool detects a dead worker (``dispatch``/``collect`` raise
:class:`WorkerCrashError`), :meth:`respawn` restarts the slot and
re-registers engine templates, and the *store* replays the WAL tail of
un-folded batches to the fresh worker — so acked batches survive a
``SIGKILL`` of any worker.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle
import threading
from typing import Any

from repro.exceptions import InvalidParameterError
from repro.cluster.ring import RingClosedError, ShmRing
from repro.cluster.worker import worker_main

__all__ = [
    "ClusterProtocolError",
    "DEFAULT_RING_BYTES",
    "ShardWorkerPool",
    "WorkerCrashError",
]

#: per-worker command-ring capacity; batches are bounded by the HTTP
#: layer's max_body_bytes (8 MiB default), so twice that never blocks
#: a healthy dispatch on frame size
DEFAULT_RING_BYTES = 16 * 1024 * 1024

_TRANSPORTS = ("shm", "pipe")


class WorkerCrashError(RuntimeError):
    """One or more workers died; carries the dead slot indices.

    Recoverable: the caller respawns the slots and (with a WAL
    attached) replays the un-folded batch tail to them.
    """

    def __init__(self, indices: list[int]) -> None:
        self.indices = sorted(set(indices))
        super().__init__(
            f"shard worker(s) {self.indices} died"
        )


class ClusterProtocolError(RuntimeError):
    """A worker answered a frame with an application error.

    Not recoverable by respawn-and-replay — the same frame would fail
    again — so it surfaces to the caller as a server-side fault.
    """


class _Worker:
    """One worker slot: process, transports, and flow counters."""

    __slots__ = (
        "index",
        "process",
        "ring",
        "command_conn",
        "reply_conn",
        "sent",
        "acked",
        "batches",
        "rows",
        "restarts",
    )

    def __init__(
        self,
        index: int,
        process: Any,
        ring: ShmRing | None,
        command_conn: Any,
        reply_conn: Any,
        *,
        batches: int = 0,
        rows: int = 0,
        restarts: int = 0,
    ) -> None:
        self.index = index
        self.process = process
        self.ring = ring
        self.command_conn = command_conn
        self.reply_conn = reply_conn
        self.sent = 0
        self.acked = 0
        self.batches = batches
        self.rows = rows
        self.restarts = restarts


class ShardWorkerPool:
    """N shard-worker processes behind dispatch/collect/respawn."""

    def __init__(
        self,
        n_workers: int,
        *,
        transport: str = "shm",
        ring_bytes: int = DEFAULT_RING_BYTES,
        mp_method: str | None = None,
    ) -> None:
        if int(n_workers) < 1:
            raise InvalidParameterError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        if transport not in _TRANSPORTS:
            raise InvalidParameterError(
                f"transport must be one of {_TRANSPORTS}, got {transport!r}"
            )
        if int(ring_bytes) <= 0:
            raise InvalidParameterError(
                f"ring_bytes must be positive, got {ring_bytes}"
            )
        if mp_method is None:
            methods = multiprocessing.get_all_start_methods()
            mp_method = "fork" if "fork" in methods else "spawn"
        self.n_workers = int(n_workers)
        self.transport = transport
        self.mp_method = mp_method
        self._ring_bytes = int(ring_bytes)
        self._ctx = multiprocessing.get_context(mp_method)
        #: serializes every pool interaction *and* the store's version /
        #: synced-version bookkeeping around it, so crash healing sees a
        #: consistent dispatched-vs-folded state across engines
        self.lock = threading.RLock()
        #: engine name -> empty-configured-clone blob (worker reset
        #: template; re-sent to every respawned worker)
        self._engines: dict[str, bytes] = {}
        #: deltas rescued from a crash-interrupted collect, by name
        self._stray_states: dict[str, list[bytes]] = {}
        #: non-ack replies consumed by opportunistic ack folding, kept
        #: for the next collect/drain of that worker
        self._reply_stash: dict[int, list[tuple]] = {}
        self._workers: list[_Worker] = []
        self._seq = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardWorkerPool":
        """Spawn every worker process."""
        with self.lock:
            if self._started:
                raise InvalidParameterError("worker pool already started")
            self._started = True
            for index in range(self.n_workers):
                self._workers.append(self._spawn(index))
        return self

    def _spawn(
        self,
        index: int,
        *,
        batches: int = 0,
        rows: int = 0,
        restarts: int = 0,
    ) -> _Worker:
        ring: ShmRing | None = None
        command_parent = command_child = None
        if self.transport == "shm":
            ring = ShmRing.create(self._ring_bytes)
            # fork inherits the mapped segment; spawn re-attaches by name
            ring_ref: object = ring if self.mp_method == "fork" else ring.name
        else:
            command_child, command_parent = self._ctx.Pipe(duplex=False)
            ring_ref = None
        reply_parent, reply_child = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                index,
                self.n_workers,
                os.getpid(),
                ring_ref,
                command_child,
                reply_child,
            ),
            name=f"repro-shard-worker-{index}",
            daemon=True,
        )
        process.start()
        # the child holds its own ends now; closing ours makes worker
        # death observable as EOF/broken pipe
        reply_child.close()
        if command_child is not None:
            command_child.close()
        return _Worker(
            index,
            process,
            ring,
            command_parent,
            reply_parent,
            batches=batches,
            rows=rows,
            restarts=restarts,
        )

    def stop(self, join_timeout: float = 5.0) -> None:
        """Stop every worker and release the transports."""
        with self.lock:
            if self._closed:
                return
            self._closed = True
            for worker in self._workers:
                with contextlib.suppress(Exception):
                    self._send(worker, ("stop",))
            for worker in self._workers:
                worker.process.join(timeout=join_timeout)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=join_timeout)
                self._release_transports(worker)
            self._workers = []

    @staticmethod
    def _release_transports(worker: _Worker) -> None:
        if worker.ring is not None:
            worker.ring.close()
        with contextlib.suppress(OSError):
            worker.reply_conn.close()
        if worker.command_conn is not None:
            with contextlib.suppress(OSError):
                worker.command_conn.close()
        with contextlib.suppress(ValueError):
            worker.process.close()

    # ------------------------------------------------------------------
    # Frame plumbing
    # ------------------------------------------------------------------
    def _send(self, worker: _Worker, message: tuple) -> None:
        try:
            if worker.ring is not None:
                frame = pickle.dumps(
                    message, protocol=pickle.HIGHEST_PROTOCOL
                )
                worker.ring.push(
                    frame,
                    should_abort=lambda: not worker.process.is_alive(),
                )
            else:
                worker.command_conn.send(message)
        except (RingClosedError, BrokenPipeError, OSError) as exc:
            raise WorkerCrashError([worker.index]) from exc

    def _pump(self, worker: _Worker, timeout: float) -> tuple | None:
        """Next non-ack reply from ``worker`` (acks fold into counters).

        Returns ``None`` when no reply arrives within ``timeout``;
        raises :class:`WorkerCrashError` on a broken reply pipe.
        """
        stash = self._reply_stash.get(worker.index)
        if stash:
            return stash.pop(0)
        while True:
            try:
                if not worker.reply_conn.poll(timeout):
                    return None
                message = worker.reply_conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerCrashError([worker.index]) from exc
            if message[0] == "ack":
                worker.acked += 1
                worker.batches += 1
                worker.rows += int(message[3])
                continue
            return message

    def _fold_acks(self, worker: _Worker) -> None:
        """Consume buffered acks (queue-depth bookkeeping); any non-ack
        reply is stashed for the next collect/drain, not dropped."""
        with contextlib.suppress(WorkerCrashError):
            message = self._pump(worker, timeout=0.0)
            if message is not None:
                self._reply_stash.setdefault(worker.index, []).append(
                    message
                )

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # Dispatch / collect / drain
    # ------------------------------------------------------------------
    def dispatch(self, name: str, blob: bytes) -> None:
        """Broadcast one wire-encoded batch group to every worker.

        Sends to every *live* worker even when some slots are dead, so
        healthy workers never miss a batch; dead slots are reported in
        one :class:`WorkerCrashError` afterwards (their copy is
        recovered from the WAL tail after respawn).
        """
        with self.lock:
            dead: list[int] = []
            for worker in self._workers:
                self._fold_acks(worker)
                # a push into a roomy ring "succeeds" even when the
                # consumer is gone — probe liveness explicitly so the
                # crash surfaces at dispatch time, not at the next fold
                if not worker.process.is_alive():
                    dead.append(worker.index)
                    continue
                try:
                    self._send(
                        worker, ("batch", self._next_seq(), name, blob)
                    )
                    worker.sent += 1
                except WorkerCrashError:
                    dead.append(worker.index)
            if dead:
                raise WorkerCrashError(dead)

    def dispatch_to(self, index: int, name: str, blob: bytes) -> None:
        """Send one batch group to a single worker (WAL-tail replay)."""
        with self.lock:
            worker = self._workers[index]
            self._send(worker, ("batch", self._next_seq(), name, blob))
            worker.sent += 1

    def register_engine(self, name: str, template_blob: bytes) -> None:
        """Broadcast an engine (reset template) to every worker.

        Also called to *replace* an engine after ``adopt``: workers
        drop their accumulated delta and start from the new template.
        """
        with self.lock:
            self._engines[name] = bytes(template_blob)
            dead: list[int] = []
            for worker in self._workers:
                if not worker.process.is_alive():
                    dead.append(worker.index)
                    continue
                try:
                    self._send(
                        worker, ("engine", name, self._engines[name])
                    )
                except WorkerCrashError:
                    dead.append(worker.index)
            if dead:
                raise WorkerCrashError(dead)

    def collect(self, name: str) -> list[bytes]:
        """Fetch-and-reset every worker's delta for ``name``.

        FIFO ordering makes the result exact: each returned blob
        reflects every batch dispatched to that worker before this
        call.  Deltas from a crash-interrupted earlier collect are
        included (they were reset out of their workers and must not be
        lost).  Raises :class:`WorkerCrashError` with the dead slots —
        after healing, calling again yields the remaining deltas.
        """
        with self.lock:
            results: list[bytes] = list(self._stray_states.pop(name, []))
            expected: dict[int, int] = {}
            dead: list[int] = []
            for worker in self._workers:
                sequence = self._next_seq()
                try:
                    self._send(worker, ("collect", sequence, name))
                except WorkerCrashError:
                    dead.append(worker.index)
                    continue
                expected[worker.index] = sequence
            for worker in self._workers:
                want = expected.get(worker.index)
                if want is None:
                    continue
                if not self._collect_one(worker, want, name, results):
                    dead.append(worker.index)
            if dead:
                if results:
                    # rescue already-reset deltas for the post-heal retry
                    self._stray_states.setdefault(name, []).extend(results)
                raise WorkerCrashError(dead)
            return results

    def _collect_one(
        self,
        worker: _Worker,
        want: int,
        name: str,
        results: list[bytes],
    ) -> bool:
        """Wait for ``worker``'s state reply; False when it died."""
        while True:
            try:
                message = self._pump(worker, timeout=0.05)
            except WorkerCrashError:
                return False
            if message is None:
                if worker.process.is_alive():
                    continue
                # one last sweep: the state may have been shipped just
                # before death
                try:
                    message = self._pump(worker, timeout=0.0)
                except WorkerCrashError:
                    return False
                if message is None:
                    return False
            kind = message[0]
            if kind == "state":
                _, sequence, state_name, blob = message
                if blob is not None:
                    if state_name == name:
                        results.append(blob)
                    else:
                        self._stray_states.setdefault(
                            state_name, []
                        ).append(blob)
                if sequence == want:
                    return True
            elif kind == "error":
                raise ClusterProtocolError(
                    f"worker {worker.index} failed a frame:\n{message[2]}"
                )
            else:  # pragma: no cover - future reply kinds
                raise ClusterProtocolError(
                    f"worker {worker.index} sent unknown reply "
                    f"{message[0]!r}"
                )

    def drain(self) -> None:
        """Block until every live worker acked every dispatched batch."""
        with self.lock:
            for worker in self._workers:
                while worker.acked < worker.sent:
                    message = self._pump(worker, timeout=0.05)
                    if message is not None:
                        if message[0] == "error":
                            raise ClusterProtocolError(
                                f"worker {worker.index} failed a frame:\n"
                                f"{message[2]}"
                            )
                        continue
                    if not worker.process.is_alive():
                        raise WorkerCrashError([worker.index])

    # ------------------------------------------------------------------
    # Crash handling + probes
    # ------------------------------------------------------------------
    def dead_workers(self) -> list[int]:
        """Slot indices whose process is not alive."""
        with self.lock:
            return [
                worker.index
                for worker in self._workers
                if not worker.process.is_alive()
            ]

    def respawn(self, index: int) -> None:
        """Restart a dead slot and re-register every engine template.

        The fresh worker starts from empty engines; the caller replays
        the un-folded WAL tail to it (``dispatch_to``) before the next
        collect, restoring exactly the delta the dead worker lost.
        """
        with self.lock:
            old = self._workers[index]
            if old.process.is_alive():
                old.process.terminate()
                old.process.join(timeout=5.0)
            else:
                old.process.join(timeout=0.1)
            self._release_transports(old)
            # late replies of the dead incarnation are void: everything
            # they carried is regenerated by the caller's WAL-tail replay
            self._reply_stash.pop(index, None)
            fresh = self._spawn(
                index,
                batches=old.batches,
                rows=old.rows,
                restarts=old.restarts + 1,
            )
            for name, blob in self._engines.items():
                self._send(fresh, ("engine", name, blob))
            self._workers[index] = fresh

    def probes(self) -> list[dict]:
        """Per-worker observability rows for ``/metrics``/``/statusz``."""
        with self.lock:
            rows = []
            for worker in self._workers:
                self._fold_acks(worker)
                rows.append(
                    {
                        "worker": worker.index,
                        "pid": worker.process.pid,
                        "alive": bool(worker.process.is_alive()),
                        "transport": self.transport,
                        "queue_depth": worker.sent - worker.acked,
                        "batches": worker.batches,
                        "rows": worker.rows,
                        "restarts": worker.restarts,
                    }
                )
            return rows
