"""Multiprocess shard-worker ingest plane.

The paper's coordinated sketches are associative and commutative under
merge, so per-shard state can live in independent worker *processes*
and be combined by the existing reduce step
(:meth:`repro.streaming.StreamEngine.merge_from`) with no loss of
estimate fidelity — and, because each row is owned by exactly one
worker, with *bit-exact* parity against single-process ingest.

Layers:

* :mod:`repro.cluster.ring` — SPSC shared-memory byte ring, the
  parent -> worker frame transport (pipe fallback);
* :mod:`repro.cluster.worker` — the worker process: applies its shard
  group's slice of every batch via the engine's own routing;
* :mod:`repro.cluster.pool` — :class:`ShardWorkerPool`: dispatch,
  delta collection, per-worker probes, crash detection and respawn.

The store integration lives in :meth:`repro.service.SketchStore.
start_workers`; servers opt in with ``ServerConfig(workers=N)`` /
``serve --workers N``.
"""

from repro.cluster.pool import (
    DEFAULT_RING_BYTES,
    ClusterProtocolError,
    ShardWorkerPool,
    WorkerCrashError,
)
from repro.cluster.ring import RingClosedError, ShmRing
from repro.cluster.worker import owned_subset, worker_main

__all__ = [
    "DEFAULT_RING_BYTES",
    "ClusterProtocolError",
    "RingClosedError",
    "ShardWorkerPool",
    "ShmRing",
    "WorkerCrashError",
    "owned_subset",
    "worker_main",
]
