"""Single-producer single-consumer shared-memory byte ring.

The parent process feeds each shard worker through one of these: a
``multiprocessing.shared_memory`` segment holding two 8-byte cursors
(consumer *head*, producer *tail*) followed by a power-of-two-free
circular byte buffer.  Messages are length-prefixed frames (u32 length
+ payload) written contiguously modulo the capacity; the producer
publishes a frame by bumping *tail* only after the payload bytes are
fully written, and the consumer releases space by bumping *head* only
after it copied the payload out — the classic SPSC contract, which
needs no locks as long as each side has exactly one thread.

Both cursors grow monotonically (they are taken modulo the capacity on
access), so ``tail - head`` is always the number of unread payload
bytes and the full/empty states never alias.

The ring is a transport optimisation: frame order is the only
guarantee dispatch relies on, and :class:`ShardWorkerPool` falls back
to plain ``multiprocessing`` pipes (``transport="pipe"``) where shared
memory is unavailable.
"""

from __future__ import annotations

import struct
import time
from collections.abc import Callable
from multiprocessing import shared_memory

from repro.exceptions import InvalidParameterError

__all__ = ["RingClosedError", "ShmRing"]

_CURSORS = struct.Struct("<QQ")
_LENGTH = struct.Struct("<I")
_HEADER_BYTES = _CURSORS.size
#: default sleep between polls of a full (producer) or empty (consumer)
#: ring — long enough to yield the core on single-CPU hosts, short
#: enough to keep per-batch latency in the tens of microseconds range
_POLL_SECONDS = 0.0002


class RingClosedError(RuntimeError):
    """The peer of a blocking ring operation is gone."""


class ShmRing:
    """One SPSC byte ring over a named shared-memory segment."""

    def __init__(
        self, segment: shared_memory.SharedMemory, *, owner: bool
    ) -> None:
        self._segment = segment
        self._owner = owner
        self._closed = False
        self.capacity = segment.size - _HEADER_BYTES

    # -- construction ---------------------------------------------------
    @classmethod
    def create(cls, capacity: int) -> "ShmRing":
        """Allocate a fresh ring of ``capacity`` payload bytes."""
        if int(capacity) <= 0:
            raise InvalidParameterError(
                f"ring capacity must be positive, got {capacity}"
            )
        segment = shared_memory.SharedMemory(
            create=True, size=_HEADER_BYTES + int(capacity)
        )
        _CURSORS.pack_into(segment.buf, 0, 0, 0)
        return cls(segment, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        """Attach to an existing ring by segment name (worker side)."""
        segment = shared_memory.SharedMemory(name=name)
        # CPython's resource tracker registers *attached* segments too
        # and would unlink the parent's ring when this process exits;
        # only the creating side may own the segment's lifetime.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        return cls(segment, owner=False)

    @property
    def name(self) -> str:
        return self._segment.name

    # -- cursors --------------------------------------------------------
    def _cursors(self) -> tuple[int, int]:
        head, tail = _CURSORS.unpack_from(self._segment.buf, 0)
        return head, tail

    def _set_head(self, head: int) -> None:
        struct.pack_into("<Q", self._segment.buf, 0, head)

    def _set_tail(self, tail: int) -> None:
        struct.pack_into("<Q", self._segment.buf, 8, tail)

    # -- data movement --------------------------------------------------
    def _write_at(self, position: int, data: bytes) -> None:
        offset = position % self.capacity
        first = min(len(data), self.capacity - offset)
        start = _HEADER_BYTES + offset
        self._segment.buf[start : start + first] = data[:first]
        if first < len(data):
            rest = len(data) - first
            self._segment.buf[_HEADER_BYTES : _HEADER_BYTES + rest] = data[
                first:
            ]

    def _read_at(self, position: int, length: int) -> bytes:
        offset = position % self.capacity
        first = min(length, self.capacity - offset)
        start = _HEADER_BYTES + offset
        data = bytes(self._segment.buf[start : start + first])
        if first < length:
            rest = length - first
            data += bytes(
                self._segment.buf[_HEADER_BYTES : _HEADER_BYTES + rest]
            )
        return data

    def push(
        self,
        payload: bytes,
        *,
        should_abort: Callable[[], bool] | None = None,
    ) -> None:
        """Append one frame, blocking while the ring is full.

        Raises :class:`RingClosedError` when ``should_abort`` reports
        the consumer is gone (a dead worker must not hang the parent on
        a full ring).
        """
        need = _LENGTH.size + len(payload)
        if need > self.capacity:
            raise InvalidParameterError(
                f"frame of {len(payload)} bytes exceeds the ring "
                f"capacity of {self.capacity} bytes; raise ring_bytes "
                "or use the pipe transport"
            )
        while True:
            head, tail = self._cursors()
            if self.capacity - (tail - head) >= need:
                break
            if should_abort is not None and should_abort():
                raise RingClosedError("ring consumer is gone")
            time.sleep(_POLL_SECONDS)
        self._write_at(tail, _LENGTH.pack(len(payload)))
        self._write_at(tail + _LENGTH.size, payload)
        # publish last: the consumer only sees whole frames
        self._set_tail(tail + need)

    def pop(
        self,
        *,
        timeout: float | None = None,
        should_abort: Callable[[], bool] | None = None,
    ) -> bytes | None:
        """Remove and return the next frame.

        Returns ``None`` after ``timeout`` seconds without a frame;
        raises :class:`RingClosedError` when ``should_abort`` fires.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            head, tail = self._cursors()
            if tail - head >= _LENGTH.size:
                break
            if should_abort is not None and should_abort():
                raise RingClosedError("ring producer is gone")
            if deadline is not None and time.monotonic() >= deadline:
                return None
            time.sleep(_POLL_SECONDS)
        (length,) = _LENGTH.unpack(self._read_at(head, _LENGTH.size))
        # the producer publishes tail only after the full frame landed,
        # so the payload is guaranteed present once its length is
        payload = self._read_at(head + _LENGTH.size, length)
        self._set_head(head + _LENGTH.size + length)
        return payload

    def backlog_bytes(self) -> int:
        """Unread payload bytes currently queued (probe surface)."""
        head, tail = self._cursors()
        return tail - head

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Detach (and unlink, on the creating side) the segment."""
        if self._closed:
            return
        self._closed = True
        self._segment.close()
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass
