"""repro — reference reproduction of Cohen & Kaplan (PODS 2011).

"Get the Most out of Your Sample: Optimal Unbiased Estimators using Partial
Information" develops variance-optimal unbiased estimators for functions that
span several independently sampled data instances (max, min, OR, range, ...),
exploiting the *partial information* carried by outcomes that do not reveal
the exact value.

The package is organised as follows:

``repro.sampling``
    The sampling substrate: Poisson (weighted and weight-oblivious),
    bottom-k / priority, and VarOpt sampling of single instances, hash based
    reproducible seeds, and the per-key "dispersed vector" sampling schemes
    used by the estimator derivations.

``repro.core``
    The paper's primary contribution: the Horvitz-Thompson baseline, the
    generic order-based (Algorithm 1) and partition-based (Algorithm 2)
    derivation engines, the closed-form optimal estimators
    (max^(L), max^(U), OR^(L), OR^(U), PPS known-seed max^(L)), and the
    LP feasibility checker behind the Section 6 impossibility results.

``repro.batch``
    The columnar batch estimation engine: :class:`~repro.batch.
    OutcomeBatch` stores many per-key outcomes as 2-D value / mask / seed
    arrays, and every closed-form estimator exposes a vectorized
    ``estimate_batch`` that agrees with the scalar reference to
    floating-point round-off.

``repro.exact``
    The vectorized exact-enumeration engine: the ``2^r`` outcome space of
    a weight-oblivious scheme as one columnar batch, exact moments as
    probability-weighted column reductions, and grid sweeps
    (``exact_moments_grid`` / ``exact_moments_value_grid``) that compute a
    whole figure curve in a handful of kernel calls — bit-for-bit equal to
    the scalar reference.

``repro.aggregates``
    Sum aggregates over an instances x keys data set: distinct count,
    max/min dominance norms and L1 distance — assembled into columnar
    batches and estimated in single NumPy passes.

``repro.streaming``
    The streaming coordinated-sketch engine: heap-backed bottom-k and
    Poisson sketches maintained online over ``(instance, key, value)``
    update streams, an associative/commutative merge algebra, a sharded
    batch-ingestion :class:`~repro.streaming.StreamEngine`, and query
    adapters that feed sketch output to the offline estimators unchanged.
    For any fixed seed assignment the streaming sketches equal the offline
    samples of the accumulated data exactly.

``repro.service``
    The persistence and serving layer: a versioned binary wire format for
    sketch and engine state, the :class:`~repro.service.SketchStore`
    registry with thread-safe concurrent ingest, snapshots and
    distributed-style snapshot fan-in, a version-cached declarative query
    planner, and the ``python -m repro.service`` CLI.

``repro.analysis``
    Variance analysis utilities: exact enumeration, Monte-Carlo simulation,
    and the sample-size planning math behind Figure 6.

``repro.datasets``
    Synthetic workload generators and the worked example from Figure 5.

``repro.experiments``
    One module per figure/table of the paper's evaluation.
"""

from repro.batch import OutcomeBatch
from repro.core.functions import (
    boolean_or,
    boolean_xor,
    exp_range,
    lth_largest,
    maximum,
    minimum,
    value_range,
)
from repro.core.ht import HorvitzThompsonOblivious, ht_variance
from repro.core.max_oblivious import (
    MaxObliviousHT,
    MaxObliviousL,
    MaxObliviousU,
)
from repro.core.max_weighted import MaxPpsHT, MaxPpsL
from repro.core.or_estimators import (
    OrKnownSeedsHT,
    OrKnownSeedsL,
    OrKnownSeedsU,
    OrObliviousHT,
    OrObliviousL,
    OrObliviousU,
)
from repro.core.order_based import DiscreteModel, OrderBasedDeriver
from repro.core.partition_based import PartitionBasedDeriver
from repro.sampling.dispersed import ObliviousPoissonScheme, PpsPoissonScheme
from repro.sampling.outcomes import VectorOutcome
from repro.sampling.ranks import ExpRanks, PpsRanks, UniformRanks
from repro.sampling.seeds import SeedAssigner
from repro.service import Query, SketchStore
from repro.streaming import (
    StreamEngine,
    StreamingBottomK,
    StreamingPoisson,
    merge_sketches,
)

__version__ = "1.4.0"

__all__ = [
    "boolean_or",
    "boolean_xor",
    "exp_range",
    "lth_largest",
    "maximum",
    "minimum",
    "value_range",
    "HorvitzThompsonOblivious",
    "ht_variance",
    "MaxObliviousHT",
    "MaxObliviousL",
    "MaxObliviousU",
    "MaxPpsHT",
    "MaxPpsL",
    "OrObliviousHT",
    "OrObliviousL",
    "OrObliviousU",
    "OrKnownSeedsHT",
    "OrKnownSeedsL",
    "OrKnownSeedsU",
    "DiscreteModel",
    "OrderBasedDeriver",
    "PartitionBasedDeriver",
    "ObliviousPoissonScheme",
    "OutcomeBatch",
    "PpsPoissonScheme",
    "VectorOutcome",
    "SeedAssigner",
    "ExpRanks",
    "PpsRanks",
    "UniformRanks",
    "StreamEngine",
    "StreamingBottomK",
    "StreamingPoisson",
    "Query",
    "SketchStore",
    "merge_sketches",
    "__version__",
]
